"""Shared fixtures for the reproduction bench suite.

Every bench regenerates one of the paper's tables/figures at the scale
of ``BenchScale.from_env()`` (set ``REPRO_FULL=1`` for all Table 3
groups, ``REPRO_CYCLES=N`` for longer runs), prints the reproduction
table next to the paper's reference values, and writes it to
``reports/``.
"""

import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).parent.parent
_SRC = str(_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.harness.report import format_table, save_json_report, save_report  # noqa: E402
from repro.harness.runner import BenchScale  # noqa: E402
from repro.telemetry.provenance import collect_manifest  # noqa: E402


@pytest.fixture(scope="session")
def scale():
    return BenchScale.from_env()


@pytest.fixture(scope="session")
def report(scale):
    """report(name, rows_or_text, title) -> prints and persists.

    Writes the human-readable table to ``reports/<name>.txt`` and, when
    the rows are structured, a provenance-stamped ``reports/<name>.json``
    (config hash, seed, git SHA, package versions) so every saved
    number is traceable to the configuration that produced it.
    """
    manifest = collect_manifest(seed=scale.seed, extra={"bench_scale": scale.__dict__})

    def _report(name: str, rows, title: str) -> str:
        text = rows if isinstance(rows, str) else format_table(rows, title)
        print("\n" + text)
        save_report(name, text, directory=str(_ROOT / "reports"))
        if not isinstance(rows, str):
            save_json_report(
                name,
                {"title": title, "rows": list(rows)},
                directory=str(_ROOT / "reports"),
                manifest=manifest,
            )
        return text

    return _report
