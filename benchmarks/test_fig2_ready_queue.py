"""Figure 2 — Ready-queue length histogram and ACE percentage.

Paper (96-entry IQ, issue width 8, workload CPU group A = bzip2, eon,
gcc, perlbmk): the ready-queue length distribution is hill-shaped with
abundant ready instructions beyond the issue width, and on average
~60% of ready instructions are ACE.  The scaled reproduction preserves
the hill shape, a non-trivial tail beyond the issue width, and the
ACE share; the absolute peak position scales with the machine's
attainable ILP.
"""

import numpy as np

from repro.harness import experiments


def test_fig2_ready_queue(benchmark, scale, report):
    data = benchmark.pedantic(
        experiments.fig2_ready_queue, args=(scale,), rounds=1, iterations=1
    )
    hist = np.array(data["hist"])
    ace = np.array(data["ace_pct"])
    rows = [
        {
            "rql": i,
            "p": hist[i],
            "ace_pct": ace[i] if hist[i] else None,
        }
        for i in range(0, min(len(hist), 41))
        if hist[i] > 0 or i <= 16
    ]
    rows.append({"rql": "mean", "p": data["mean_rql"], "ace_pct": data["overall_ace_pct"]})
    rows.append({"rql": "max", "p": data["max_rql"], "ace_pct": None})
    report("fig2_ready_queue", rows, "Figure 2 — ready queue length histogram (CPU-A)")

    # Shape assertions:
    assert data["max_rql"] > 8, "ready instructions must exceed the issue width"
    # ACE share of ready instructions near the paper's ~60%.
    assert 0.4 < data["overall_ace_pct"] < 0.9
    # Hill shape: the distribution mass is not concentrated at zero.
    assert hist[0] < 0.6
