"""Ablation — DVM trigger threshold placement.

Paper (Section 5.1): the trigger threshold is set to 90% of the
reliability target; too close and the response arrives too late, too
far and it fires prematurely at a performance cost.
"""

from repro.harness import experiments


def test_ablation_trigger_fraction(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.ablation_trigger_fraction, args=(scale,), rounds=1, iterations=1
    )
    report("ablation_trigger_fraction", rows, "Ablation — DVM trigger fraction (80/90/95%)")

    for r in rows:
        assert 0.0 <= r["pve"] <= 1.0

    import numpy as np
    # An earlier (lower) trigger can only help PVE, at a perf cost.
    pve_early = np.mean([r["pve"] for r in rows if r["trigger_fraction"] == 0.8])
    pve_late = np.mean([r["pve"] for r in rows if r["trigger_fraction"] == 0.95])
    assert pve_early <= pve_late + 0.1
