"""Figure 9 — DVM with FLUSH as the baseline fetch policy.

Paper: FLUSH alone is the best fetch policy for soft-error mitigation,
but DVM still works correctly when FLUSH is active concurrently —
emergencies are eliminated across the threshold sweep.
"""

from repro.harness import experiments


def test_fig9_dvm_flush(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.fig9_dvm_flush, args=(scale,), rounds=1, iterations=1
    )
    report("fig9_dvm_flush", rows, "Figure 9 — DVM sweep, fetch policy FLUSH")

    by = {(r["category"], r["threshold"]): r for r in rows}
    for cat in ("CPU", "MIX", "MEM"):
        r = by[(cat, 0.5)]
        assert r["pve_dvm"] <= r["pve_baseline"] + 1e-9, r
        assert r["pve_dvm"] <= 0.55, r

    # DVM on top of FLUSH must not collapse performance at mild targets.
    for cat in ("CPU", "MIX", "MEM"):
        assert by[(cat, 0.7)]["throughput_degradation"] < 0.5
