"""Figure 5 — Normalized IQ AVF and throughput IPC (ICOUNT).

Paper: VISA alone reduces IQ AVF ~5% with ~1% IPC gain; VISA+opt1 cuts
CPU AVF ~34% at equal IPC but noticeably hurts MIX/MEM IPC; VISA+opt2
reaches 48% average AVF reduction at ~1% IPC improvement (CPU 33%,
MIX/MEM 56%), with slightly lower IPC than baseline on MEM and
higher-than-baseline IPC on MIX.
"""

from repro.harness import experiments


def test_fig5_visa_icount(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.fig5_visa_configs, args=(scale,), rounds=1, iterations=1
    )
    report("fig5_visa_icount", rows, "Figure 5 — VISA configs, fetch policy ICOUNT")

    by = {(r["category"], r["config"]): r for r in rows}

    # --- VISA alone: small AVF effect, IPC preserved (paper 0.95/1.01).
    for cat in ("CPU", "MIX", "MEM"):
        r = by[(cat, "VISA")]
        assert 0.8 <= r["norm_iq_avf"] <= 1.1, r
        assert r["norm_ipc"] >= 0.95, r

    # --- opt1: AVF reduction everywhere...
    for cat in ("CPU", "MIX", "MEM"):
        assert by[(cat, "VISA+opt1")]["norm_iq_avf"] < 1.0
    # ...with CPU IPC essentially preserved and MEM IPC noticeably hurt
    # (the paper's motivation for opt2).
    assert by[("CPU", "VISA+opt1")]["norm_ipc"] >= 0.95
    assert by[("MEM", "VISA+opt1")]["norm_ipc"] < 0.95

    # --- opt2: the headline result — significant AVF reduction at
    # near-baseline IPC on every category.
    for cat in ("CPU", "MIX", "MEM"):
        r = by[(cat, "VISA+opt2")]
        assert r["norm_iq_avf"] < 0.95, r
        assert r["norm_ipc"] >= 0.9, r
    # opt2 restores the MEM throughput opt1 lost.
    assert (
        by[("MEM", "VISA+opt2")]["norm_ipc"]
        >= by[("MEM", "VISA+opt1")]["norm_ipc"]
    )
    # MIX/MEM benefit more than CPU (their baseline clogs more).
    mixmem = (
        by[("MIX", "VISA+opt2")]["norm_iq_avf"]
        + by[("MEM", "VISA+opt2")]["norm_iq_avf"]
    ) / 2
    assert mixmem <= by[("CPU", "VISA+opt2")]["norm_iq_avf"] + 0.05
