"""Table 1 — Accuracy of PC-based ACE classification.

Paper: committed-instance accuracy is ~98% for most benchmarks,
93.7% on average, with mesa (74.9%) and vpr (81.8%) the worst cases.
"""

import numpy as np

from repro.harness import experiments


def test_table1_pc_accuracy(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.table1_pc_accuracy, args=(scale,), rounds=1, iterations=1
    )
    report("table1_pc_accuracy", rows, "Table 1 — per-PC ACE classification accuracy")

    by_name = {r["benchmark"]: r for r in rows}
    avg = by_name["AVG"]["accuracy"]
    # Band around the paper's 93.7% average.
    assert 0.88 <= avg <= 1.0

    # Worst cases must be the paper's worst cases (ranking shape).
    ours_sorted = sorted(
        (r for r in rows if r["benchmark"] != "AVG"), key=lambda r: r["accuracy"]
    )
    worst4 = {r["benchmark"] for r in ours_sorted[:4]}
    assert worst4 & {"mesa", "vpr", "eon", "bzip2", "crafty"}, worst4

    # Rank correlation with the paper column.
    named = [r for r in rows if r["benchmark"] != "AVG"]
    ours_rank = np.argsort(np.argsort([r["accuracy"] for r in named]))
    ref_rank = np.argsort(np.argsort([r["paper"] for r in named]))
    corr = np.corrcoef(ours_rank, ref_rank)[0, 1]
    assert corr > 0.7, f"Table 1 ranking diverged (rank corr {corr:.2f})"
