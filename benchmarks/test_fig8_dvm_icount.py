"""Figure 8 — DVM efficiency and its performance impact (ICOUNT).

Paper: with a 0.5·MaxAVF target, PVE falls from 72/79/55% (CPU/MIX/MEM
baselines) to ~1% with DVM; performance overhead grows as the target
tightens; harmonic-IPC degradation exceeds throughput degradation on
MIX workloads (fairness bias toward CPU-bound threads).
"""

from repro.harness import experiments


def test_fig8_dvm_icount(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.fig8_dvm, args=(scale,), rounds=1, iterations=1
    )
    report("fig8_dvm_icount", rows, "Figure 8 — DVM sweep, fetch policy ICOUNT")

    by = {(r["category"], r["threshold"]): r for r in rows}

    for cat in ("CPU", "MIX", "MEM"):
        # Baseline PVE grows as the target tightens...
        pves = [by[(cat, f)]["pve_baseline"] for f in (0.7, 0.5, 0.3)]
        assert pves[0] <= pves[1] + 1e-9 <= pves[2] + 2e-9, (cat, pves)
        # ...and DVM eliminates the majority of emergencies at the
        # paper's headline 0.5·MaxAVF target.
        r = by[(cat, 0.5)]
        assert r["pve_dvm"] < r["pve_baseline"] - 0.15, r
        assert r["pve_dvm"] <= 0.5, r

    # Performance overhead grows with the reliability demand.
    for cat in ("CPU", "MIX", "MEM"):
        loose = by[(cat, 0.7)]["throughput_degradation"]
        tight = by[(cat, 0.3)]["throughput_degradation"]
        assert tight >= loose - 0.02, (cat, loose, tight)

    # Fairness: MIX loses more harmonic IPC than throughput (paper's
    # CPU-bias observation).
    mix = by[("MIX", 0.5)]
    assert mix["harmonic_degradation"] >= mix["throughput_degradation"] - 0.02
