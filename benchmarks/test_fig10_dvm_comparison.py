"""Figure 10 — DVM versus the Section 2 optimizations.

Paper: VISA / VISA+opt1 / VISA+opt2 are open-loop — they reduce average
AVF but cannot *maintain* a runtime threshold, so their PVE stays high;
static-ratio DVM manages reliability to a degree; dynamic DVM always
outperforms the static variant.
"""

import numpy as np

from repro.harness import experiments


def test_fig10_dvm_comparison(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.fig10_comparison, args=(scale,), rounds=1, iterations=1
    )
    report("fig10_dvm_comparison", rows, "Figure 10 — PVE of all schemes")

    def avg(scheme, threshold=None):
        sel = [
            r[scheme] for r in rows
            if threshold is None or r["threshold"] == threshold
        ]
        return float(np.mean(sel))

    # Dynamic DVM beats every open-loop scheme on average.
    dvm = avg("DVM-dynamic")
    for scheme in ("VISA", "VISA+opt1", "VISA+opt2"):
        assert dvm < avg(scheme), (scheme, dvm, avg(scheme))

    # Dynamic DVM is at least as good as static DVM (paper: "the
    # dynamic approach always outperforms the static").
    assert dvm <= avg("DVM-static") + 0.05

    # Open-loop schemes cannot maintain tight thresholds: at the
    # tightest target their PVE remains substantial.
    assert avg("VISA", threshold=0.3) > 0.5
