"""Workload characterization — the CPU/MEM separation behind Table 3.

Not a figure of the paper, but the property every figure rests on:
computation-intensive personalities must be fast and L2-quiet,
memory-intensive personalities slow and L2-bound, when run alone on
the Table 2 machine.
"""

import numpy as np

from repro.harness import experiments


def test_characterization(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.characterize_benchmarks, args=(scale,), rounds=1, iterations=1
    )
    report("characterization", rows, "Single-thread benchmark characterization")

    cpu = [r for r in rows if r["category"] == "cpu"]
    mem = [r for r in rows if r["category"] == "mem"]
    assert cpu and mem

    # Category separation: CPU codes are fast and L1-resident, MEM
    # codes slow and miss-bound.  (L2 *capacity* pressure is a 4-thread
    # effect — the mix-level experiments assert it — so single-thread
    # separation shows in IPC and L1D miss rate.)
    assert np.mean([r["ipc"] for r in cpu]) > 2 * np.mean([r["ipc"] for r in mem])
    assert (
        np.mean([r["l1d_miss"] for r in mem])
        > 3 * np.mean([r["l1d_miss"] for r in cpu])
    )

    # mcf is among the most memory-bound personalities.
    by_name = {r["benchmark"]: r for r in rows}
    slowest3 = sorted((r["ipc"], r["benchmark"]) for r in mem)[:3]
    assert any(n == "mcf" for _, n in slowest3) or by_name["mcf"]["l1d_miss"] > 0.3

    # Every benchmark commits work and predicts branches sanely.
    for r in rows:
        assert r["ipc"] > 0.05, r
        assert r["bp_acc"] > 0.6, r
        assert 0.3 < r["ace_frac"] < 0.95, r
