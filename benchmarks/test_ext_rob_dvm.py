"""Extension — DVM generalized to the reorder buffer.

The paper's conclusion suggests extending the techniques "to other
microarchitecture structures"; this bench validates the extension: the
same trigger/response machinery pointed at an online ROB ACE-bit
counter controls the ROB's runtime vulnerability.
"""

import dataclasses

from repro.config import ReliabilityConfig, SimulationConfig
from repro.core.pipeline import SMTPipeline
from repro.harness import experiments
from repro.harness.runner import get_programs
from repro.reliability.avf import Structure
from repro.reliability.dvm import DVMController
from repro.workloads import CATEGORIES


def _run(programs, scale, dvm_target=None):
    rel = ReliabilityConfig(
        interval_cycles=scale.interval_cycles,
        ace_window=scale.ace_window,
        t_cache_miss=scale.t_cache_miss,
    )
    sim = SimulationConfig(
        max_cycles=scale.max_cycles, warmup_cycles=scale.warmup_cycles,
        seed=scale.seed, reliability=rel,
    )
    dvm = DVMController(dvm_target, config=rel) if dvm_target else None
    return SMTPipeline(
        programs, sim=sim, dvm=dvm, dvm_structure=Structure.ROB
    ).run()


def test_ext_rob_dvm(benchmark, scale, report):
    scale = experiments.dvm_scale(scale)

    def sweep():
        rows = []
        for cat in CATEGORIES:
            for mix in scale.mixes(cat):
                programs = get_programs(mix.name, scale)
                base = _run(programs, scale)
                target = 0.5 * base.max_rob_avf
                online = max(0.5 * base.max_online_rob_estimate, 1e-4)
                governed = _run(programs, scale, dvm_target=online)
                rows.append(
                    {
                        "mix": mix.name,
                        "rob_avf_base": base.rob_avf,
                        "rob_avf_dvm": governed.rob_avf,
                        "pve_base": base.pve_rob(target),
                        "pve_dvm": governed.pve_rob(target),
                        "ipc_ratio": governed.ipc / max(base.ipc, 1e-9),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("ext_rob_dvm", rows, "Extension — ROB-targeted DVM at 0.5*MaxROB-AVF")

    for r in rows:
        assert r["rob_avf_dvm"] <= r["rob_avf_base"] + 1e-6, r
        assert r["pve_dvm"] <= r["pve_base"] + 1e-9, r
        assert r["ipc_ratio"] > 0.3, r
