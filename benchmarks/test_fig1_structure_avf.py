"""Figure 1 — Microarchitecture soft-error vulnerability profile.

Paper: on the baseline SMT processor, the issue queue exhibits the
highest AVF among the structures studied (IQ / ROB / register file /
function units), on all three workload categories; this motivates the
whole paper.
"""

from repro.harness import experiments


def test_fig1_structure_avf(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.fig1_structure_avf, args=(scale,), rounds=1, iterations=1
    )
    report("fig1_structure_avf", rows, "Figure 1 — structure AVF per category")

    for row in rows:
        iq = row["IQ"]
        # Reproduction shape: the IQ is the reliability hot-spot (the
        # RF lifetime model is an upper bound and gets slack).
        assert iq >= row["ROB"] * 0.8, row
        assert iq >= row["FU"] * 0.8, row
        assert iq >= row["RF"] * 0.55, row

    by_cat = {r["category"]: r["IQ"] for r in rows}
    # Paper Section 4: baseline IQ AVF is lower on CPU than on MIX/MEM.
    assert by_cat["CPU"] < by_cat["MEM"]
