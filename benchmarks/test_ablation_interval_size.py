"""Ablation — adaptation interval size of Optimization 1.

Paper (Section 2.2): 10K cycles was chosen; a too-large interval is not
adaptive enough, a too-small one is over-sensitive to workload jitter.
The scaled sweep shows the trade-off around the scaled default (2K).
"""

from repro.harness import experiments


def test_ablation_interval_size(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.ablation_interval_size, args=(scale,), rounds=1, iterations=1
    )
    report("ablation_interval_size", rows, "Ablation — opt1 adaptation interval")

    for r in rows:
        assert 0 < r["norm_iq_avf"] <= 1.2
        assert 0 < r["norm_ipc"] <= 1.2
    # All interval sizes must still deliver an AVF reduction on MEM.
    assert all(r["norm_iq_avf"] < 1.0 for r in rows if r["category"] == "MEM")
