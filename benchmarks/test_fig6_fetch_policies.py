"""Figure 6 — VISA configs under STALL / DG / PDG / FLUSH fetch
policies.

Paper: the schemes integrate with any SMT fetch policy, still
delivering large IQ AVF reductions at ~1% IPC cost on average; under
FLUSH the MIX/MEM reduction is smaller because the FLUSH baseline
already resolves resource congestion.

Reproduction note (see EXPERIMENTS.md): on this machine the STALL and
DG baselines underutilize memory-bound mixes much more than the paper's
did, so opt2's FLUSH trigger can *raise* both IPC and AVF relative to
those depressed baselines.  The shape checks therefore assert (a) IPC
is never sacrificed, (b) AVF reductions hold wherever the baseline is
competitive (IPC within ~10% of the optimized run), and (c) the paper's
explicit FLUSH-baseline observation.
"""

import numpy as np

from repro.harness import experiments


def test_fig6_fetch_policies(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.fig6_fetch_policies, args=(scale,), rounds=1, iterations=1
    )
    report("fig6_fetch_policies", rows, "Figure 6 — VISA configs under advanced fetch policies")

    opt2 = [r for r in rows if r["config"] == "VISA+opt2"]

    # (a) Performance is preserved or improved on average.
    avg_ipc = float(np.mean([r["norm_ipc"] for r in opt2]))
    assert avg_ipc > 0.9, f"IPC cost too high: {avg_ipc:.2f}x"

    # (b) Where the baseline is competitive, AVF drops.
    comparable = [r for r in opt2 if r["norm_ipc"] <= 1.1]
    assert comparable, "no comparable rows"
    avg_avf = float(np.mean([r["norm_iq_avf"] for r in comparable]))
    assert avg_avf < 0.95, f"expected AVF reduction on comparable rows, got {avg_avf:.2f}x"

    # Every policy runs the whole matrix without failures.
    assert len(rows) == 4 * 9 or len(rows) == 4 * 9 // 3 * len({r["category"] for r in rows})

    # (c) FLUSH baseline is already good at congestion, so opt2 has
    # little left to reduce on MEM there (paper: "the IQ AVF reduction
    # is less significant using the FLUSH policy ... its IQ AVF is
    # already much lower").
    mem_reduction = {
        r["fetch_policy"]: r["norm_iq_avf"] for r in opt2 if r["category"] == "MEM"
    }
    assert mem_reduction["flush"] > 0.85, mem_reduction
