"""Extension — IQ size sensitivity.

The paper fixes the IQ at 96 entries (Table 2).  This extension sweeps
48/96/192 entries: the IQ's exposure and the value of the mitigations
should move with its capacity.
"""

from repro.harness import experiments


def test_ext_iq_size(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.ext_iq_size_sensitivity, args=(scale,), rounds=1, iterations=1
    )
    report("ext_iq_size", rows, "Extension — IQ size sensitivity (48/96/192)")

    by = {(r["iq_size"], r["category"]): r for r in rows}
    for cat in ("CPU", "MIX", "MEM"):
        # A bigger IQ never hurts baseline throughput.
        assert by[(192, cat)]["base_ipc"] >= by[(48, cat)]["base_ipc"] - 0.15
        # The optimized configuration keeps its AVF benefit at every size.
        for size in (48, 96, 192):
            assert by[(size, cat)]["opt2_norm_avf"] < 1.1
