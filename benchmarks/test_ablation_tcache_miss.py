"""Ablation — Tcache_miss sensitivity of Optimization 2.

Paper (Section 2.2(2)): the L2-miss threshold that switches between the
IQ cap and FLUSH was chosen as 16 per 10K cycles after sensitivity
analysis.  This bench sweeps the scaled threshold, including an
effectively-infinite value that degenerates opt2 into opt1.
"""

from repro.harness import experiments


def test_ablation_t_cache_miss(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.ablation_t_cache_miss, args=(scale,), rounds=1, iterations=1
    )
    report("ablation_tcache_miss", rows, "Ablation — opt2 Tcache_miss sweep")

    by = {(r["t_cache_miss"], r["category"]): r for r in rows}
    huge = 1_000_000
    # With the trigger disabled, opt2 == opt1: MEM IPC suffers like
    # Figure 5's opt1 bar; with a sane threshold FLUSH rescues it.
    assert by[(8, "MEM")]["norm_ipc"] >= by[(huge, "MEM")]["norm_ipc"] - 0.02

    for r in rows:
        assert r["norm_iq_avf"] < 1.05
