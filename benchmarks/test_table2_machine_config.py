"""Table 2 — Simulated machine configuration.

Not an experiment: this bench validates that the default machine is
exactly the paper's configuration and measures simulator construction
and simulation throughput on it (cycles/second of the cycle loop).
"""

from repro.config import MachineConfig, SimulationConfig
from repro.core.pipeline import SMTPipeline
from repro.workloads import get_mix


def test_table2_defaults(benchmark, report):
    m = benchmark.pedantic(MachineConfig, rounds=1, iterations=1)
    rows = [
        {"parameter": "fetch/issue/commit width", "value": f"{m.fetch_width}/{m.issue_width}/{m.commit_width}", "paper": "8/8/8"},
        {"parameter": "issue queue", "value": m.iq_size, "paper": 96},
        {"parameter": "ROB per thread", "value": m.rob_size_per_thread, "paper": 96},
        {"parameter": "LSQ per thread", "value": m.lsq_size_per_thread, "paper": 48},
        {"parameter": "int ALU", "value": m.int_alu, "paper": 8},
        {"parameter": "int mul/div", "value": m.int_mult_div, "paper": 4},
        {"parameter": "load/store units", "value": m.load_store_units, "paper": 4},
        {"parameter": "FP ALU", "value": m.fp_alu, "paper": 8},
        {"parameter": "FP mul/div/sqrt", "value": m.fp_mult_div_sqrt, "paper": 4},
        {"parameter": "L1I", "value": f"{m.l1i.size//1024}KB/{m.l1i.assoc}w/{m.l1i.line_size}B", "paper": "32KB/2w/32B"},
        {"parameter": "L1D", "value": f"{m.l1d.size//1024}KB/{m.l1d.assoc}w/{m.l1d.line_size}B", "paper": "64KB/4w/64B"},
        {"parameter": "L2", "value": f"{m.l2.size//1024//1024}MB/{m.l2.assoc}w/{m.l2.line_size}B/{m.l2.latency}cy", "paper": "2MB/4w/128B/12cy"},
        {"parameter": "memory latency", "value": m.memory_latency, "paper": 200},
        {"parameter": "ITLB/DTLB entries", "value": f"{m.itlb.entries}/{m.dtlb.entries}", "paper": "128/256"},
        {"parameter": "gshare PHT / history", "value": f"{m.branch_predictor.pht_entries}/{m.branch_predictor.history_bits}b", "paper": "2048/10b"},
        {"parameter": "BTB / RAS", "value": f"{m.branch_predictor.btb_entries}/{m.branch_predictor.ras_entries}", "paper": "2048/32"},
    ]
    report("table2_machine_config", rows, "Table 2 — machine configuration (defaults)")
    for row in rows:
        assert str(row["value"]) == str(row["paper"]), row


def test_simulator_throughput(benchmark):
    """pytest-benchmark timing of the core cycle loop itself."""
    programs = get_mix("CPU-A").programs(seed=1)
    sim = SimulationConfig.scaled_for_bench(max_cycles=2_000, warmup_cycles=200)

    def run():
        return SMTPipeline(programs, sim=sim).run().committed

    committed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert committed > 1_000
