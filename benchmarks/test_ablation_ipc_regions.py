"""Ablation — number of IPC regions in Optimization 1.

Paper (Section 2.2): "our experimental results show that 4 regions
outperform other number of regions".  This bench sweeps 2/4/8 regions
and reports the AVF/IPC trade-off of VISA+opt1 under each.
"""

from repro.harness import experiments


def test_ablation_ipc_regions(benchmark, scale, report):
    rows = benchmark.pedantic(
        experiments.ablation_ipc_regions, args=(scale,), rounds=1, iterations=1
    )
    report("ablation_ipc_regions", rows, "Ablation — opt1 IPC region count (2/4/8)")

    for r in rows:
        assert 0 < r["norm_iq_avf"] <= 1.2
        assert 0 < r["norm_ipc"] <= 1.2

    # More regions → finer partition → tighter caps at low IPC → more
    # AVF reduction on MEM but a bigger throughput hit.  The paper's
    # 4-region choice sits between the extremes.
    by = {(r["regions"], r["category"]): r for r in rows}
    assert by[(8, "MEM")]["norm_iq_avf"] <= by[(2, "MEM")]["norm_iq_avf"] + 0.05
    assert by[(8, "MEM")]["norm_ipc"] <= by[(2, "MEM")]["norm_ipc"] + 0.05
    four = by[(4, "MEM")]
    assert (
        by[(8, "MEM")]["norm_iq_avf"] - 0.12
        <= four["norm_iq_avf"]
        <= by[(2, "MEM")]["norm_iq_avf"] + 0.12
    )
