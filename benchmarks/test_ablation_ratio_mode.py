"""Ablation — static-region vs linear-model ratio setup for Opt. 1.

Paper (Section 2.2(1)): "Alternatively, these ratios can be dynamically
setup using the actual IPC.  We experiment with dynamic ratio setup
using linear models ... both static and dynamic ratios show similar
efficiency.  We use static ratios in this paper due to their
simplicity."  This bench verifies the similar-efficiency claim.
"""

import numpy as np

from repro.harness.runner import run_sim
from repro.workloads import CATEGORIES


def _sweep(scale, dispatch):
    out = {}
    for cat in CATEGORIES:
        avfs, ipcs = [], []
        for mix in scale.mixes(cat):
            base = run_sim(mix.name, scale)
            res = run_sim(mix.name, scale, scheduler="visa", dispatch=dispatch)
            avfs.append(res.iq_avf / max(base.iq_avf, 1e-9))
            ipcs.append(res.ipc / max(base.ipc, 1e-9))
        out[cat] = (float(np.mean(avfs)), float(np.mean(ipcs)))
    return out


def test_ablation_ratio_mode(benchmark, scale, report):
    def run():
        return _sweep(scale, "opt1"), _sweep(scale, "opt1-linear")

    static, linear = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for cat in CATEGORIES:
        rows.append({
            "category": cat,
            "static_norm_avf": static[cat][0], "static_norm_ipc": static[cat][1],
            "linear_norm_avf": linear[cat][0], "linear_norm_ipc": linear[cat][1],
        })
    report("ablation_ratio_mode", rows, "Ablation — opt1 static vs linear ratio setup")

    # The paper's claim: similar efficiency.
    for cat in CATEGORIES:
        assert abs(static[cat][0] - linear[cat][0]) < 0.25, (cat, static[cat], linear[cat])
        assert abs(static[cat][1] - linear[cat][1]) < 0.25, (cat, static[cat], linear[cat])
