"""SMT fetch policies against a fake core."""

import pytest

from repro.frontend.fetch_policy import (
    DGPolicy,
    FlushPolicy,
    ICountPolicy,
    PDGPolicy,
    RoundRobinPolicy,
    StallPolicy,
    make_fetch_policy,
)
from repro.isa.instruction import DynInst, MemBehavior, MemPattern, OpClass, StaticInst


class FakeCore:
    """Minimal CoreView implementation."""

    def __init__(self, n=4):
        self.num_threads = n
        self._in_flight = [0] * n
        self._l2 = [0] * n
        self._l1d = [0] * n
        self.flush_requests = []

    def in_flight(self, tid):
        return self._in_flight[tid]

    def outstanding_l2(self, tid):
        return self._l2[tid]

    def outstanding_l1d(self, tid):
        return self._l1d[tid]

    def request_flush(self, tid, after_tag):
        self.flush_requests.append((tid, after_tag))


def make_load(tag=1, thread=0, pc=0x1000):
    st = StaticInst(
        pc=pc, opclass=OpClass.LOAD, dest=1, srcs=(2,),
        mem=MemBehavior(pattern=MemPattern.HOT, base=0, footprint=4096),
    )
    return DynInst(tag=tag, thread=thread, static=st, stream_pos=0)


class TestICount:
    def test_orders_by_in_flight(self):
        core = FakeCore()
        core._in_flight = [5, 1, 3, 2]
        assert ICountPolicy().priority(core) == [1, 3, 2, 0]

    def test_tie_breaks_by_thread_id(self):
        core = FakeCore()
        core._in_flight = [2, 2, 1, 1]
        assert ICountPolicy().priority(core) == [2, 3, 0, 1]

    def test_never_gates(self):
        core = FakeCore()
        core._l2 = [5, 5, 5, 5]
        assert len(ICountPolicy().select(core)) == 4


class TestRoundRobin:
    def test_rotates(self):
        core = FakeCore()
        rr = RoundRobinPolicy()
        first = rr.priority(core)[0]
        second = rr.priority(core)[0]
        assert first != second

    def test_reset(self):
        rr = RoundRobinPolicy()
        core = FakeCore()
        rr.priority(core)
        rr.reset()
        assert rr._turn == 0


class TestStall:
    def test_gates_thread_with_l2_miss(self):
        core = FakeCore()
        core._l2[1] = 1
        selected = StallPolicy().select(core)
        assert 1 not in selected
        assert len(selected) == 3

    def test_all_gated_selects_none(self):
        core = FakeCore()
        core._l2 = [1, 1, 1, 1]
        assert StallPolicy().select(core) == []


class TestFlush:
    def test_requests_flush_on_l2_miss(self):
        core = FakeCore()
        inst = make_load(tag=7, thread=2)
        FlushPolicy().on_l2_miss(core, inst)
        assert core.flush_requests == [(2, 7)]

    def test_always_fetches_at_least_one_thread(self):
        core = FakeCore()
        core._l2 = [1, 1, 1, 1]
        core._in_flight = [4, 1, 2, 3]
        selected = FlushPolicy().select(core)
        assert selected == [1]  # the ICOUNT-preferred thread

    def test_gates_like_stall_otherwise(self):
        core = FakeCore()
        core._l2[0] = 2
        selected = FlushPolicy().select(core)
        assert 0 not in selected


class TestDG:
    def test_gates_on_threshold(self):
        core = FakeCore()
        core._l1d[0] = 2
        policy = DGPolicy(threshold=2)
        assert policy.gated(core, 0) is True
        assert policy.gated(core, 1) is False

    def test_below_threshold_not_gated(self):
        core = FakeCore()
        core._l1d[0] = 1
        assert DGPolicy(threshold=2).gated(core, 0) is False

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DGPolicy(threshold=0)


class TestPDG:
    def test_untrained_predicts_no_miss(self):
        p = PDGPolicy()
        assert p.predict_miss(0x1000) is False

    def test_learns_missing_load(self):
        p = PDGPolicy()
        inst = make_load()
        for _ in range(2):
            p.on_load_resolved(FakeCore(), inst, l1_miss=True)
        assert p.predict_miss(inst.pc) is True

    def test_unlearns(self):
        p = PDGPolicy()
        inst = make_load()
        for _ in range(3):
            p.on_load_resolved(FakeCore(), inst, l1_miss=True)
        for _ in range(3):
            p.on_load_resolved(FakeCore(), inst, l1_miss=False)
        assert p.predict_miss(inst.pc) is False

    def test_gating_via_predicted_pending(self):
        core = FakeCore()
        p = PDGPolicy(threshold=1)
        inst = make_load()
        for _ in range(2):
            p.on_load_resolved(core, inst, l1_miss=True)
        p.on_load_dispatch(core, inst)
        assert p.gated(core, 0) is True
        p.on_load_left(core, inst)
        assert p.gated(core, 0) is False

    def test_pending_count_not_double_decremented(self):
        core = FakeCore()
        p = PDGPolicy(threshold=1)
        inst = make_load()
        for _ in range(2):
            p.on_load_resolved(core, inst, l1_miss=True)
        p.on_load_dispatch(core, inst)
        p.on_load_left(core, inst)
        p.on_load_left(core, inst)  # e.g. squash after completion event
        assert p._pending[0] == 0

    def test_non_predicted_load_not_counted(self):
        core = FakeCore()
        p = PDGPolicy(threshold=1)
        inst = make_load()
        p.on_load_dispatch(core, inst)  # untrained: predicted hit
        assert p.gated(core, 0) is False

    def test_reset(self):
        p = PDGPolicy()
        inst = make_load()
        p.on_load_resolved(FakeCore(), inst, l1_miss=True)
        p.reset()
        assert p._table.count(1) == len(p._table)

    def test_rejects_bad_table_size(self):
        with pytest.raises(ValueError):
            PDGPolicy(table_size=1000)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("icount", ICountPolicy), ("rr", RoundRobinPolicy), ("stall", StallPolicy),
        ("flush", FlushPolicy), ("dg", DGPolicy), ("pdg", PDGPolicy),
    ])
    def test_creates_each(self, name, cls):
        assert isinstance(make_fetch_policy(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_fetch_policy("FLUSH"), FlushPolicy)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_fetch_policy("bogus")
