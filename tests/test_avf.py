"""Bit-level AVF accounting."""

import pytest

from repro.config import MachineConfig
from repro.isa.instruction import DynInst, DynState, OpClass, StaticInst
from repro.reliability.avf import AVFAccount, AVFBitLayout, Structure


def make_dyn(tag=1, opclass=OpClass.IALU, ace=True, ace_pred=True,
             dispatch=0, iq_leave=10, issue=10, commit=20, latency=1,
             state=DynState.COMMITTED):
    st = StaticInst(pc=0x1000 + 4 * tag, opclass=opclass, dest=1, srcs=())
    d = DynInst(tag=tag, thread=0, static=st, stream_pos=tag)
    d.state = state
    d.ace = ace
    d.ace_pred = ace_pred
    d.dispatch_cycle = dispatch
    d.iq_leave_cycle = iq_leave
    d.issue_cycle = issue
    d.commit_cycle = commit
    d.exec_latency = latency
    return d


@pytest.fixture()
def acct():
    return AVFAccount(MachineConfig(), interval_cycles=100)


class TestLayout:
    def test_default_layout_valid(self):
        AVFBitLayout().validate()

    def test_rejects_inverted_layout(self):
        with pytest.raises(ValueError):
            AVFBitLayout(iq_ace=10, iq_unace=50).validate()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AVFBitLayout(rf_reg_bits=0).validate()

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            AVFAccount(MachineConfig(), interval_cycles=0)


class TestBitClassification:
    def test_ace_instruction_bits(self, acct):
        d = make_dyn(ace=True)
        assert acct.iq_bits_oracle(d) == acct.layout.iq_ace

    def test_unace_instruction_keeps_opcode_bits(self, acct):
        # "un-ACE instructions also contain ACE-bits (e.g. opcode)"
        d = make_dyn(ace=False)
        assert 0 < acct.iq_bits_oracle(d) == acct.layout.iq_unace

    def test_nop_bits(self, acct):
        d = make_dyn(opclass=OpClass.NOP, ace=False)
        assert acct.iq_bits_oracle(d) == acct.layout.iq_nop

    def test_squashed_contributes_nothing(self, acct):
        d = make_dyn(state=DynState.SQUASHED)
        assert acct.iq_bits_oracle(d) == 0
        assert acct.rob_bits_oracle(d) == 0
        assert acct.fu_bits_oracle(d) == 0

    def test_predicted_bits_ignore_oracle(self, acct):
        d = make_dyn(ace=False, ace_pred=True)
        assert acct.iq_bits_pred(d) == acct.layout.iq_ace


class TestAttribution:
    def test_iq_avf_arithmetic(self, acct):
        # One ACE instruction resident 10 cycles in a 100-cycle run.
        acct.on_resolved(make_dyn(dispatch=0, iq_leave=10, issue=-1, commit=-1))
        acct.close(total_cycles=100)
        m = MachineConfig()
        expected = (acct.layout.iq_ace * 10) / (m.iq_size * acct.layout.iq_entry_bits * 100)
        assert acct.overall_avf(Structure.IQ) == pytest.approx(expected)

    def test_rob_residency_dispatch_to_commit(self, acct):
        acct.on_resolved(make_dyn(dispatch=5, iq_leave=-1, issue=-1, commit=25))
        acct.close(100)
        m = MachineConfig()
        expected = (acct.layout.rob_ace * 20) / (
            m.num_threads * m.rob_size_per_thread * acct.layout.rob_entry_bits * 100
        )
        assert acct.overall_avf(Structure.ROB) == pytest.approx(expected)

    def test_fu_latency_attribution(self, acct):
        acct.on_resolved(make_dyn(dispatch=-1, iq_leave=-1, issue=3, commit=-1, latency=4))
        acct.close(100)
        assert acct.overall_avf(Structure.FU) > 0

    def test_fu_mem_counts_single_cycle(self, acct):
        from repro.isa.instruction import MemBehavior, MemPattern
        st = StaticInst(
            pc=0x10, opclass=OpClass.LOAD, dest=1, srcs=(2,),
            mem=MemBehavior(MemPattern.HOT, base=0, footprint=4096),
        )
        d = DynInst(tag=1, thread=0, static=st, stream_pos=0)
        d.state = DynState.COMMITTED
        d.ace = True
        d.issue_cycle = 0
        d.exec_latency = 212  # L2 miss: must NOT occupy the FU that long
        d.dispatch_cycle = -1
        acct.on_resolved(d)
        acct2 = AVFAccount(MachineConfig(), interval_cycles=100)
        alu = make_dyn(dispatch=-1, iq_leave=-1, issue=0, commit=-1, latency=1)
        acct2.on_resolved(alu)
        acct.close(100)
        acct2.close(100)
        assert acct.overall_avf(Structure.FU) == acct2.overall_avf(Structure.FU)

    def test_rf_lifetime(self, acct):
        class Rec:
            commit_cycle = 10
            last_read_cycle = 40

        acct.on_rf_lifetime(Rec(), end_cycle=50)
        acct.close(100)
        assert acct.overall_avf(Structure.RF) > 0

    def test_rf_never_read_contributes_nothing(self, acct):
        class Rec:
            commit_cycle = 10
            last_read_cycle = -1

        acct.on_rf_lifetime(Rec(), end_cycle=50)
        acct.close(100)
        assert acct.overall_avf(Structure.RF) == 0


class TestIntervals:
    def test_bucketing_by_leave_cycle(self, acct):
        acct.on_resolved(make_dyn(tag=1, dispatch=0, iq_leave=50, issue=-1, commit=-1))
        acct.on_resolved(make_dyn(tag=2, dispatch=100, iq_leave=150, issue=-1, commit=-1))
        acct.close(200)
        series = acct.interval_avf(Structure.IQ)
        assert len(series) == 2
        assert series[0] > 0 and series[1] > 0

    def test_empty_intervals_are_zero(self, acct):
        acct.on_resolved(make_dyn(dispatch=0, iq_leave=10, issue=-1, commit=-1))
        acct.close(300)
        series = acct.interval_avf(Structure.IQ)
        assert series[1] == 0.0 and series[2] == 0.0

    def test_no_cycles_no_avf(self, acct):
        assert acct.overall_avf(Structure.IQ) == 0.0
        assert acct.interval_avf(Structure.IQ) == []

    def test_avf_bounded_by_one(self, acct):
        # Saturate: more contributions than physically possible is a bug,
        # so a fully-occupied IQ of ACE instructions must stay <= 1.
        m = MachineConfig()
        for tag in range(m.iq_size):
            acct.on_resolved(make_dyn(tag=tag, dispatch=0, iq_leave=100, issue=-1, commit=-1))
        acct.close(100)
        assert acct.overall_avf(Structure.IQ) <= 1.0


class TestCapacity:
    def test_capacity_bits(self, acct):
        m = MachineConfig()
        assert acct.capacity_bits(Structure.IQ) == m.iq_size * acct.layout.iq_entry_bits
        assert acct.capacity_bits(Structure.RF) == (
            max(acct.layout.rf_physical_regs, m.num_threads * 64) * acct.layout.rf_reg_bits
        )
