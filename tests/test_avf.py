"""Bit-level AVF accounting."""

import pytest

from repro.config import MachineConfig
from repro.isa.instruction import DynInst, DynState, OpClass, StaticInst
from repro.reliability.avf import (
    AVFAccount,
    AVFBitLayout,
    Structure,
    interval_bucket,
)


def make_dyn(tag=1, opclass=OpClass.IALU, ace=True, ace_pred=True,
             dispatch=0, iq_leave=10, issue=10, commit=20, latency=1,
             state=DynState.COMMITTED):
    st = StaticInst(pc=0x1000 + 4 * tag, opclass=opclass, dest=1, srcs=())
    d = DynInst(tag=tag, thread=0, static=st, stream_pos=tag)
    d.state = state
    d.ace = ace
    d.ace_pred = ace_pred
    d.dispatch_cycle = dispatch
    d.iq_leave_cycle = iq_leave
    d.issue_cycle = issue
    d.commit_cycle = commit
    d.exec_latency = latency
    return d


@pytest.fixture()
def acct():
    return AVFAccount(MachineConfig(), interval_cycles=100)


class TestLayout:
    def test_default_layout_valid(self):
        AVFBitLayout().validate()

    def test_rejects_inverted_layout(self):
        with pytest.raises(ValueError):
            AVFBitLayout(iq_ace=10, iq_unace=50).validate()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AVFBitLayout(rf_reg_bits=0).validate()

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            AVFAccount(MachineConfig(), interval_cycles=0)


class TestBitClassification:
    def test_ace_instruction_bits(self, acct):
        d = make_dyn(ace=True)
        assert acct.iq_bits_oracle(d) == acct.layout.iq_ace

    def test_unace_instruction_keeps_opcode_bits(self, acct):
        # "un-ACE instructions also contain ACE-bits (e.g. opcode)"
        d = make_dyn(ace=False)
        assert 0 < acct.iq_bits_oracle(d) == acct.layout.iq_unace

    def test_nop_bits(self, acct):
        d = make_dyn(opclass=OpClass.NOP, ace=False)
        assert acct.iq_bits_oracle(d) == acct.layout.iq_nop

    def test_squashed_contributes_nothing(self, acct):
        d = make_dyn(state=DynState.SQUASHED)
        assert acct.iq_bits_oracle(d) == 0
        assert acct.rob_bits_oracle(d) == 0
        assert acct.fu_bits_oracle(d) == 0

    def test_predicted_bits_ignore_oracle(self, acct):
        d = make_dyn(ace=False, ace_pred=True)
        assert acct.iq_bits_pred(d) == acct.layout.iq_ace


class TestAttribution:
    def test_iq_avf_arithmetic(self, acct):
        # One ACE instruction resident 10 cycles in a 100-cycle run.
        acct.on_resolved(make_dyn(dispatch=0, iq_leave=10, issue=-1, commit=-1))
        acct.close(total_cycles=100)
        m = MachineConfig()
        expected = (acct.layout.iq_ace * 10) / (m.iq_size * acct.layout.iq_entry_bits * 100)
        assert acct.overall_avf(Structure.IQ) == pytest.approx(expected)

    def test_rob_residency_dispatch_to_commit(self, acct):
        acct.on_resolved(make_dyn(dispatch=5, iq_leave=-1, issue=-1, commit=25))
        acct.close(100)
        m = MachineConfig()
        expected = (acct.layout.rob_ace * 20) / (
            m.num_threads * m.rob_size_per_thread * acct.layout.rob_entry_bits * 100
        )
        assert acct.overall_avf(Structure.ROB) == pytest.approx(expected)

    def test_fu_latency_attribution(self, acct):
        acct.on_resolved(make_dyn(dispatch=-1, iq_leave=-1, issue=3, commit=-1, latency=4))
        acct.close(100)
        assert acct.overall_avf(Structure.FU) > 0

    def test_fu_mem_counts_single_cycle(self, acct):
        from repro.isa.instruction import MemBehavior, MemPattern
        st = StaticInst(
            pc=0x10, opclass=OpClass.LOAD, dest=1, srcs=(2,),
            mem=MemBehavior(MemPattern.HOT, base=0, footprint=4096),
        )
        d = DynInst(tag=1, thread=0, static=st, stream_pos=0)
        d.state = DynState.COMMITTED
        d.ace = True
        d.issue_cycle = 0
        d.exec_latency = 212  # L2 miss: must NOT occupy the FU that long
        d.dispatch_cycle = -1
        acct.on_resolved(d)
        acct2 = AVFAccount(MachineConfig(), interval_cycles=100)
        alu = make_dyn(dispatch=-1, iq_leave=-1, issue=0, commit=-1, latency=1)
        acct2.on_resolved(alu)
        acct.close(100)
        acct2.close(100)
        assert acct.overall_avf(Structure.FU) == acct2.overall_avf(Structure.FU)

    def test_rf_lifetime(self, acct):
        class Rec:
            commit_cycle = 10
            last_read_cycle = 40

        acct.on_rf_lifetime(Rec(), end_cycle=50)
        acct.close(100)
        assert acct.overall_avf(Structure.RF) > 0

    def test_rf_never_read_contributes_nothing(self, acct):
        class Rec:
            commit_cycle = 10
            last_read_cycle = -1

        acct.on_rf_lifetime(Rec(), end_cycle=50)
        acct.close(100)
        assert acct.overall_avf(Structure.RF) == 0


class TestIntervals:
    def test_bucketing_by_leave_cycle(self, acct):
        acct.on_resolved(make_dyn(tag=1, dispatch=0, iq_leave=50, issue=-1, commit=-1))
        acct.on_resolved(make_dyn(tag=2, dispatch=100, iq_leave=150, issue=-1, commit=-1))
        acct.close(200)
        series = acct.interval_avf(Structure.IQ)
        assert len(series) == 2
        assert series[0] > 0 and series[1] > 0

    def test_empty_intervals_are_zero(self, acct):
        acct.on_resolved(make_dyn(dispatch=0, iq_leave=10, issue=-1, commit=-1))
        acct.close(300)
        series = acct.interval_avf(Structure.IQ)
        assert series[1] == 0.0 and series[2] == 0.0

    def test_no_cycles_no_avf(self, acct):
        assert acct.overall_avf(Structure.IQ) == 0.0
        assert acct.interval_avf(Structure.IQ) == []

    def test_avf_bounded_by_one(self, acct):
        # Saturate: more contributions than physically possible is a bug,
        # so a fully-occupied IQ of ACE instructions must stay <= 1.
        m = MachineConfig()
        for tag in range(m.iq_size):
            acct.on_resolved(make_dyn(tag=tag, dispatch=0, iq_leave=100, issue=-1, commit=-1))
        acct.close(100)
        assert acct.overall_avf(Structure.IQ) <= 1.0


class TestCapacity:
    def test_capacity_bits(self, acct):
        m = MachineConfig()
        assert acct.capacity_bits(Structure.IQ) == m.iq_size * acct.layout.iq_entry_bits
        assert acct.capacity_bits(Structure.RF) == (
            max(acct.layout.rf_physical_regs, m.num_threads * 64) * acct.layout.rf_reg_bits
        )


class TestIntervalBoundary:
    """Regression: an instruction leaving *exactly* on an interval edge
    must be attributed to the interval it was last resident in, matching
    the cycle-by-cycle online accumulation."""

    def test_interval_bucket_edges(self):
        assert interval_bucket(99, 100) == 0
        assert interval_bucket(100, 100) == 1
        assert interval_bucket(0, 100) == 0
        # Guard against negative sentinel cycles.
        assert interval_bucket(-1, 100) == 0

    def test_leave_on_edge_lands_in_previous_interval(self, acct):
        # Resident cycles 90..99, leaves at cycle 100 (= interval edge).
        # Last resident cycle is 99 -> interval 0, not interval 1.
        acct.on_resolved(make_dyn(dispatch=90, iq_leave=100, issue=-1, commit=-1))
        acct.close(200)
        series = acct.interval_avf(Structure.IQ)
        assert series[0] > 0.0
        assert series[1] == 0.0

    def test_rob_commit_on_edge_lands_in_previous_interval(self, acct):
        acct.on_resolved(make_dyn(dispatch=95, iq_leave=-1, issue=-1, commit=100))
        acct.close(200)
        series = acct.interval_avf(Structure.ROB)
        assert series[0] > 0.0
        assert series[1] == 0.0

    def test_fu_completion_on_edge_lands_in_previous_interval(self, acct):
        # Issue at 96, latency 4: occupies cycles 96..99, done at 100.
        acct.on_resolved(
            make_dyn(dispatch=-1, iq_leave=-1, issue=96, commit=-1, latency=4)
        )
        acct.close(200)
        series = acct.interval_avf(Structure.FU)
        assert series[0] > 0.0
        assert series[1] == 0.0

    def test_rf_last_read_on_edge_lands_in_previous_interval(self, acct):
        class Rec:
            commit_cycle = 60
            last_read_cycle = 100

        acct.on_rf_lifetime(Rec(), end_cycle=200)
        acct.close(200)
        series = acct.interval_avf(Structure.RF)
        assert series[0] > 0.0
        assert series[1] == 0.0

    def test_oracle_matches_per_cycle_accumulation(self, acct):
        """Oracle interval bit-cycles must equal what a per-cycle online
        counter charging each resident cycle's interval would record,
        when every residency fits inside one interval."""
        # Three residencies, each within a single interval, including
        # one whose leave cycle is exactly the edge.
        spans = [(0, 40), (60, 100), (150, 180)]  # [dispatch, leave)
        for tag, (d, l) in enumerate(spans, start=1):
            acct.on_resolved(
                make_dyn(tag=tag, dispatch=d, iq_leave=l, issue=-1, commit=-1)
            )
        acct.close(300)
        # Online reference: charge iq_ace bits for every resident cycle.
        online = {}
        for d, l in spans:
            for cycle in range(d, l):
                b = cycle // acct.interval_cycles
                online[b] = online.get(b, 0) + acct.layout.iq_ace
        denom = acct.capacity_bits(Structure.IQ) * acct.interval_cycles
        expected = [online.get(i, 0) / denom for i in range(3)]
        assert acct.interval_avf(Structure.IQ) == pytest.approx(expected)


class TestBusEmission:
    def _bus_with(self, topic):
        from repro.telemetry.bus import EventBus

        bus = EventBus()
        events = []
        bus.subscribe(topic, events.append)
        return bus, events

    def test_attribution_event_carries_bit_cycles(self, acct):
        from repro.telemetry.topics import TOPIC_RELIABILITY_ATTRIBUTION

        bus, events = self._bus_with(TOPIC_RELIABILITY_ATTRIBUTION)
        acct.bus = bus
        acct.on_resolved(make_dyn(dispatch=0, iq_leave=10, issue=10, commit=20))
        assert len(events) == 1
        p = events[0].payload
        assert p["iq_bit_cycles"] == acct.layout.iq_ace * 10
        assert p["rob_bit_cycles"] == acct.layout.rob_ace * 20
        assert p["ace"] is True and p["quiet"] is False
        assert p["iq_leave_cycle"] == 10

    def test_no_subscriber_no_emission(self, acct):
        from repro.telemetry.bus import EventBus

        acct.bus = EventBus()
        # Must not raise and must still attribute normally.
        acct.on_resolved(make_dyn(dispatch=0, iq_leave=10, issue=-1, commit=-1))
        acct.close(100)
        assert acct.overall_avf(Structure.IQ) > 0

    def test_rf_event(self, acct):
        from repro.telemetry.topics import TOPIC_RELIABILITY_RF

        bus, events = self._bus_with(TOPIC_RELIABILITY_RF)
        acct.bus = bus

        class Rec:
            commit_cycle = 10
            last_read_cycle = 40
            dyn = make_dyn()

        acct.on_rf_lifetime(Rec(), end_cycle=50)
        assert len(events) == 1
        assert events[0].payload["bit_cycles"] == acct.layout.rf_reg_bits * 30
