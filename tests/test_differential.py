"""Differential and fuzz testing.

The cache is checked against an independent reference model under
random access streams; the pipeline is fuzzed across random small
machines/workloads with its structural invariants asserted.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MachineConfig, ReliabilityConfig, SimulationConfig
from repro.core.pipeline import SMTPipeline
from repro.isa.generator import generate_program
from repro.memory.cache import SetAssocCache


class ReferenceCache:
    """Straightforward LRU model: per-set ordered list of tags, written
    independently of the production implementation."""

    def __init__(self, sets, assoc, line):
        self.sets = sets
        self.assoc = assoc
        self.line = line
        self.state = {i: [] for i in range(sets)}

    def access(self, addr):
        lineno = addr // self.line
        idx = lineno % self.sets
        tag = lineno // self.sets
        entries = self.state[idx]
        hit = tag in entries
        if hit:
            entries.remove(tag)
        entries.insert(0, tag)
        del entries[self.assoc:]
        return hit


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=400),
    st.sampled_from([(4, 1), (4, 2), (8, 4), (2, 2)]),
)
def test_cache_matches_reference(addrs, geometry):
    sets, assoc = geometry
    line = 64
    cache = SetAssocCache(
        CacheConfig(size=sets * assoc * line, assoc=assoc, line_size=line, latency=1)
    )
    ref = ReferenceCache(sets, assoc, line)
    for a in addrs:
        assert cache.access(a) == ref.access(a), f"divergence at addr {a:#x}"


@settings(max_examples=6, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["gcc", "mcf", "swim", "mesa", "vpr"]),
    st.integers(min_value=1, max_value=3),
)
def test_pipeline_fuzz_invariants(seed, benchmark, n_threads):
    """Random (seed, workload, thread-count) pipelines must preserve the
    structural invariants for their whole run."""
    rng = random.Random(seed)
    machine = MachineConfig(
        num_threads=n_threads,
        iq_size=rng.choice([16, 32, 96]),
        rob_size_per_thread=rng.choice([24, 96]),
        lsq_size_per_thread=rng.choice([12, 48]),
        fetch_width=rng.choice([2, 4, 8]),
        issue_width=rng.choice([2, 4, 8]),
        commit_width=rng.choice([2, 4, 8]),
    )
    machine.validate()
    programs = [
        generate_program(benchmark, seed=seed + i) for i in range(n_threads)
    ]
    sim = SimulationConfig(
        max_cycles=700, warmup_cycles=0, seed=seed,
        bp_warmup_instructions=1_000,
        reliability=ReliabilityConfig(interval_cycles=200, ace_window=400),
    )
    pipe = SMTPipeline(programs, machine=machine, sim=sim)
    violations = []
    orig = pipe._tick_stats

    def checked():
        if len(pipe.iq) > machine.iq_size:
            violations.append(("iq", pipe.cycle))
        if pipe.iq.pred_ace_bits < 0 or pipe.rob_pred_ace_bits < 0:
            violations.append(("counter", pipe.cycle))
        for t in range(n_threads):
            if len(pipe.robs[t]) > machine.rob_size_per_thread:
                violations.append(("rob", pipe.cycle))
            if len(pipe.lsqs[t]) > machine.lsq_size_per_thread:
                violations.append(("lsq", pipe.cycle))
            if pipe._outstanding_l2[t] < 0 or pipe._outstanding_l1d[t] < 0:
                violations.append(("outstanding", pipe.cycle))
        orig()

    pipe._tick_stats = checked
    res = pipe.run()
    assert violations == []
    assert res.committed > 0
    assert 0.0 <= res.iq_avf <= 1.0


# ----------------------------------------------------------------------
# Backend parity: the fast engine must be observationally equivalent
# to the reference interpreter on SimulationResult.
# ----------------------------------------------------------------------
import numpy as np
import pytest

from repro.core.backend import backend_names
from repro.isa.instruction import DynInst, DynState, OpClass, StaticInst
from repro.isa.program import BasicBlock, SyntheticProgram
from repro.reliability.dvm import DVMController
from repro.workloads import get_mix


def _parity_sim(hist=False, warmup=300, cycles=1_500):
    return SimulationConfig(
        max_cycles=cycles, warmup_cycles=warmup, seed=7,
        bp_warmup_instructions=2_000,
        collect_ready_queue_histogram=hist,
        reliability=ReliabilityConfig(interval_cycles=300, ace_window=600),
    )


def _run_backend(backend, mix, fetch_policy, scheduler, dvm_on, **sim_kw):
    # Fresh program objects per run: results are a pure function of the
    # seed, so sharing is unnecessary and isolation is total.
    programs = get_mix(mix).programs(seed=7)
    sim = _parity_sim(**sim_kw)
    dvm = DVMController(0.05, config=sim.reliability) if dvm_on else None
    return SMTPipeline(
        programs, sim=sim, fetch_policy=fetch_policy,
        scheduler=scheduler, dvm=dvm, backend=backend,
    ).run()


# One row per figure family: fig5 sweeps fetch policies, fig8 the VISA
# scheduler, fig9/10 DVM; MEM-A exercises the idle-skip path, CPU-A the
# dense-issue path.
_PARITY_GRID = [
    ("MEM-A", "icount", "oldest", False),
    ("MEM-A", "icount", "oldest", True),
    ("MEM-A", "icount", "visa", False),
    ("MEM-A", "icount", "visa", True),
    ("MEM-A", "flush", "oldest", False),
    ("MEM-A", "flush", "visa", True),
    ("MEM-A", "stall", "oldest", False),
    ("MEM-A", "rr", "oldest", False),
    ("CPU-A", "icount", "oldest", False),
    ("CPU-A", "icount", "visa", True),
    ("CPU-A", "pdg", "oldest", False),
    ("CPU-A", "rr", "visa", False),
]


class TestBackendParity:
    @pytest.mark.parametrize(
        "mix,fetch_policy,scheduler,dvm_on", _PARITY_GRID,
        ids=[f"{m}-{f}-{s}-{'dvm' if d else 'base'}" for m, f, s, d in _PARITY_GRID],
    )
    def test_results_identical(self, mix, fetch_policy, scheduler, dvm_on):
        ref = _run_backend("reference", mix, fetch_policy, scheduler, dvm_on)
        fast = _run_backend("fast", mix, fetch_policy, scheduler, dvm_on)
        assert ref == fast

    def test_registry_reference_is_first(self):
        names = backend_names()
        assert names[0] == "reference" and "fast" in names

    def test_warmup_zero_edge(self):
        ref = _run_backend("reference", "MEM-A", "icount", "oldest", False, warmup=0)
        fast = _run_backend("fast", "MEM-A", "icount", "oldest", False, warmup=0)
        assert ref == fast

    def test_ready_queue_histograms_identical(self):
        # SimulationResult.__eq__ is ambiguous with numpy histogram
        # fields, so the histogram run compares arrays explicitly and
        # the scalar metrics by hand.
        ref = _run_backend("reference", "MEM-A", "icount", "visa", True, hist=True)
        fast = _run_backend("fast", "MEM-A", "icount", "visa", True, hist=True)
        assert np.array_equal(ref.ready_hist, fast.ready_hist)
        assert np.array_equal(ref.ready_hist_ace, fast.ready_hist_ace)
        assert (ref.committed, ref.cycles, ref.iq_avf, ref.rob_avf) == (
            fast.committed, fast.cycles, fast.iq_avf, fast.rob_avf
        )
        assert ref.intervals == fast.intervals


# ----------------------------------------------------------------------
# Issue-bandwidth starvation regression (the bugfix this PR pins).
# ----------------------------------------------------------------------
def _fu_burst_program(n_fmult, n_ialu, name="fmult-burst"):
    """A self-looping block: a burst of FMULTs, then independent IALUs."""
    insts = []
    pc = 0x1000
    for _ in range(n_fmult):
        insts.append(StaticInst(pc=pc, opclass=OpClass.FMULT))
        pc += 4
    for _ in range(n_ialu):
        insts.append(StaticInst(pc=pc, opclass=OpClass.IALU))
        pc += 4
    prog = SyntheticProgram(
        name=name, blocks=[BasicBlock(bid=0, insts=insts, fall_block=0)]
    )
    prog.validate()
    return prog


class TestIssueStarvationRegression:
    def test_issue_fills_width_past_fu_blocked_entries(self):
        """More ready FMULTs than any fixed selection window, one FMULT
        unit: issue must skip the blocked entries and still fill the
        full width from younger IALUs (the former width*2 over-selection
        window issued exactly one instruction here)."""
        machine = MachineConfig(num_threads=1, fp_mult_div_sqrt=1)
        machine.validate()
        prog = _fu_burst_program(20, 8)
        pipe = SMTPipeline(
            [prog], machine=machine,
            sim=_parity_sim(warmup=0, cycles=100),
        )
        statics = list(prog.all_insts())
        insts = []
        for i, st_inst in enumerate(statics[:28]):
            d = DynInst(tag=i + 1, thread=0, static=st_inst, stream_pos=i)
            d.ace_pred = True
            pipe.iq.insert(d, cycle=0)
            insts.append(d)
        pipe._issue()
        issued = [d for d in insts if d.state == DynState.ISSUED]
        assert len(issued) == machine.issue_width
        fmults = [d for d in issued if d.opclass == OpClass.FMULT]
        assert len(fmults) == 1  # the single FP mult/div/sqrt unit
        # Oldest eligible entries win: the issued FMULT is the oldest.
        assert fmults[0].tag == 1

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_fu_burst_sustains_issue_bandwidth(self, backend):
        """Periodic 17-wide FMULT bursts (wider than the old selection
        window) in a mostly-IALU stream: with starvation fixed the
        machine sustains high IPC through each burst."""
        machine = MachineConfig(num_threads=1, fp_mult_div_sqrt=1)
        machine.validate()
        prog = _fu_burst_program(17, 153)
        # A short functional warm-up pre-warms the i-cache; a cold
        # 170-instruction footprint would serialize on ~400-cycle
        # compulsory line misses and measure memory, not issue.
        sim = SimulationConfig(
            max_cycles=1_200, warmup_cycles=200, seed=11,
            bp_warmup_instructions=2_000,
            reliability=ReliabilityConfig(interval_cycles=300, ace_window=600),
        )
        res = SMTPipeline([prog], machine=machine, sim=sim, backend=backend).run()
        assert res.ipc > 5.0
        assert res.committed > 5_000

    def test_fu_burst_backend_parity(self):
        machine = MachineConfig(num_threads=1, fp_mult_div_sqrt=1)
        sim = SimulationConfig(
            max_cycles=1_200, warmup_cycles=200, seed=11,
            bp_warmup_instructions=2_000,
            reliability=ReliabilityConfig(interval_cycles=300, ace_window=600),
        )
        runs = [
            SMTPipeline(
                [_fu_burst_program(17, 153)], machine=machine, sim=sim,
                backend=backend,
            ).run()
            for backend in ("reference", "fast")
        ]
        assert runs[0] == runs[1]


# ----------------------------------------------------------------------
# Fast backend under the parallel harness: pass-through, checkpoint
# resume, and row-for-row parity with the reference engine.
# ----------------------------------------------------------------------
from repro.harness.parallel import parallel_sweep
from repro.harness.runner import BenchScale, clear_caches

_SWEEP_SCALE = BenchScale(
    max_cycles=2_000, warmup_cycles=400, interval_cycles=400,
    ace_window=800, profile_instructions=6_000, profile_window=1_500,
)
_SWEEP_AXES = {"scheduler": ["oldest", "visa"]}


@pytest.fixture(scope="module")
def _sweep_caches():
    clear_caches()
    yield
    clear_caches()


class TestFastBackendParallelHarness:
    def test_sweep_rows_match_reference_and_resume_is_cached(
        self, _sweep_caches, tmp_path
    ):
        """backend="fast" rides through the parallel engine as a plain
        run_sim kwarg: the rows must equal a reference sweep metric for
        metric, land in the checkpoint, and resume without executing."""
        ref = parallel_sweep("CPU-A", _SWEEP_SCALE, _SWEEP_AXES, checkpoint=None)
        ck = str(tmp_path / "fast-sweep.jsonl")
        fast = parallel_sweep(
            "CPU-A", _SWEEP_SCALE, _SWEEP_AXES, checkpoint=ck, backend="fast"
        )
        assert fast.executed == len(fast.rows) and fast.cached == 0
        # Fixed kwargs are not row columns, so metric-for-metric parity
        # is plain row equality.
        assert fast.rows == ref.rows

        resumed = parallel_sweep(
            "CPU-A", _SWEEP_SCALE, _SWEEP_AXES,
            checkpoint=ck, resume=True, backend="fast",
        )
        assert resumed.executed == 0 and resumed.cached == len(fast.rows)
        assert resumed.rows == fast.rows

    def test_backend_distinguishes_checkpoint_signature(
        self, _sweep_caches, tmp_path
    ):
        """A reference-backend checkpoint must not satisfy a fast-backend
        resume (and vice versa): the backend kwarg is part of the sweep
        signature, so a resume against the other engine's shard restarts
        rather than serving the wrong engine's rows as cached."""
        ck = str(tmp_path / "ref-sweep.jsonl")
        parallel_sweep("CPU-A", _SWEEP_SCALE, _SWEEP_AXES, checkpoint=ck)
        with pytest.raises(ValueError, match="different sweep configuration"):
            parallel_sweep(
                "CPU-A", _SWEEP_SCALE, _SWEEP_AXES,
                checkpoint=ck, resume=True, backend="fast",
            )
