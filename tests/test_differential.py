"""Differential and fuzz testing.

The cache is checked against an independent reference model under
random access streams; the pipeline is fuzzed across random small
machines/workloads with its structural invariants asserted.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MachineConfig, ReliabilityConfig, SimulationConfig
from repro.core.pipeline import SMTPipeline
from repro.isa.generator import generate_program
from repro.memory.cache import SetAssocCache


class ReferenceCache:
    """Straightforward LRU model: per-set ordered list of tags, written
    independently of the production implementation."""

    def __init__(self, sets, assoc, line):
        self.sets = sets
        self.assoc = assoc
        self.line = line
        self.state = {i: [] for i in range(sets)}

    def access(self, addr):
        lineno = addr // self.line
        idx = lineno % self.sets
        tag = lineno // self.sets
        entries = self.state[idx]
        hit = tag in entries
        if hit:
            entries.remove(tag)
        entries.insert(0, tag)
        del entries[self.assoc:]
        return hit


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=400),
    st.sampled_from([(4, 1), (4, 2), (8, 4), (2, 2)]),
)
def test_cache_matches_reference(addrs, geometry):
    sets, assoc = geometry
    line = 64
    cache = SetAssocCache(
        CacheConfig(size=sets * assoc * line, assoc=assoc, line_size=line, latency=1)
    )
    ref = ReferenceCache(sets, assoc, line)
    for a in addrs:
        assert cache.access(a) == ref.access(a), f"divergence at addr {a:#x}"


@settings(max_examples=6, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["gcc", "mcf", "swim", "mesa", "vpr"]),
    st.integers(min_value=1, max_value=3),
)
def test_pipeline_fuzz_invariants(seed, benchmark, n_threads):
    """Random (seed, workload, thread-count) pipelines must preserve the
    structural invariants for their whole run."""
    rng = random.Random(seed)
    machine = MachineConfig(
        num_threads=n_threads,
        iq_size=rng.choice([16, 32, 96]),
        rob_size_per_thread=rng.choice([24, 96]),
        lsq_size_per_thread=rng.choice([12, 48]),
        fetch_width=rng.choice([2, 4, 8]),
        issue_width=rng.choice([2, 4, 8]),
        commit_width=rng.choice([2, 4, 8]),
    )
    machine.validate()
    programs = [
        generate_program(benchmark, seed=seed + i) for i in range(n_threads)
    ]
    sim = SimulationConfig(
        max_cycles=700, warmup_cycles=0, seed=seed,
        bp_warmup_instructions=1_000,
        reliability=ReliabilityConfig(interval_cycles=200, ace_window=400),
    )
    pipe = SMTPipeline(programs, machine=machine, sim=sim)
    violations = []
    orig = pipe._tick_stats

    def checked():
        if len(pipe.iq) > machine.iq_size:
            violations.append(("iq", pipe.cycle))
        if pipe.iq.pred_ace_bits < 0 or pipe.rob_pred_ace_bits < 0:
            violations.append(("counter", pipe.cycle))
        for t in range(n_threads):
            if len(pipe.robs[t]) > machine.rob_size_per_thread:
                violations.append(("rob", pipe.cycle))
            if len(pipe.lsqs[t]) > machine.lsq_size_per_thread:
                violations.append(("lsq", pipe.cycle))
            if pipe._outstanding_l2[t] < 0 or pipe._outstanding_l1d[t] < 0:
                violations.append(("outstanding", pipe.cycle))
        orig()

    pipe._tick_stats = checked
    res = pipe.run()
    assert violations == []
    assert res.committed > 0
    assert 0.0 <= res.iq_avf <= 1.0
