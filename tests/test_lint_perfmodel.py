"""The perfmodel tier: loop-weighted cost model, hot-loop-alloc /
fork-safety / pickle-safety checkers, measured-span cross-validation,
and the ``repro lint hotpaths`` CLI."""

import ast
import dataclasses
import json
import os
import textwrap

import pytest

from repro.analysis import LintEngine, Severity
from repro.analysis.engine import FileContext
from repro.analysis.flow.project import ProjectContext
from repro.analysis.perfmodel import (
    HOT_RANK_THRESHOLD,
    LOOP_WEIGHT,
    CostModel,
    default_entry_points,
    iter_pool_sites,
    measured_durations,
    scan_function,
    spearman,
    validate_against_trace,
    worker_reachable,
)
from repro.analysis.perfmodel.cli import hotpaths_main
from repro.analysis.suppress import parse_suppressions

HERE = os.path.dirname(__file__)
ROOT = os.path.dirname(os.path.abspath(HERE))
SRC = os.path.join(ROOT, "src")
FIXTURES = os.path.join(HERE, "lint_fixtures")

#: project rule -> its dedicated counterexample fixture directory.
FIXTURE_OF = {
    "hot-loop-alloc": os.path.join(FIXTURES, "hot_loop_alloc"),
    "fork-safety": os.path.join(FIXTURES, "fork_safety"),
    "pickle-safety": os.path.join(FIXTURES, "pickle_safety"),
}


def run_rule(rule, path):
    return LintEngine([rule]).run([path])


def make_project(tmp_path, **modules):
    """Build a ProjectContext from ``name=source`` module pairs."""
    files = []
    for name, src in modules.items():
        src = textwrap.dedent(src)
        p = tmp_path / f"{name}.py"
        p.write_text(src)
        files.append(
            FileContext(str(p), src, ast.parse(src), parse_suppressions(src))
        )
    return ProjectContext(sorted(files, key=lambda c: c.path))


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
class TestScanFunction:
    def _cost(self, body):
        tree = ast.parse(textwrap.dedent(body))
        func = tree.body[0]
        assert isinstance(func, ast.FunctionDef)
        cost, _calls = scan_function(func)
        return cost

    def test_straight_line_costs_one_per_statement(self):
        assert self._cost("def f():\n    a = 1\n    b = 2\n") == 2.0

    def test_loop_body_weighted_by_loop_weight(self):
        cost = self._cost(
            """
            def f(xs):
                for x in xs:
                    a = x
                    b = x
            """
        )
        # The ``for`` itself is a depth-0 statement; its body is depth 1.
        assert cost == 1.0 + 2 * LOOP_WEIGHT

    def test_nesting_multiplies(self):
        cost = self._cost(
            """
            def f(xs):
                for x in xs:
                    for y in xs:
                        a = y
            """
        )
        assert cost == 1.0 + LOOP_WEIGHT + LOOP_WEIGHT**2

    def test_nested_def_attributed_to_enclosing(self):
        cost = self._cost(
            """
            def f(xs):
                def inner():
                    for x in xs:
                        a = x
                return inner
            """
        )
        # def stmt + return stmt + inner's for + its body.
        assert cost == 2.0 + 1.0 + LOOP_WEIGHT

    def test_class_body_ignored(self):
        cost = self._cost(
            """
            def f():
                class C:
                    x = 1
                    y = 2
                return C
            """
        )
        assert cost == 2.0  # the ClassDef stmt and the return


class TestCostModel:
    PIPELINE = """
        class SMTPipeline:
            def run(self, cycles):
                for _ in range(cycles):
                    self._issue()

            def _issue(self):
                self._select()

            def _select(self):
                return 1

        def unreached():
            return 0
        """

    def test_default_entry_points(self, tmp_path):
        project = make_project(
            tmp_path,
            pipeline=self.PIPELINE,
            bench="def _make_case():\n    return 1\ndef helper():\n    return 2\n",
        )
        assert default_entry_points(project) == [
            "bench._make_case",
            "pipeline.SMTPipeline.run",
        ]

    def test_call_score_propagates_through_loops(self, tmp_path):
        project = make_project(tmp_path, pipeline=self.PIPELINE)
        model = CostModel(project)
        # run seeds 1.0; _issue is called from inside run's loop.
        assert model.score_of("pipeline.SMTPipeline.run") == 1.0
        assert model.score_of("pipeline.SMTPipeline._issue") == LOOP_WEIGHT
        # _select inherits _issue's score (called at depth 0 there).
        assert model.score_of("pipeline.SMTPipeline._select") == LOOP_WEIGHT
        assert model.score_of("pipeline.unreached") == 0.0

    def test_ranking_excludes_unreached(self, tmp_path):
        project = make_project(tmp_path, pipeline=self.PIPELINE)
        ranked = [c.qualname for c in CostModel(project).ranking()]
        assert "pipeline.unreached" not in ranked
        assert "pipeline.SMTPipeline._issue" in ranked

    def test_inclusive_cost_folds_callees_in(self, tmp_path):
        project = make_project(tmp_path, pipeline=self.PIPELINE)
        model = CostModel(project)
        incl_select = model.cost_of("pipeline.SMTPipeline._select").inclusive_cost
        incl_issue = model.cost_of("pipeline.SMTPipeline._issue").inclusive_cost
        assert incl_issue == 1.0 + incl_select
        run = model.cost_of("pipeline.SMTPipeline.run")
        assert run.inclusive_cost == run.local_cost + LOOP_WEIGHT * incl_issue

    def test_recursion_terminates_with_shared_score(self, tmp_path):
        project = make_project(
            tmp_path,
            pipeline="""
            class SMTPipeline:
                def run(self):
                    ping()

            def ping():
                pong()

            def pong():
                ping()
            """,
        )
        model = CostModel(project)
        # The ping<->pong cycle forms one SCC: finite, shared score.
        assert model.score_of("pipeline.ping") == model.score_of("pipeline.pong") == 1.0
        assert model.cost_of("pipeline.ping").inclusive_cost == 2.0

    def test_explicit_entry_points_override_defaults(self, tmp_path):
        project = make_project(tmp_path, pipeline=self.PIPELINE)
        model = CostModel(project, entry_points=["pipeline.unreached"])
        assert model.score_of("pipeline.unreached") == 1.0
        assert model.score_of("pipeline.SMTPipeline._issue") == 0.0


# ----------------------------------------------------------------------
# The three project checkers against their fixtures
# ----------------------------------------------------------------------
class TestCheckersFireOnFixtures:
    @pytest.mark.parametrize("rule", sorted(FIXTURE_OF))
    def test_rule_fires_on_its_fixture(self, rule):
        diags = run_rule(rule, FIXTURE_OF[rule])
        assert diags, f"{rule} silent on its own fixture"
        assert all(d.rule == rule for d in diags)

    @pytest.mark.parametrize("rule", sorted(FIXTURE_OF))
    def test_other_new_rules_stay_silent_on_fixture(self, rule):
        for other in sorted(set(FIXTURE_OF) - {rule}):
            diags = run_rule(other, FIXTURE_OF[rule])
            assert diags == [], f"{other} fired on the {rule} fixture"


class TestHotLoopAlloc:
    def test_flags_both_hot_constructs_and_nothing_else(self):
        diags = run_rule("hot-loop-alloc", FIXTURE_OF["hot-loop-alloc"])
        assert [d.line for d in diags] == [18, 19]
        labels = {d.symbol.rsplit(":", 1)[1] for d in diags}
        assert labels == {"list comprehension", "f-string formatting"}
        assert all(d.severity == Severity.WARNING for d in diags)

    def test_silent_without_entry_points(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "def f(xs):\n    for x in xs:\n        y = [x]\n"
        )
        assert run_rule("hot-loop-alloc", str(tmp_path)) == []

    def test_rank_message_names_the_threshold(self):
        diags = run_rule("hot-loop-alloc", FIXTURE_OF["hot-loop-alloc"])
        assert f">= {HOT_RANK_THRESHOLD:.0f}" in diags[0].message


class TestForkSafety:
    def test_flags_all_four_mutations_in_worker_code(self):
        diags = run_rule("fork-safety", FIXTURE_OF["fork-safety"])
        assert [d.line for d in diags] == [13, 14, 20, 21]
        # ... and only in worker-reachable functions: local_report's
        # identical .append() on line 34 stays silent.
        assert all("workers.run_point" in d.message for d in diags)

    def test_worker_reachable_closure(self, tmp_path):
        project = make_project(
            tmp_path,
            jobs="""
            def work(x):
                return helper(x)

            def helper(x):
                return x

            def cold(x):
                return x

            def launch(pool, xs):
                return pool.map(work, xs)
            """,
        )
        reached = worker_reachable(project)
        assert reached == {"jobs.work": "jobs.work", "jobs.helper": "jobs.work"}


class TestPickleSafety:
    def test_flags_every_unpicklable_crossing(self):
        diags = run_rule("pickle-safety", FIXTURE_OF["pickle-safety"])
        assert [d.line for d in diags] == [22, 23, 24, 25, 30]
        by_sev = {s: sum(1 for d in diags if d.severity == s) for s in Severity}
        assert by_sev[Severity.ERROR] == 3  # lambda, nested def, initializer
        assert by_sev[Severity.WARNING] == 2  # bound method, open() handle

    def test_pool_sites_include_initializer_keyword(self, tmp_path):
        project = make_project(
            tmp_path,
            jobs="""
            def setup():
                pass

            def launch(pool, xs, f):
                pool = make_pool(initializer=setup)
                return pool.map(f, xs)
            """,
        )
        kinds = sorted(s.kind for s in iter_pool_sites(project))
        assert kinds == ["initializer", "map"]


# ----------------------------------------------------------------------
# Spearman + span validation
# ----------------------------------------------------------------------
class TestSpearman:
    def test_identical_order_is_one(self):
        assert spearman([3.0, 2.0, 1.0], [30.0, 20.0, 10.0]) == 1.0

    def test_reversed_order_is_minus_one(self):
        assert spearman([1.0, 2.0, 3.0], [30.0, 20.0, 10.0]) == -1.0

    def test_ties_share_average_ranks(self):
        r = spearman([2.0, 2.0, 1.0], [5.0, 4.0, 3.0])
        assert 0.0 < r < 1.0

    def test_degenerate_inputs_correlate_perfectly(self):
        assert spearman([], []) == 1.0
        assert spearman([1.0], [2.0]) == 1.0
        assert spearman([1.0, 1.0], [3.0, 4.0]) == 1.0  # constant side

    def test_unpaired_samples_raise(self):
        with pytest.raises(ValueError):
            spearman([1.0], [1.0, 2.0])


class TestMeasuredDurations:
    def test_sums_complete_events_in_measured_cats_only(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "cat": "stage", "name": "issue", "dur": 5.0},
                {"ph": "X", "cat": "stage", "name": "issue", "dur": 7.0},
                {"ph": "X", "cat": "decision", "name": "issue", "dur": 100.0},
                {"ph": "i", "cat": "stage", "name": "issue"},
                {"ph": "X", "cat": "cycle", "name": "cycle", "dur": 20.0},
            ]
        }
        assert measured_durations(doc) == {"issue": 12.0, "cycle": 20.0}

    def test_missing_trace_events_raises(self):
        with pytest.raises(ValueError):
            measured_durations({"otherData": {}})


class TestValidateAgainstTrace:
    PIPELINE = """
        class SMTPipeline:
            def run(self, cycles):
                for _ in range(cycles):
                    self._issue()
                    self._commit()

            def _issue(self):
                a = 1
                b = 2
                return a + b

            def _commit(self):
                return 0
        """

    def _doc(self, issue_us, commit_us):
        return {
            "traceEvents": [
                {"ph": "X", "cat": "stage", "name": "issue", "dur": issue_us},
                {"ph": "X", "cat": "stage", "name": "commit", "dur": commit_us},
                {"ph": "X", "cat": "stage", "name": "mystery", "dur": 1.0},
            ]
        }

    def test_agreeing_ranking_correlates_perfectly(self, tmp_path):
        project = make_project(tmp_path, pipeline=self.PIPELINE)
        span_map = {
            "issue": "pipeline.SMTPipeline._issue",
            "commit": "pipeline.SMTPipeline._commit",
        }
        report = validate_against_trace(
            project, self._doc(30.0, 10.0), span_map=span_map
        )
        assert report.correlation == 1.0
        assert [p.span_name for p in report.pairs] == ["issue", "commit"]
        assert report.unmatched_spans == ("mystery",)

    def test_disagreeing_ranking_correlates_negatively(self, tmp_path):
        project = make_project(tmp_path, pipeline=self.PIPELINE)
        span_map = {
            "issue": "pipeline.SMTPipeline._issue",
            "commit": "pipeline.SMTPipeline._commit",
        }
        report = validate_against_trace(
            project, self._doc(10.0, 30.0), span_map=span_map
        )
        assert report.correlation == -1.0


class TestValidateSpansEndToEnd:
    """The acceptance gate: at pinned scale, the static ranking must
    rank-correlate >= 0.6 with the measured stage spans."""

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        from repro.harness.runner import BenchScale, run_recorded
        from repro.perf.chrome_trace import write_chrome_trace
        from repro.perf.spans import SpanTracer, TracingProfiler

        scale = dataclasses.replace(
            BenchScale.from_env(), max_cycles=1200, warmup_cycles=200
        )
        profiler = TracingProfiler(SpanTracer(), max_traced_cycles=1200)
        result, recorder, _profile = run_recorded(
            "MEM-A", scale, profiler=profiler
        )
        path = str(tmp_path_factory.mktemp("spans") / "trace.json")
        write_chrome_trace(
            path,
            spans=profiler.tracer.spans,
            recorded=recorder.events,
            manifest=result.manifest,
        )
        return path

    def test_correlation_gate_passes_via_cli(self, trace_path, tmp_path):
        out = str(tmp_path / "report.json")
        code = hotpaths_main(
            [
                SRC,
                "--validate-spans",
                trace_path,
                "--min-correlation",
                "0.6",
                "--format",
                "json",
                "--output",
                out,
            ]
        )
        with open(out, encoding="utf-8") as fh:
            payload = json.load(fh)
        validation = payload["validation"]
        assert code == 0, f"correlation {validation['correlation']:.3f} < 0.6"
        assert validation["correlation"] >= 0.6
        # Every stage span the profiler emits must map to a function.
        assert validation["unmatched_spans"] == []
        assert len(validation["pairs"]) >= 6

    def test_impossible_gate_fails_with_exit_one(self, trace_path, capsys):
        code = hotpaths_main(
            [SRC, "--validate-spans", trace_path, "--min-correlation", "1.01"]
        )
        assert code == 1
        assert "below the --min-correlation gate" in capsys.readouterr().err


# ----------------------------------------------------------------------
# hotpaths CLI surface
# ----------------------------------------------------------------------
class TestHotpathsCLI:
    def test_text_report_on_fixture(self, capsys):
        assert hotpaths_main([FIXTURE_OF["hot-loop-alloc"], "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "hot-path ranking" in out
        assert "pipeline.SMTPipeline._issue" in out
        assert "vectorizability worklist:" in out

    def test_json_payload_shape(self, capsys):
        assert (
            hotpaths_main([FIXTURE_OF["hot-loop-alloc"], "--format", "json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["loop_weight"] == LOOP_WEIGHT
        assert payload["entry_points"] == ["pipeline.SMTPipeline.run"]
        assert payload["ranking"][0]["qualname"].startswith("pipeline.")
        assert {r["qualname"] for r in payload["vectorizability"]} <= {
            r["qualname"] for r in payload["ranking"]
        }

    def test_bad_trace_is_usage_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        code = hotpaths_main(
            [FIXTURE_OF["hot-loop-alloc"], "--validate-spans", missing]
        )
        assert code == 2
        assert "bad trace" in capsys.readouterr().err

    def test_min_correlation_requires_validate_spans(self, capsys):
        code = hotpaths_main(
            [FIXTURE_OF["hot-loop-alloc"], "--min-correlation", "0.5"]
        )
        assert code == 2
        assert "--validate-spans" in capsys.readouterr().err

    def test_dispatch_through_lint_cli(self, capsys):
        from repro.analysis.cli import main as lint_main

        assert (
            lint_main(["hotpaths", FIXTURE_OF["hot-loop-alloc"], "--top", "1"])
            == 0
        )
        assert "hot-path ranking" in capsys.readouterr().out
