"""Cache v2 behavior: project-snapshot transitive invalidation, the
recorded dependency map, and git-scoped ``repro.lint --changed``."""

import json
import os
import shutil
import subprocess
import textwrap

import pytest

from repro.analysis import LintEngine
from repro.analysis.cli import main as lint_main
from repro.analysis.flow.cache import DiagnosticCache

CALLER = """
from callee import issue


class SMTPipeline:
    def run(self, cycles):
        for _ in range(cycles):
            issue(self)
"""

CALLEE_CLEAN = """
def issue(pipe):
    rows = [pipe]
    return rows
"""

#: Same function, comprehension moved inside a loop: now one weighted
#: loop level below the per-cycle call, i.e. statically hot.
CALLEE_HOT = """
def issue(pipe):
    rows = []
    for item in (pipe, pipe):
        rows = [item]
    return rows
"""


def write_tree(root, callee=CALLEE_CLEAN):
    root.mkdir(exist_ok=True)
    (root / "caller.py").write_text(textwrap.dedent(CALLER))
    (root / "callee.py").write_text(textwrap.dedent(callee))


class TestTransitiveInvalidation:
    def test_unchanged_rerun_replays_the_project_snapshot(self, tmp_path):
        tree = tmp_path / "proj"
        write_tree(tree)
        cache = str(tmp_path / "cache")
        LintEngine(["hot-loop-alloc"], cache_dir=cache).run([str(tree)])
        engine = LintEngine(["hot-loop-alloc"], cache_dir=cache)
        assert engine.run([str(tree)]) == []
        assert engine.cache_stats.project_hits == 1
        assert engine.cache_stats.project_misses == 0

    def test_editing_callee_invalidates_callers_project_results(self, tmp_path):
        tree = tmp_path / "proj"
        write_tree(tree)
        cache = str(tmp_path / "cache")
        first = LintEngine(["hot-loop-alloc"], cache_dir=cache).run([str(tree)])
        assert first == []

        # Only the callee changes; the caller (which holds the entry
        # point that makes the callee hot) is untouched and cache-warm.
        write_tree(tree, callee=CALLEE_HOT)
        engine = LintEngine(["hot-loop-alloc"], cache_dir=cache)
        diags = engine.run([str(tree)])
        assert engine.cache_stats.project_hits == 0
        assert engine.cache_stats.project_misses == 1
        assert [d.rule for d in diags] == ["hot-loop-alloc"]
        assert diags[0].path.endswith("callee.py")

    def test_cached_project_diags_match_fresh_ones(self, tmp_path):
        tree = tmp_path / "proj"
        write_tree(tree, callee=CALLEE_HOT)
        cache = str(tmp_path / "cache")
        fresh = LintEngine(["hot-loop-alloc"], cache_dir=cache).run([str(tree)])
        cached = LintEngine(["hot-loop-alloc"], cache_dir=cache).run([str(tree)])
        assert [d.format() for d in cached] == [d.format() for d in fresh]
        assert fresh, "scenario should produce a finding"


class TestDependencyMap:
    def test_import_edge_recorded_during_project_phase(self, tmp_path):
        tree = tmp_path / "proj"
        write_tree(tree)
        cache_dir = str(tmp_path / "cache")
        LintEngine(cache_dir=cache_dir).run([str(tree)])
        cache = DiagnosticCache(cache_dir)
        cache.open([], [])
        deps = cache.deps_map()
        caller = str(tree / "caller.py")
        callee = str(tree / "callee.py")
        assert deps[caller] == [callee]
        assert cache.reverse_dependents({callee}) == {caller}

    def test_reverse_dependents_is_transitive(self, tmp_path):
        cache = DiagnosticCache(str(tmp_path / "cache"))
        cache.open([], [])
        cache.store_deps({"a.py": ["b.py"], "b.py": ["c.py"], "d.py": []})
        assert cache.reverse_dependents({"c.py"}) == {"a.py", "b.py"}
        assert cache.reverse_dependents({"d.py"}) == set()


needs_git = pytest.mark.skipif(
    shutil.which("git") is None, reason="git unavailable"
)


@needs_git
class TestChangedScope:
    @pytest.fixture
    def repo(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_tree(tmp_path / "src")
        (tmp_path / "src" / "unrelated.py").write_text(
            "import time\n\n\ndef now():\n    return time.perf_counter()\n"
        )
        env = {"GIT_CONFIG_GLOBAL": os.devnull, "GIT_CONFIG_SYSTEM": os.devnull}
        for cmd in (
            ["git", "init", "-q"],
            ["git", "config", "user.email", "lint@test"],
            ["git", "config", "user.name", "lint"],
            ["git", "add", "-A"],
            ["git", "commit", "-qm", "seed"],
        ):
            subprocess.run(cmd, check=True, env={**os.environ, **env})
        return tmp_path

    def test_clean_tree_lints_nothing(self, repo, capsys):
        lint_main([])  # warm the cache (also records the deps map)
        capsys.readouterr()
        assert lint_main(["--changed"]) == 0
        assert "no changed python files" in capsys.readouterr().out

    def test_changed_pulls_in_reverse_dependents_only(self, repo, capsys):
        assert lint_main([]) == 1  # unrelated.py's determinism finding
        capsys.readouterr()

        write_tree(repo / "src", callee=CALLEE_HOT)
        assert lint_main(["--changed", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {d["rule"] for d in payload["diagnostics"]}
        paths = {os.path.basename(d["path"]) for d in payload["diagnostics"]}
        # The hot-loop finding needs caller.py's entry point in scope,
        # so the dependent was linted; unrelated.py was not.
        assert rules == {"hot-loop-alloc"}
        assert paths == {"callee.py"}

    def test_changed_rejects_explicit_paths(self, repo, capsys):
        assert lint_main(["--changed", "src"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cold_cache_widens_to_a_full_run(self, repo, capsys):
        write_tree(repo / "src", callee=CALLEE_HOT)
        # No warm-up run: the deps map does not exist yet.
        assert lint_main(["--changed"]) == 1
        captured = capsys.readouterr()
        assert "cold cache" in captured.err
        # Full-run fallback sees every file, including unrelated.py.
        assert "determinism" in captured.out
