"""The ``repro perf`` command tree and ``repro timeline --trace-out``."""

import json

import pytest

from repro.cli import build_parser, main
from repro.perf.chrome_trace import read_trace, validate_trace
from repro.perf.history import KIND_PERF_SUITE, load_history

FAST = ["--bench", "dvm_interval", "--repeats", "1", "--cycles", "400"]


class TestParser:
    def test_perf_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["perf", "run"])
        assert args.perf_command == "run"
        assert args.repeats == 3
        assert args.history == "BENCH_perf.json"
        assert args.bench is None and not args.no_history

    def test_compare_defaults(self):
        args = build_parser().parse_args(["perf", "compare"])
        assert args.tolerance == pytest.approx(0.25)
        assert args.window == 5 and args.results is None

    def test_trace_defaults(self):
        args = build_parser().parse_args(["perf", "trace"])
        assert args.mix == "MEM-A" and args.traced_cycles == 2_000
        assert args.out == "repro-trace.json"

    def test_run_rejects_unknown_bench(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "run", "--bench", "nope"])


class TestPerfRun:
    def test_run_appends_provenance_stamped_entry(self, tmp_path, capsys):
        hist = tmp_path / "BENCH_perf.json"
        out = tmp_path / "current.json"
        rc = main(["perf", "run", *FAST, "--history", str(hist), "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "dvm_interval" in text and "appended" in text
        doc = load_history(str(hist))
        (entry,) = doc["entries"]
        assert entry["kind"] == KIND_PERF_SUITE
        assert entry["results"]["dvm_interval"]["best_s"] > 0
        # Provenance: the manifest records tool, scale and config digest.
        assert entry["manifest"]["extra"]["tool"] == "repro perf"
        assert entry["context"]["partial"] is True
        saved = json.loads(out.read_text())
        assert "dvm_interval" in saved["results"]

    def test_no_history_skips_write(self, tmp_path):
        hist = tmp_path / "BENCH_perf.json"
        assert main(["perf", "run", *FAST, "--history", str(hist), "--no-history"]) == 0
        assert not hist.exists()


class TestPerfCompare:
    def _write_history(self, path, best_s):
        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "entries": [
                        {
                            "kind": KIND_PERF_SUITE,
                            "results": {"dvm_interval": {"best_s": best_s}},
                        }
                    ],
                }
            )
        )

    def _write_results(self, path, best_s):
        path.write_text(
            json.dumps({"results": {"dvm_interval": {"best_s": best_s, "repeats": 1}}})
        )

    def test_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        hist = tmp_path / "BENCH_perf.json"
        cur = tmp_path / "current.json"
        self._write_history(hist, 0.010)
        self._write_results(cur, 0.050)  # 5x slower than baseline
        rc = main(
            ["perf", "compare", "--history", str(hist), "--results", str(cur),
             "--tolerance", "0.25"]
        )
        assert rc == 1
        assert "regression" in capsys.readouterr().out

    def test_within_tolerance_passes(self, tmp_path, capsys):
        hist = tmp_path / "BENCH_perf.json"
        cur = tmp_path / "current.json"
        self._write_history(hist, 0.010)
        self._write_results(cur, 0.011)
        rc = main(
            ["perf", "compare", "--history", str(hist), "--results", str(cur)]
        )
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_empty_history_passes_as_new(self, tmp_path, capsys):
        cur = tmp_path / "current.json"
        self._write_results(cur, 0.010)
        rc = main(
            ["perf", "compare", "--history", str(tmp_path / "none.json"),
             "--results", str(cur)]
        )
        assert rc == 0
        assert "[new]" in capsys.readouterr().out

    def test_malformed_history_is_usage_error(self, tmp_path, capsys):
        hist = tmp_path / "BENCH_perf.json"
        hist.write_text("{broken")
        cur = tmp_path / "current.json"
        self._write_results(cur, 0.010)
        rc = main(
            ["perf", "compare", "--history", str(hist), "--results", str(cur)]
        )
        assert rc == 2

    def test_fresh_measurement_against_empty_history(self, tmp_path):
        # No --results: compare measures the suite itself.
        rc = main(
            ["perf", "compare", *FAST, "--history", str(tmp_path / "none.json")]
        )
        assert rc == 0


class TestPerfTrace:
    @pytest.fixture(scope="class")
    def trace_doc(self, tmp_path_factory):
        from repro.harness.runner import clear_caches

        clear_caches()
        path = tmp_path_factory.mktemp("trace") / "trace.json"
        rc = main(
            ["perf", "trace", "--mix", "MEM-A", "--dvm", "0.5", "--cycles", "3000",
             "--traced-cycles", "200", "-o", str(path)]
        )
        clear_caches()
        assert rc == 0
        return read_trace(str(path))

    def test_emits_valid_nested_trace(self, trace_doc):
        counts = validate_trace(trace_doc)
        assert counts["X"] > 200  # cycle + stage spans at least
        assert counts["M"] >= 2

    def test_spans_are_nested_cycles_and_stages(self, trace_doc):
        evs = trace_doc["traceEvents"]
        cycles = [e for e in evs if e.get("cat") == "cycle"]
        stages = [e for e in evs if e.get("cat") == "stage"]
        assert len(cycles) == 200
        assert len(stages) == 6 * 200
        names = {e["name"] for e in stages}
        assert {"fetch", "dispatch", "issue", "writeback", "commit", "tick"} <= names

    def test_decision_instants_present(self, trace_doc):
        instants = [e for e in trace_doc["traceEvents"] if e["ph"] == "i"]
        assert instants and all(ev["s"] == "t" for ev in instants)

    def test_manifest_in_other_data(self, trace_doc):
        other = trace_doc["otherData"]
        assert other["mix"] == "MEM-A"
        assert "manifest" in other and "config_hash" in other["manifest"]


class TestTimelineTraceOut:
    def test_timeline_exports_trace(self, tmp_path, capsys):
        from repro.harness.runner import clear_caches

        clear_caches()
        path = tmp_path / "tl.json"
        rc = main(
            ["timeline", "--mix", "MEM-A", "--cycles", "3000",
             "--trace-out", str(path)]
        )
        clear_caches()
        assert rc == 0
        counts = validate_trace(read_trace(str(path)))
        assert counts.get("X", 0) + counts.get("i", 0) > 0
