"""Synthetic program generator: structure, determinism, mix and the
reliability populations."""

import numpy as np
import pytest

from repro.isa.generator import (
    FP_COND,
    INT_COND_DIAMOND,
    INT_COND_LOOP,
    INT_DEAD,
    ProgramGenerator,
    generate_program,
)
from repro.isa.instruction import OpClass
from repro.isa.personalities import PERSONALITIES, get_personality
from repro.isa.program import ThreadContext


@pytest.fixture(scope="module")
def gcc_program():
    return generate_program("gcc", seed=11)


class TestStructure:
    def test_all_personalities_generate_valid_programs(self):
        for name in PERSONALITIES:
            prog = generate_program(name, seed=2)
            prog.validate()
            assert prog.num_static_insts > 100

    def test_pcs_unique_and_word_aligned(self, gcc_program):
        pcs = [st.pc for st in gcc_program.all_insts()]
        assert len(pcs) == len(set(pcs))
        assert all(pc % 4 == 0 for pc in pcs)

    def test_every_block_reachable_exit(self, gcc_program):
        for block in gcc_program.blocks:
            assert block.terminator is not None or block.fall_block >= 0

    def test_loop_back_branches_have_period(self, gcc_program):
        backs = [
            st for st in gcc_program.all_insts()
            if st.opclass == OpClass.BRANCH and st.branch.loop_period > 0
        ]
        assert backs, "program must contain loop back-branches"
        for st in backs:
            assert st.branch.loop_trip >= 3
            assert st.branch.loop_period > 0

    def test_loop_period_matches_execution(self, gcc_program):
        """The declared loop period must equal the actual stream-length
        of an iteration (otherwise trip counts would be wrong)."""
        ctx = ThreadContext(gcc_program, seed=3)
        last_pos = {}
        checked = 0
        for _ in range(30_000):
            st = ctx.peek()
            if st.opclass == OpClass.BRANCH and st.branch.loop_period > 0:
                pos = ctx.stream_pos
                if st.pc in last_pos:
                    delta = pos - last_pos[st.pc]
                    if delta < 1000:  # same activation
                        assert delta == st.branch.loop_period
                        checked += 1
                last_pos[st.pc] = pos
            if st.opclass.is_control:
                t, tg = ctx.resolve_control(st)
                ctx.advance_control(st, t, tg)
            else:
                ctx.advance()
        assert checked > 50

    def test_functions_end_with_ret(self, gcc_program):
        rets = [st for st in gcc_program.all_insts() if st.opclass == OpClass.RET]
        calls = [st for st in gcc_program.all_insts() if st.opclass == OpClass.CALL]
        if calls:
            assert rets

    def test_calls_target_valid_blocks(self, gcc_program):
        n = len(gcc_program.blocks)
        for st in gcc_program.all_insts():
            if st.opclass == OpClass.CALL:
                assert 0 <= st.taken_block < n
                assert 0 <= st.fall_block < n


class TestDeterminism:
    def test_same_seed_same_program(self):
        p1 = generate_program("bzip2", seed=5)
        p2 = generate_program("bzip2", seed=5)
        assert [(s.pc, s.opclass, s.dest, s.srcs) for s in p1.all_insts()] == [
            (s.pc, s.opclass, s.dest, s.srcs) for s in p2.all_insts()
        ]

    def test_different_seed_different_program(self):
        p1 = generate_program("bzip2", seed=5)
        p2 = generate_program("bzip2", seed=6)
        sig1 = [(s.opclass, s.dest, s.srcs) for s in p1.all_insts()]
        sig2 = [(s.opclass, s.dest, s.srcs) for s in p2.all_insts()]
        assert sig1 != sig2

    def test_different_benchmarks_differ(self):
        p1 = generate_program("bzip2", seed=5)
        p2 = generate_program("mcf", seed=5)
        assert p1.num_static_insts != p2.num_static_insts or [
            s.opclass for s in p1.all_insts()
        ] != [s.opclass for s in p2.all_insts()]


class TestInstructionMix:
    def _dynamic_mix(self, name, n=20_000):
        prog = generate_program(name, seed=7)
        ctx = ThreadContext(prog, seed=1)
        counts = {}
        for _ in range(n):
            st = ctx.peek()
            counts[st.opclass] = counts.get(st.opclass, 0) + 1
            if st.opclass.is_control:
                t, tg = ctx.resolve_control(st)
                ctx.advance_control(st, t, tg)
            else:
                ctx.advance()
        return {k: v / n for k, v in counts.items()}

    def test_gcc_is_integer_code(self):
        mix = self._dynamic_mix("gcc")
        assert mix.get(OpClass.FALU, 0) < 0.02
        assert mix.get(OpClass.IALU, 0) > 0.3

    def test_swim_is_fp_code(self):
        mix = self._dynamic_mix("swim")
        assert mix.get(OpClass.FALU, 0) > 0.1

    def test_loads_present_everywhere(self):
        for name in ("gcc", "mcf", "swim"):
            mix = self._dynamic_mix(name, n=8000)
            assert mix.get(OpClass.LOAD, 0) > 0.08

    def test_branch_rate_reasonable(self):
        mix = self._dynamic_mix("gcc")
        assert 0.03 < mix.get(OpClass.BRANCH, 0) < 0.3

    def test_nops_present(self):
        mix = self._dynamic_mix("gcc")
        assert mix.get(OpClass.NOP, 0) > 0.01


class TestDiamondPadding:
    def test_arms_equal_length(self):
        """Diamond arms must advance the stream by the same amount (the
        constant-loop-period requirement)."""
        prog = generate_program("mesa", seed=9)
        for block in prog.blocks:
            term = block.terminator
            if term is None or term.opclass != OpClass.BRANCH:
                continue
            if term.branch.loop_period > 0:
                continue  # loop back-branch, not a diamond
            taken = prog.blocks[term.taken_block]
            fall = prog.blocks[term.fall_block]
            # Both arms of a forward diamond join at the same block.
            if taken.fall_block == fall.fall_block and taken.fall_block >= 0:
                assert len(taken.insts) == len(fall.insts)


class TestReliabilityPopulations:
    def test_dead_registers_never_feed_stores_or_branches(self, gcc_program):
        dead = set(INT_DEAD)
        for st in gcc_program.all_insts():
            if st.opclass in (OpClass.STORE, OpClass.BRANCH):
                assert not (set(st.srcs) & dead), (
                    f"dead register feeds ACE root at pc={st.pc:#x}"
                )

    def test_cond_providers_exist_for_high_cond_personalities(self):
        prog = generate_program("mesa", seed=4)
        cond = set(INT_COND_DIAMOND) | set(INT_COND_LOOP) | set(FP_COND)
        writers = [st for st in prog.all_insts() if st.dest in cond]
        assert len(writers) > 5

    def test_low_cond_personalities_have_few_providers(self):
        prog = generate_program("perlbmk", seed=4)
        cond = set(INT_COND_DIAMOND) | set(FP_COND)
        writers = [st for st in prog.all_insts() if st.dest in cond]
        mesa_writers = [
            st for st in generate_program("mesa", seed=4).all_insts() if st.dest in cond
        ]
        assert len(writers) < len(mesa_writers)


class TestGeneratorAPI:
    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            generate_program("nonexistent")

    def test_generator_reuse_not_allowed_semantics(self):
        # Each generator instance produces one program; a fresh instance
        # with the same seed reproduces it.
        g1 = ProgramGenerator(get_personality("gap"), seed=3)
        p1 = g1.generate()
        g2 = ProgramGenerator(get_personality("gap"), seed=3)
        p2 = g2.generate()
        assert p1.num_static_insts == p2.num_static_insts
