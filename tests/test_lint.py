"""The static-analysis subsystem: engine, suppressions, reporters, CLI,
and each checker against its fixture and against the real tree."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import LintEngine, Severity, all_rules, get_checker
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import iter_python_files
from repro.analysis.reporters import render

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "lint_fixtures")
SRC = os.path.join(HERE, os.pardir, "src")
ROOT = os.path.dirname(os.path.abspath(HERE))
BASELINE = os.path.join(ROOT, "lint-baseline.json")

#: rule -> its dedicated counterexample fixture.
FIXTURE_OF = {
    "determinism": os.path.join(FIXTURES, "determinism_bad.py"),
    "counter-balance": os.path.join(FIXTURES, "counter_balance_bad.py"),
    "slots": os.path.join(FIXTURES, "slots_bad.py"),
    "stage-purity": os.path.join(FIXTURES, "stage_purity", "pipeline.py"),
    "config-bounds": os.path.join(FIXTURES, "config_bounds", "config.py"),
    "event-schema": os.path.join(FIXTURES, "event_schema_bad.py"),
}


def run_rule(rule, path):
    return LintEngine([rule]).check_file(path)


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert set(FIXTURE_OF) <= set(all_rules())

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_checker("no-such-rule")

    def test_descriptions_nonempty(self):
        for rule in all_rules():
            assert get_checker(rule).description


class TestCheckersFireOnFixtures:
    @pytest.mark.parametrize("rule", sorted(FIXTURE_OF))
    def test_rule_fires_on_its_fixture(self, rule):
        diags = run_rule(rule, FIXTURE_OF[rule])
        assert diags, f"{rule} stayed silent on its counterexample"
        assert all(d.rule == rule for d in diags)

    @pytest.mark.parametrize("rule", sorted(FIXTURE_OF))
    def test_other_rules_stay_silent_on_fixture(self, rule):
        """Each fixture trips exactly its own checker."""
        others = [r for r in FIXTURE_OF if r != rule]
        diags = LintEngine(others).check_file(FIXTURE_OF[rule])
        assert diags == []

    def test_determinism_finds_all_three_categories(self):
        messages = [d.message for d in run_rule("determinism", FIXTURE_OF["determinism"])]
        assert any("global-state RNG" in m for m in messages)
        assert any("wall-clock" in m for m in messages)
        assert any("set expression" in m for m in messages)

    def test_counter_balance_reports_both_failure_modes(self):
        diags = run_rule("counter-balance", FIXTURE_OF["counter-balance"])
        symbols = {d.symbol for d in diags}
        assert "LeakyQueue.pred_ace_bits" in symbols
        assert "LopsidedQueue.ready_pred_ace" in symbols
        assert not any(s.startswith("BalancedQueue") for s in symbols)

    def test_slots_names_the_missing_attribute(self):
        diags = run_rule("slots", FIXTURE_OF["slots"])
        assert {d.symbol for d in diags} == {"HotPathEntry.squash_cycle"}

    def test_event_schema_reports_every_failure_mode(self):
        messages = [
            d.message for d in run_rule("event-schema", FIXTURE_OF["event-schema"])
        ]
        assert len(messages) == 6
        assert any("string-literal topic" in m for m in messages)
        assert any("unknown topic constant TOPIC_MADE_UP" in m for m in messages)
        assert any("positional payload" in m for m in messages)
        assert any("**kwargs splat" in m for m in messages)
        assert any("missing ['wq_ratio']" in m for m in messages)
        assert any("extra ['bogus']" in m for m in messages)

    def test_stage_purity_flags_write_and_mutator_call(self):
        diags = run_rule("stage-purity", FIXTURE_OF["stage-purity"])
        methods = {d.symbol for d in diags}
        assert methods == {"BrokenPipeline._issue", "BrokenPipeline._writeback"}

    def test_config_bounds_flags_field_and_missing_validate(self):
        diags = run_rule("config-bounds", FIXTURE_OF["config-bounds"])
        symbols = {d.symbol for d in diags}
        assert "PartiallyValidatedConfig.t_cache_miss" in symbols
        assert "UnvalidatedConfig" in symbols
        assert not any(s.startswith("FullyValidatedConfig") for s in symbols)


class TestRealTreeClean:
    def test_src_tree_is_clean_modulo_baseline(self):
        """Everything the full engine (per-file rules plus project
        passes) finds on src/ is recorded in the committed baseline."""
        from repro.analysis import filter_new, load_baseline

        diags = LintEngine().run([SRC])
        new = filter_new(diags, load_baseline(BASELINE), root=ROOT)
        assert new == [], "\n".join(d.format() for d in new)

    def test_per_file_rules_are_clean_without_baseline(self):
        diags = LintEngine().run([SRC], project_phase=False)
        assert diags == [], "\n".join(d.format() for d in diags)


class TestSuppressions:
    def test_line_suppression(self):
        src = "import random\nx = random.random()  # lint: disable=determinism\n"
        assert LintEngine(["determinism"]).check_source(src) == []

    def test_line_suppression_is_rule_specific(self):
        src = "import random\nx = random.random()  # lint: disable=slots\n"
        diags = LintEngine(["determinism"]).check_source(src)
        assert len(diags) == 1

    def test_file_suppression(self):
        src = (
            "# lint: disable-file=determinism\n"
            "import random\n"
            "x = random.random()\n"
            "y = random.randint(0, 3)\n"
        )
        assert LintEngine(["determinism"]).check_source(src) == []

    def test_wildcard_suppression(self):
        src = "import random\nx = random.random()  # lint: disable=all\n"
        assert LintEngine(["determinism"]).check_source(src) == []

    def test_directive_inside_string_is_ignored(self):
        src = 'import random\ns = "# lint: disable-file=all"\nx = random.random()\n'
        assert len(LintEngine(["determinism"]).check_source(src)) == 1

    def test_one_directive_suppresses_multiple_rules(self):
        src = (
            "import random\n"
            "import time\n"
            "x = (random.random(), time.time())"
            "  # lint: disable=determinism, slots\n"
        )
        assert LintEngine(["determinism", "slots"]).check_source(src) == []

    def test_unknown_rule_in_directive_warns(self):
        src = "x = 1  # lint: disable=not-a-rule\n"
        diags = LintEngine().check_source(src)
        assert len(diags) == 1
        assert diags[0].rule == "suppress"
        assert diags[0].severity == Severity.WARNING
        assert "not-a-rule" in diags[0].message

    def test_known_rule_in_directive_does_not_warn(self):
        src = "x = 1  # lint: disable=determinism,all\n"
        assert LintEngine().check_source(src) == []

    def test_file_suppression_applies_to_project_passes(self, tmp_path):
        body = "interval_cycles = 10_000\n"
        bad = tmp_path / "consts.py"
        bad.write_text(body)
        assert LintEngine(["paper-fidelity"]).run([str(tmp_path)]) != []
        bad.write_text("# lint: disable-file=paper-fidelity\n" + body)
        assert LintEngine(["paper-fidelity"]).run([str(tmp_path)]) == []

    def test_line_suppression_applies_to_project_passes(self, tmp_path):
        bad = tmp_path / "consts.py"
        bad.write_text("interval_cycles = 10_000  # lint: disable=paper-fidelity\n")
        assert LintEngine(["paper-fidelity"]).run([str(tmp_path)]) == []


class TestSuppressionBaselineInteraction:
    """Multi-rule inline directives combined with ``--baseline``: a
    finding both suppressed and baselined is absorbed exactly once (by
    the suppression, before the baseline filter) and the unused
    baseline budget raises no warnings."""

    #: two findings on one line, both silenced by one directive.
    SUPPRESSED = (
        "import random\n"
        "import time\n"
        "x = (random.random(), time.time())"
        "  # lint: disable=determinism, slots\n"
    )
    #: same findings, no directive — what the baseline was written from.
    UNSUPPRESSED = (
        "import random\n"
        "import time\n"
        "x = (random.random(), time.time())\n"
    )

    def test_suppressed_and_baselined_counts_once(self, capsys, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text(self.UNSUPPRESSED)
        baseline = tmp_path / "baseline.json"
        assert lint_main(["--no-cache", "--write-baseline", str(baseline), str(bad)]) == 0
        # Baseline absorbs the unsuppressed findings.
        assert lint_main(["--no-cache", "--baseline", str(baseline), str(bad)]) == 0
        # Now also suppress them inline: still exit 0, no double
        # accounting, and no stale/suppress warnings about the unused
        # baseline budget.
        bad.write_text(self.SUPPRESSED)
        capsys.readouterr()
        assert lint_main(["--no-cache", "--baseline", str(baseline), str(bad)]) == 0
        out = capsys.readouterr()
        assert "no problems found" in out.out
        assert "suppress" not in out.out and "stale" not in out.out.lower()
        assert out.err == ""

    def test_baseline_budget_not_consumed_by_suppressed_finding(self, capsys, tmp_path):
        # One baselined finding, two identical sites: with one site
        # suppressed inline the baseline budget must still absorb the
        # other (the suppressed finding never reaches the filter).
        two_sites = tmp_path / "mod.py"
        two_sites.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            ["--no-cache", "--rules", "determinism", "--write-baseline", str(baseline), str(two_sites)]
        ) == 0
        two_sites.write_text(
            "import random\n"
            "x = random.random()  # lint: disable=determinism, slots\n"
            "y = random.random()\n"
        )
        capsys.readouterr()
        assert lint_main(
            ["--no-cache", "--rules", "determinism", "--baseline", str(baseline), str(two_sites)]
        ) == 0
        assert "no problems found" in capsys.readouterr().out

    def test_second_regression_still_fails_past_suppression(self, capsys, tmp_path):
        # The suppression only covers its own line: a third identical
        # site exceeds the baseline count and fails the gate.
        mod = tmp_path / "mod.py"
        mod.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            ["--no-cache", "--rules", "determinism", "--write-baseline", str(baseline), str(mod)]
        ) == 0
        mod.write_text(
            "import random\n"
            "x = random.random()  # lint: disable=determinism, slots\n"
            "y = random.random()\n"
            "z = random.random()\n"
        )
        capsys.readouterr()
        assert lint_main(
            ["--no-cache", "--rules", "determinism", "--baseline", str(baseline), str(mod)]
        ) == 1
        capsys.readouterr()


class TestEngine:
    def test_syntax_error_becomes_diagnostic(self):
        diags = LintEngine().check_source("def broken(:\n")
        assert len(diags) == 1
        assert diags[0].rule == "syntax"

    def test_iter_python_files_deterministic_and_filtered(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        pycache = tmp_path / "__pycache__"
        pycache.mkdir()
        (pycache / "a.cpython-311.py").write_text("x = 1\n")
        files = list(iter_python_files([str(tmp_path)]))
        assert files == [str(tmp_path / "a.py"), str(tmp_path / "b.py")]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            LintEngine().run([os.path.join(FIXTURES, "does_not_exist.py")])


class TestReporters:
    def test_json_report_round_trips(self):
        diags = run_rule("slots", FIXTURE_OF["slots"])
        payload = json.loads(render(diags, "json"))
        assert payload["summary"]["total"] == len(diags)
        assert payload["diagnostics"][0]["rule"] == "slots"

    def test_text_report_mentions_rule_and_location(self):
        diags = run_rule("slots", FIXTURE_OF["slots"])
        text = render(diags, "text")
        assert "[slots]" in text
        assert "slots_bad.py" in text

    def test_severity_str(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"
        assert str(Severity.NOTE) == "note"

    def test_sarif_report_structure(self):
        diags = run_rule("slots", FIXTURE_OF["slots"])
        doc = json.loads(render(diags, "sarif"))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.lint"
        assert len(run["results"]) == len(diags)
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "slots" in rules
        result = run["results"][0]
        assert result["level"] == "error"
        assert result["locations"][0]["physicalLocation"]["region"]["startLine"] > 0


class TestCLI:
    def test_exit_codes(self, capsys):
        assert lint_main(["--no-cache", "--baseline", BASELINE, SRC]) == 0
        assert lint_main(["--no-cache", FIXTURE_OF["slots"]]) == 1
        capsys.readouterr()

    def test_no_paths_and_no_default_roots_is_usage_error(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--no-cache"]) == 2
        assert "no default roots" in capsys.readouterr().err

    def test_default_roots_discovered_from_cwd(self, capsys, tmp_path, monkeypatch):
        src = tmp_path / "src"
        src.mkdir()
        (src / "ok.py").write_text("x = 1\n")
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "bad.py").write_text("interval_cycles = 10_000\n")
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--no-cache"]) == 1
        assert "paper-fidelity" in capsys.readouterr().out

    def test_fail_on_threshold(self, capsys):
        # The emit-coverage rule produces warnings only on its fixture:
        # gating on errors passes, gating on warnings (default) fails.
        fixture = os.path.join(FIXTURES, "emit_coverage")
        base = ["--no-cache", "--rules", "emit-coverage"]
        assert lint_main(base + ["--fail-on", "error", fixture]) == 0
        assert lint_main(base + [fixture]) == 1
        assert lint_main(base + ["--fail-on", "warning", fixture]) == 1
        capsys.readouterr()

    def test_src_is_clean(self, capsys):
        # The tree carries no findings at all — the baseline is empty.
        assert lint_main(["--no-cache", SRC]) == 0
        capsys.readouterr()

    def test_baseline_round_trip(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        fixture = FIXTURE_OF["slots"]
        assert lint_main(["--no-cache", "--write-baseline", str(baseline), fixture]) == 0
        assert lint_main(["--no-cache", "--baseline", str(baseline), fixture]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in FIXTURE_OF:
            assert rule in out

    def test_rules_subset(self, capsys):
        # Only the slots rule runs: the determinism fixture stays clean.
        assert lint_main(["--rules", "slots", FIXTURE_OF["determinism"]]) == 0
        capsys.readouterr()

    def test_unknown_rule_is_usage_error(self, capsys):
        assert lint_main(["--rules", "bogus", SRC]) == 2
        capsys.readouterr()

    def test_json_format(self, capsys):
        assert lint_main(["--format", "json", FIXTURE_OF["slots"]]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] >= 1

    def test_module_entry_point(self):
        """`python -m repro.lint` is the documented front door."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--no-cache",
             "--baseline", BASELINE, SRC],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no problems found" in proc.stdout


class TestMypyGate:
    """Strict typing of the hot-path packages (CI enforces this; locally
    the test skips when mypy is not installed)."""

    def test_core_and_reliability_are_strict_clean(self):
        pytest.importorskip("mypy")
        env = dict(os.environ)
        env["MYPYPATH"] = SRC + os.pathsep + env.get("MYPYPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--strict", "-p", "repro.core", "-p", "repro.reliability"],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(SRC),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
