"""ROB-targeted DVM — the paper's suggested generalization.

The conclusion of the paper: "In this paper we focus on the IQ, however
we believe our technique could be extended to other microarchitecture
structures."  This extension points the DVM trigger at an online
predicted-ACE-bit counter over the reorder buffers instead of the IQ.
"""

import pytest

from repro.config import ReliabilityConfig, SimulationConfig
from repro.core.pipeline import SMTPipeline
from repro.reliability.avf import Structure
from repro.reliability.dvm import DVMController
from repro.workloads import get_mix


def sim(cycles=6_000):
    rel = ReliabilityConfig(interval_cycles=1_000, ace_window=2_000)
    return SimulationConfig(
        max_cycles=cycles, warmup_cycles=1_000, seed=3,
        bp_warmup_instructions=10_000, reliability=rel,
    )


@pytest.fixture(scope="module")
def mem_base():
    return SMTPipeline(get_mix("MEM-A").programs(seed=3), sim=sim()).run()


class TestRobCounter:
    def test_counter_never_negative(self):
        pipe = SMTPipeline(get_mix("MIX-A").programs(seed=3), sim=sim(cycles=2_500))
        bad = []
        orig = pipe._tick_stats

        def checked():
            if pipe.rob_pred_ace_bits < 0:
                bad.append(pipe.cycle)
            orig()

        pipe._tick_stats = checked
        pipe.run()
        assert bad == []

    def test_counter_zero_when_robs_empty(self):
        pipe = SMTPipeline(get_mix("CPU-A").programs(seed=3), sim=sim(cycles=1_200))
        pipe.run()
        resident = sum(len(r) for r in pipe.robs)
        expected_zero = resident == 0
        if expected_zero:
            assert pipe.rob_pred_ace_bits == 0

    def test_counter_consistent_with_occupancy(self):
        """The running counter must equal the recomputed sum at any
        sampled cycle."""
        pipe = SMTPipeline(get_mix("MEM-A").programs(seed=3), sim=sim(cycles=2_000))
        mismatches = []
        orig = pipe._tick_stats

        def checked():
            if pipe.cycle % 250 == 0:
                actual = sum(
                    pipe.avf.rob_bits_pred(i) for rob in pipe.robs for i in rob.entries
                )
                if actual != pipe.rob_pred_ace_bits:
                    mismatches.append((pipe.cycle, actual, pipe.rob_pred_ace_bits))
            orig()

        pipe._tick_stats = checked
        pipe.run()
        assert mismatches == []


class TestResultSurface:
    def test_rob_interval_avf_present(self, mem_base):
        assert len(mem_base.rob_interval_avf) > 0
        assert all(0.0 <= a <= 1.0 for a in mem_base.rob_interval_avf)

    def test_rob_summary_stats(self, mem_base):
        assert 0.0 < mem_base.rob_avf <= 1.0
        assert mem_base.max_rob_avf >= mem_base.rob_avf
        assert mem_base.max_online_rob_estimate > 0

    def test_pve_rob_monotone(self, mem_base):
        hi = mem_base.pve_rob(0.9 * mem_base.max_rob_avf)
        lo = mem_base.pve_rob(0.1 * mem_base.max_rob_avf)
        assert lo >= hi


class TestRobGovernance:
    def test_rejects_unsupported_structure(self):
        with pytest.raises(ValueError):
            SMTPipeline(
                get_mix("CPU-A").programs(seed=3), sim=sim(cycles=1_000),
                dvm=DVMController(0.1), dvm_structure=Structure.RF,
            )

    def test_rob_dvm_reduces_rob_avf(self, mem_base):
        target = 0.5 * mem_base.max_online_rob_estimate
        dvm = DVMController(max(target, 1e-4), config=sim().reliability)
        governed = SMTPipeline(
            get_mix("MEM-A").programs(seed=3), sim=sim(),
            dvm=dvm, dvm_structure=Structure.ROB,
        ).run()
        assert governed.rob_avf <= mem_base.rob_avf
        assert dvm.stats.samples > 0

    def test_rob_dvm_cuts_rob_pve(self, mem_base):
        target = 0.6 * mem_base.max_rob_avf
        online = 0.6 * mem_base.max_online_rob_estimate
        dvm = DVMController(max(online, 1e-4), config=sim().reliability)
        governed = SMTPipeline(
            get_mix("MEM-A").programs(seed=3), sim=sim(),
            dvm=dvm, dvm_structure=Structure.ROB,
        ).run()
        assert governed.pve_rob(target) <= mem_base.pve_rob(target)
