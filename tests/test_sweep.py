"""Parameter-sweep utility."""

import pytest

from repro.harness.runner import BenchScale, clear_caches
from repro.harness.sweep import best_row, pareto_front, sweep

TINY = BenchScale(
    max_cycles=2_000, warmup_cycles=400, interval_cycles=400,
    ace_window=800, profile_instructions=6_000, profile_window=1_500,
)


@pytest.fixture(autouse=True, scope="module")
def _caches():
    clear_caches()
    yield
    clear_caches()


class TestSweep:
    def test_grid_size(self):
        rows = sweep(
            "CPU-A", TINY,
            axes={"scheduler": ["oldest", "visa"], "dispatch": [None, "opt2"]},
        )
        assert len(rows) == 4
        assert {(r["scheduler"], r["dispatch"]) for r in rows} == {
            ("oldest", None), ("oldest", "opt2"), ("visa", None), ("visa", "opt2"),
        }

    def test_default_metrics_present(self):
        rows = sweep("CPU-A", TINY, axes={"scheduler": ["oldest"]})
        assert {"ipc", "iq_avf", "max_iq_avf"} <= set(rows[0])

    def test_normalized(self):
        rows = sweep(
            "CPU-A", TINY,
            axes={"scheduler": ["oldest", "visa"]},
            normalize_to={"scheduler": "oldest"},
        )
        base = next(r for r in rows if r["scheduler"] == "oldest")
        assert base["ipc"] == pytest.approx(1.0)
        assert base["iq_avf"] == pytest.approx(1.0)

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            sweep("CPU-A", TINY, axes={})

    def test_zero_baseline_metric_is_nan_not_zero(self):
        # Regression: a 0.0 baseline metric used to normalize to 0.0,
        # indistinguishable from a perfect reduction.
        import math

        with pytest.warns(RuntimeWarning, match="baseline metric 'dead'"):
            rows = sweep(
                "CPU-A", TINY,
                axes={"scheduler": ["oldest", "visa"]},
                metrics={"dead": lambda r: 0.0, "ipc": lambda r: r.ipc},
                normalize_to={"scheduler": "oldest"},
            )
        assert all(math.isnan(r["dead"]) for r in rows)
        # Metrics with a healthy baseline still normalize normally.
        base = next(r for r in rows if r["scheduler"] == "oldest")
        assert base["ipc"] == pytest.approx(1.0)


class TestSelectors:
    ROWS = [
        {"x": 1.0, "y": 1.0},
        {"x": 2.0, "y": 3.0},
        {"x": 3.0, "y": 2.0},
    ]

    def test_best_row(self):
        assert best_row(self.ROWS, "y")["y"] == 3.0
        assert best_row(self.ROWS, "x", maximize=False)["x"] == 1.0

    def test_best_row_empty(self):
        with pytest.raises(ValueError):
            best_row([], "x")

    def test_pareto_front(self):
        # minimize x, maximize y: (1,1) and (2,3) survive; (3,2) is
        # dominated by (2,3).
        front = pareto_front(self.ROWS, minimize="x", maximize="y")
        assert front == [{"x": 1.0, "y": 1.0}, {"x": 2.0, "y": 3.0}]

    def test_pareto_duplicates_survive(self):
        rows = [{"x": 1.0, "y": 1.0}, {"x": 1.0, "y": 1.0}]
        assert len(pareto_front(rows, "x", "y")) == 2
