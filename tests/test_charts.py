"""ASCII chart helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.charts import hbar_chart, histogram_chart, sparkline, strip_chart


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_min_max_mapping(self):
        s = sparkline([0, 1])
        assert s[0] == "▁" and s[-1] == "█"

    def test_explicit_bounds(self):
        s = sparkline([0.5], lo=0.0, hi=1.0)
        assert s not in ("▁", "█")


class TestHBar:
    def test_rows_and_alignment(self):
        out = hbar_chart([("alpha", 1.0), ("b", 0.5)])
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].index("|") == lines[1].index("|")

    def test_peak_fills_width(self):
        out = hbar_chart([("x", 2.0)], width=10)
        assert "#" * 10 in out

    def test_zero_values(self):
        out = hbar_chart([("x", 0.0)])
        assert "#" not in out

    def test_empty(self):
        assert hbar_chart([]) == "(no data)"


class TestStripChart:
    def test_threshold_markers(self):
        out = strip_chart([0.1, 0.9], threshold=0.5)
        assert out.count("emergency") == 1

    def test_no_threshold(self):
        out = strip_chart([0.1, 0.9])
        assert "emergency" not in out

    def test_empty(self):
        assert strip_chart([]) == "(no intervals)"

    def test_row_cap(self):
        out = strip_chart([0.1] * 100, max_rows=10)
        assert len(out.splitlines()) == 10


class TestHistogram:
    def test_bins_labelled(self):
        out = histogram_chart([0.5, 0.25, 0.25])
        assert out.splitlines()[0].startswith("0")


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50))
def test_property_sparkline_never_crashes(vals):
    s = sparkline(vals)
    assert len(s) == len(vals)
