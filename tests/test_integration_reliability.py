"""End-to-end reproduction sanity: the paper's qualitative claims must
hold on small scaled runs (shape, not magnitude)."""

import dataclasses

import pytest

from repro.harness.runner import BenchScale, clear_caches, run_sim
from repro.reliability.avf import Structure

SCALE = BenchScale(
    max_cycles=8_000,
    warmup_cycles=2_000,
    interval_cycles=1_000,
    ace_window=2_000,
    profile_instructions=20_000,
    profile_window=4_000,
)


@pytest.fixture(scope="module", autouse=True)
def _caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="module")
def cpu_base():
    return run_sim("CPU-A", SCALE)


@pytest.fixture(scope="module")
def mem_base():
    return run_sim("MEM-A", SCALE)


class TestFigure1Claims:
    def test_iq_is_reliability_hotspot(self, cpu_base, mem_base):
        """Paper Figure 1: the IQ has the highest AVF of the studied
        structures.  (Our RF lifetime model is a documented upper bound
        — see AVFBitLayout — so the RF comparison gets slack.)"""
        for res in (cpu_base, mem_base):
            iq = res.overall_avf[Structure.IQ]
            for s in (Structure.ROB, Structure.FU):
                assert iq >= res.overall_avf[s] * 0.85, (
                    f"IQ ({iq:.3f}) should be the hot-spot, {s.name} = "
                    f"{res.overall_avf[s]:.3f}"
                )
            assert iq >= res.overall_avf[Structure.RF] * 0.6

    def test_mem_baseline_avf_higher_than_cpu(self, cpu_base, mem_base):
        """Paper Section 4: 'the baseline IQ AVF is lower on CPU
        workloads which encounter fewer resource clogs'."""
        assert mem_base.iq_avf > cpu_base.iq_avf


class TestWorkloadContrast:
    def test_cpu_faster_than_mem(self, cpu_base, mem_base):
        assert cpu_base.ipc > 2 * mem_base.ipc

    def test_mem_suffers_more_l2_misses(self, cpu_base, mem_base):
        assert mem_base.l2_misses > 3 * cpu_base.l2_misses


class TestVISAClaims:
    def test_visa_roughly_preserves_ipc(self, cpu_base):
        visa = run_sim("CPU-A", SCALE, scheduler="visa")
        assert visa.ipc / cpu_base.ipc > 0.95

    def test_visa_does_not_increase_avf_much(self, cpu_base):
        visa = run_sim("CPU-A", SCALE, scheduler="visa")
        assert visa.iq_avf / cpu_base.iq_avf < 1.1


class TestOptimizationClaims:
    def test_opt1_reduces_mem_avf(self, mem_base):
        opt1 = run_sim("MEM-A", SCALE, scheduler="visa", dispatch="opt1")
        assert opt1.iq_avf < mem_base.iq_avf

    def test_opt2_reduces_mem_avf_with_small_ipc_cost(self, mem_base):
        opt2 = run_sim("MEM-A", SCALE, scheduler="visa", dispatch="opt2")
        assert opt2.iq_avf < mem_base.iq_avf
        assert opt2.ipc / mem_base.ipc > 0.75

    def test_opt2_beats_opt1_ipc_on_mem(self, mem_base):
        """Figure 5's core story: the FLUSH trigger rescues opt1's
        performance loss on memory-intensive workloads."""
        opt1 = run_sim("MEM-A", SCALE, scheduler="visa", dispatch="opt1")
        opt2 = run_sim("MEM-A", SCALE, scheduler="visa", dispatch="opt2")
        assert opt2.ipc >= opt1.ipc


class TestDVMClaims:
    def test_dvm_cuts_pve(self, mem_base):
        target = 0.5 * mem_base.max_iq_avf
        online_target = 0.5 * mem_base.max_online_estimate
        dvm = run_sim("MEM-A", SCALE, dvm_target=online_target)
        assert dvm.pve(target) <= mem_base.pve(target)

    def test_dynamic_dvm_not_worse_than_static(self, mem_base):
        target = 0.5 * mem_base.max_iq_avf
        online_target = 0.5 * mem_base.max_online_estimate
        dyn = run_sim("MEM-A", SCALE, dvm_target=online_target)
        stat = run_sim(
            "MEM-A", SCALE, dvm_target=online_target,
            dvm_static_ratio=dyn.dvm_mean_ratio or 2.0,
        )
        # PVE is quantized in units of one warm interval at this scale,
        # so "not worse" must tolerate a single-interval difference.
        quantum = 1.0 / max(len(dyn.warm_iq_interval_avf), 1)
        assert dyn.pve(target) <= stat.pve(target) + quantum


class TestFetchPolicySubstrate:
    @pytest.mark.parametrize("policy", ["stall", "flush", "dg", "pdg"])
    def test_advanced_policies_run_with_visa_opt2(self, policy):
        res = run_sim("MIX-A", SCALE, fetch_policy=policy,
                      scheduler="visa", dispatch="opt2")
        assert res.committed > 500

    def test_flush_baseline_lowers_mem_avf(self, mem_base):
        """Paper: 'the FLUSH baseline ... IQ AVF is already much lower
        than the baseline cases of the other fetch policies'."""
        flush = run_sim("MEM-A", SCALE, fetch_policy="flush")
        assert flush.iq_avf < mem_base.iq_avf
