"""Dynamic Vulnerability Management controller (Section 5, Figure 7)."""

import pytest

from repro.config import ReliabilityConfig
from repro.reliability.dvm import DVMController


def make_dvm(target=0.2, static=None, **cfg):
    return DVMController(target, config=ReliabilityConfig(**cfg), static_ratio=static)


class TestTrigger:
    def test_trigger_threshold_is_fraction_of_target(self):
        d = make_dvm(target=0.2)
        assert d.trigger_threshold == pytest.approx(0.18)  # 90% of target

    def test_sample_above_trigger_arms(self):
        d = make_dvm(target=0.2)
        d.on_sample(0.19)
        assert d.triggered

    def test_sample_below_trigger_disarms(self):
        d = make_dvm(target=0.2)
        d.on_sample(0.19)
        d.on_sample(0.10)
        assert not d.triggered

    def test_l2_miss_arms_immediately(self):
        d = make_dvm(target=0.2)
        assert not d.triggered
        d.on_l2_miss()
        assert d.triggered
        assert d.stats.l2_triggers == 1

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            DVMController(0.0)
        with pytest.raises(ValueError):
            DVMController(1.5)


class TestRatioAdaptation:
    def test_rapid_decrease_on_emergency(self):
        d = make_dvm(target=0.2)
        before = d.wq_ratio
        d.on_sample(0.5)
        assert d.wq_ratio == pytest.approx(before * 0.5)

    def test_slow_increase_when_calm(self):
        d = make_dvm(target=0.2)
        before = d.wq_ratio
        d.on_sample(0.01)
        cfg = d.config
        assert d.wq_ratio == pytest.approx(
            min(cfg.wq_ratio_max, before + cfg.wq_ratio_increase_step)
        )

    def test_clamped_at_min(self):
        d = make_dvm(target=0.2)
        for _ in range(50):
            d.on_sample(0.9)
        assert d.wq_ratio == d.config.wq_ratio_min

    def test_clamped_at_max(self):
        d = make_dvm(target=0.2)
        for _ in range(200):
            d.on_sample(0.0)
        assert d.wq_ratio == d.config.wq_ratio_max

    def test_static_ratio_never_adapts(self):
        d = make_dvm(target=0.2, static=3.0)
        d.on_sample(0.9)
        d.on_sample(0.0)
        assert d.wq_ratio == 3.0
        assert d.is_static

    def test_ratio_history_recorded(self):
        d = make_dvm(target=0.2)
        d.on_sample(0.1)
        d.on_sample(0.5)
        assert len(d.stats.ratio_history) == 2
        assert d.stats.mean_ratio > 0


class TestResponse:
    def test_untriggered_always_allows(self):
        d = make_dvm(target=0.2)
        d.recompute_ratio_gate(waiting=1_000, ready=1)
        assert d.allow_dispatch(0)

    def test_triggered_with_good_ratio_allows(self):
        d = make_dvm(target=0.2)
        d.on_sample(0.9)
        d.recompute_ratio_gate(waiting=1, ready=10)
        assert d.allow_dispatch(0)

    def test_triggered_with_bad_ratio_blocks(self):
        d = make_dvm(target=0.2)
        d.on_sample(0.9)
        d.recompute_ratio_gate(waiting=10_000, ready=1)
        assert not d.allow_dispatch(0)
        assert d.stats.throttled_dispatch_checks == 1

    def test_restore_thread_passes(self):
        d = make_dvm(target=0.2)
        d.on_sample(0.9)
        d.recompute_ratio_gate(waiting=10_000, ready=1)
        d.set_restore_thread(2)
        assert d.allow_dispatch(2)
        assert not d.allow_dispatch(0)
        assert d.stats.restore_grants == 1

    def test_zero_ready_uses_floor(self):
        d = make_dvm(target=0.2)
        d.on_sample(0.9)
        d.recompute_ratio_gate(waiting=0, ready=0)
        assert d.allow_dispatch(0)  # 0 <= ratio * max(0,1)

    def test_restore_eligibility_tracks_estimate(self):
        d = make_dvm(target=0.2)
        d.on_sample(0.9)
        assert not d.restore_eligible
        d.on_sample(0.01)
        assert d.restore_eligible


class TestReset:
    def test_reset_restores_initial_state(self):
        d = make_dvm(target=0.2)
        d.on_sample(0.9)
        d.on_l2_miss()
        d.set_restore_thread(1)
        d.reset()
        assert not d.triggered
        assert d.restore_thread is None
        assert d.wq_ratio == d.config.wq_ratio_initial
        assert d.stats.samples == 0

    def test_reset_static_keeps_static_ratio(self):
        d = make_dvm(target=0.2, static=2.5)
        d.reset()
        assert d.wq_ratio == 2.5

    def test_reset_clears_stats_in_place(self):
        # Observers hold a reference to controller.stats; reset() must
        # clear that same object, not rebind a fresh one, or the held
        # reference silently drifts away from the live statistics.
        d = make_dvm(target=0.2)
        held = d.stats
        d.on_sample(0.9)
        d.on_l2_miss()
        d.recompute_ratio_gate(waiting=100, ready=1)
        d.allow_dispatch(0)
        assert held.samples == 1 and held.l2_triggers == 1
        d.reset()
        assert d.stats is held
        assert held.samples == 0
        assert held.l2_triggers == 0
        assert held.throttled_dispatch_checks == 0
        assert held.restore_grants == 0
        assert held.ratio_history == []
        d.on_sample(0.9)
        assert held.samples == 1  # still live after reset

    def test_mean_ratio_reflects_post_reset_history_only(self):
        d = make_dvm(target=0.2)
        for _ in range(5):
            d.on_sample(0.9)  # rapid decreases drag the mean down
        drifted = d.stats.mean_ratio
        assert drifted < d.config.wq_ratio_initial
        d.reset()
        assert d.stats.mean_ratio == 0.0  # empty history, not stale mean
        d.on_sample(0.0)  # one calm sample: slow increase from initial
        expected = min(
            d.config.wq_ratio_max,
            d.config.wq_ratio_initial + d.config.wq_ratio_increase_step,
        )
        assert d.stats.mean_ratio == pytest.approx(expected)

    def test_reset_clears_ratio_gate_and_estimate(self):
        d = make_dvm(target=0.2)
        d.on_sample(0.9)
        d.recompute_ratio_gate(waiting=1000, ready=1)
        assert not d.allow_dispatch(0)
        d.reset()
        assert d.last_estimate == 0.0
        d.on_sample(0.9)  # re-armed, but the gate starts permissive
        assert d.allow_dispatch(0)
