"""Configuration defaults (Table 2) and validation."""

import dataclasses

import pytest

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    MachineConfig,
    ReliabilityConfig,
    SimulationConfig,
    TLBConfig,
)


class TestTable2Defaults:
    """The default machine must be the paper's Table 2 machine."""

    def setup_method(self):
        self.m = MachineConfig()

    def test_widths(self):
        assert self.m.fetch_width == 8
        assert self.m.issue_width == 8
        assert self.m.commit_width == 8

    def test_issue_queue(self):
        assert self.m.iq_size == 96

    def test_rob_per_thread(self):
        assert self.m.rob_size_per_thread == 96

    def test_lsq_per_thread(self):
        assert self.m.lsq_size_per_thread == 48

    def test_function_units(self):
        assert self.m.int_alu == 8
        assert self.m.int_mult_div == 4
        assert self.m.load_store_units == 4
        assert self.m.fp_alu == 8
        assert self.m.fp_mult_div_sqrt == 4

    def test_l1_instruction_cache(self):
        assert self.m.l1i.size == 32 * 1024
        assert self.m.l1i.assoc == 2
        assert self.m.l1i.line_size == 32
        assert self.m.l1i.latency == 1

    def test_l1_data_cache(self):
        assert self.m.l1d.size == 64 * 1024
        assert self.m.l1d.assoc == 4
        assert self.m.l1d.line_size == 64

    def test_l2_cache(self):
        assert self.m.l2.size == 2 * 1024 * 1024
        assert self.m.l2.assoc == 4
        assert self.m.l2.line_size == 128
        assert self.m.l2.latency == 12

    def test_memory_latency(self):
        assert self.m.memory_latency == 200

    def test_tlbs(self):
        assert self.m.itlb.entries == 128
        assert self.m.dtlb.entries == 256
        assert self.m.itlb.miss_latency == 200
        assert self.m.dtlb.miss_latency == 200

    def test_branch_predictor(self):
        bp = self.m.branch_predictor
        assert bp.pht_entries == 2048
        assert bp.history_bits == 10
        assert bp.btb_entries == 2048
        assert bp.btb_assoc == 4
        assert bp.ras_entries == 32

    def test_validates(self):
        self.m.validate()


class TestCacheConfig:
    def test_geometry(self):
        c = CacheConfig(size=64 * 1024, assoc=4, line_size=64, latency=1)
        assert c.num_lines == 1024
        assert c.num_sets == 256

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, assoc=4, line_size=64, latency=1).validate()

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size=3 * 64 * 4, assoc=4, line_size=64, latency=1).validate()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CacheConfig(size=-1, assoc=4, line_size=64, latency=1).validate()


class TestTLBConfig:
    def test_valid(self):
        TLBConfig(entries=128, assoc=4, miss_latency=200).validate()

    def test_rejects_bad_assoc(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=100, assoc=3, miss_latency=200).validate()

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0, assoc=1, miss_latency=200).validate()


class TestBranchPredictorConfig:
    def test_rejects_non_pow2_pht(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(pht_entries=1000).validate()

    def test_rejects_btb_mismatch(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(btb_entries=100, btb_assoc=3).validate()


class TestMachineValidation:
    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            MachineConfig(num_threads=0).validate()

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            MachineConfig(issue_width=0).validate()

    def test_rejects_zero_iq(self):
        with pytest.raises(ValueError):
            MachineConfig(iq_size=0).validate()

    def test_replace_returns_copy(self):
        m = MachineConfig()
        m2 = m.replace(num_threads=2)
        assert m2.num_threads == 2
        assert m.num_threads == 4
        assert m2 is not m


class TestReliabilityConfig:
    def test_paper_defaults(self):
        r = ReliabilityConfig()
        assert r.interval_cycles == 10_000
        assert r.ace_window == 40_000
        assert r.t_cache_miss == 16
        assert r.dvm_trigger_fraction == 0.9
        assert r.dvm_samples_per_interval == 5
        assert r.dvm_ratio_period == 50
        assert r.num_ipc_regions == 4
        r.validate()

    def test_rejects_bad_trigger_fraction(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(dvm_trigger_fraction=1.5).validate()

    def test_rejects_bad_ratio_bounds(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(wq_ratio_min=10.0, wq_ratio_initial=1.0).validate()

    def test_rejects_zero_interval(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(interval_cycles=0).validate()

    def test_rejects_zero_regions(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(num_ipc_regions=0).validate()


class TestSimulationConfig:
    def test_defaults_validate(self):
        SimulationConfig().validate()

    def test_rejects_warmup_beyond_run(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_cycles=100, warmup_cycles=100).validate()

    def test_scaled_for_bench_shrinks_intervals(self):
        cfg = SimulationConfig.scaled_for_bench(max_cycles=10_000, warmup_cycles=1_000)
        assert cfg.reliability.interval_cycles < 10_000
        assert cfg.reliability.ace_window < 40_000
        cfg.validate()

    def test_scaled_for_bench_keeps_ratio_period(self):
        # The 50-cycle ratio recomputation is a hardware cost, not a
        # simulation-length artifact: it stays at the paper's value.
        cfg = SimulationConfig.scaled_for_bench()
        assert cfg.reliability.dvm_ratio_period == 50
