"""Dynamic IQ resource allocation — Figures 3 and 4."""

import pytest

from repro.reliability.resource_alloc import (
    DynamicIQAllocation,
    IntervalSnapshot,
    L2MissSensitiveAllocation,
    UnlimitedDispatch,
)


def snap(ipc, rql=10.0, l2=0, cycles=10_000):
    return IntervalSnapshot(
        cycle=10_000,
        committed=int(ipc * cycles),
        cycles=cycles,
        avg_ready_queue_len=rql,
        l2_misses=l2,
    )


class TestFigure3Formula:
    """The four-region formula must match Figure 3 exactly for a
    96-entry IQ and 8-wide commit."""

    def setup_method(self):
        self.d = DynamicIQAllocation(96, commit_width=8, num_regions=4, min_limit=1)

    @pytest.mark.parametrize("ipc,region", [
        (0.5, 0), (2.0, 0), (2.1, 1), (4.0, 1), (4.5, 2), (6.0, 2), (6.1, 3), (8.0, 3),
    ])
    def test_region_boundaries(self, ipc, region):
        # Paper: 0<IPC<=2, 2<IPC<=4, 4<IPC<=6, 6<IPC<=8.  Our region_of
        # uses half-open [lo, hi) intervals; boundary values land in the
        # adjacent region but the caps differ by one step only.
        assert self.d.region_of(ipc) in (region, max(region - 1, 0))

    @pytest.mark.parametrize("ipc,add,cap", [
        (1.0, 16, 32),   # min(RQL + 96/6, 96/3)
        (3.0, 32, 48),   # min(RQL + 96/3, 96/2)
        (5.0, 48, 64),   # min(RQL + 96/2, 2*96/3)
        (7.0, 64, 96),   # min(RQL + 2*96/3, 96)
    ])
    def test_figure3_values(self, ipc, add, cap):
        # With a tiny RQL the additive term dominates…
        assert self.d.limit_for(ipc, rql=0.0) == add
        # …with a huge RQL the cap dominates.
        assert self.d.limit_for(ipc, rql=1_000.0) == cap

    def test_limit_updates_on_interval(self):
        self.d.on_interval(snap(ipc=1.0, rql=4.0))
        assert self.d.iq_limit == 20  # 4 + 16

    def test_limit_clamped_to_iq_size(self):
        d = DynamicIQAllocation(96)
        d.on_interval(snap(ipc=7.5, rql=100.0))
        assert d.iq_limit <= 96

    def test_min_limit(self):
        d = DynamicIQAllocation(96, min_limit=24)
        d.on_interval(snap(ipc=0.1, rql=0.0))
        assert d.iq_limit >= 24

    def test_history_recorded(self):
        self.d.on_interval(snap(ipc=1.0))
        self.d.on_interval(snap(ipc=7.0))
        assert len(self.d.limit_history) == 2

    def test_reset(self):
        self.d.on_interval(snap(ipc=1.0, rql=0.0))
        self.d.reset()
        assert self.d.iq_limit == 96
        assert self.d.limit_history == []

    def test_general_region_count(self):
        d2 = DynamicIQAllocation(96, num_regions=2)
        d8 = DynamicIQAllocation(96, num_regions=8)
        assert d2.region_of(3.9) == 0 and d2.region_of(4.1) == 1
        assert d8.region_of(7.9) == 7

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DynamicIQAllocation(96, num_regions=0)
        with pytest.raises(ValueError):
            DynamicIQAllocation(96, min_limit=0)
        with pytest.raises(ValueError):
            DynamicIQAllocation(0)


class TestOptimization2:
    """Figure 4: FLUSH when L2 misses exceed Tcache_miss."""

    def setup_method(self):
        self.d = L2MissSensitiveAllocation(96, t_cache_miss=16)

    def test_below_threshold_behaves_like_opt1(self):
        self.d.on_interval(snap(ipc=1.0, rql=0.0, l2=16))
        assert not self.d.flush_mode
        assert self.d.iq_limit == 16  # Figure 3 region 0 additive term

    def test_above_threshold_enables_flush(self):
        self.d.on_interval(snap(ipc=1.0, rql=0.0, l2=17))
        assert self.d.flush_mode
        assert self.d.iq_limit == 96  # cap lifted; FLUSH manages instead

    def test_mode_toggles_back(self):
        self.d.on_interval(snap(ipc=1.0, l2=100))
        self.d.on_interval(snap(ipc=1.0, l2=0))
        assert not self.d.flush_mode

    def test_flush_interval_counter(self):
        self.d.on_interval(snap(ipc=1.0, l2=100))
        self.d.on_interval(snap(ipc=1.0, l2=100))
        assert self.d.flush_intervals == 2

    def test_reset(self):
        self.d.on_interval(snap(ipc=1.0, l2=100))
        self.d.reset()
        assert not self.d.flush_mode
        assert self.d.flush_intervals == 0

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            L2MissSensitiveAllocation(96, t_cache_miss=-1)


class TestUnlimited:
    def test_never_restricts(self):
        d = UnlimitedDispatch(96)
        d.on_interval(snap(ipc=0.0, rql=0.0, l2=10_000))
        assert d.iq_limit == 96
        assert not d.flush_mode


class TestIntervalSnapshot:
    def test_ipc(self):
        s = snap(ipc=2.0)
        assert s.ipc == pytest.approx(2.0)

    def test_zero_cycles(self):
        s = IntervalSnapshot(cycle=0, committed=5, cycles=0, avg_ready_queue_len=0, l2_misses=0)
        assert s.ipc == 0.0


class TestLinearRatioMode:
    """The paper's alternative 'linear model' ratio setup."""

    def setup_method(self):
        self.d = DynamicIQAllocation(96, ratio_mode="linear", min_limit=1)

    def test_endpoints_match_static_extremes(self):
        # IPC 0 -> additive 1/6 of IQ; IPC 8 -> 4/6 of IQ.
        assert self.d.limit_for(0.0, rql=0.0) == 16
        assert self.d.limit_for(8.0, rql=0.0) == 64

    def test_midpoint_interpolates(self):
        assert self.d.limit_for(4.0, rql=0.0) == 40  # (1+1.5)/6*96

    def test_cap_one_step_above_add(self):
        assert self.d.limit_for(0.0, rql=1_000.0) == 32

    def test_cap_clamped_to_iq(self):
        assert self.d.limit_for(8.0, rql=1_000.0) <= 96

    def test_ipc_clamped(self):
        assert self.d.limit_for(100.0, rql=0.0) == self.d.limit_for(8.0, rql=0.0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            DynamicIQAllocation(96, ratio_mode="quadratic")

    def test_similar_efficiency_hook(self):
        """Static and linear produce comparable caps in mid regions —
        the paper's reported observation."""
        static = DynamicIQAllocation(96, ratio_mode="static", min_limit=1)
        for ipc in (1.0, 3.0, 5.0, 7.0):
            lin = self.d.limit_for(ipc, rql=10.0)
            sta = static.limit_for(ipc, rql=10.0)
            assert abs(lin - sta) <= 16
