"""Parallel execution engine: determinism, checkpoint/resume, degradation."""

import json
import math
import os

import pytest

from repro.harness import parallel as parallel_mod
from repro.harness.experiments import SUITES
from repro.harness.parallel import (
    CheckpointShard,
    Task,
    config_key,
    execute_tasks,
    parallel_figures,
    parallel_replicate,
    parallel_sweep,
)
from repro.harness.replication import replicate
from repro.harness.runner import BenchScale, clear_caches
from repro.harness.sweep import sweep
from repro.telemetry.bus import EventBus
from repro.telemetry.topics import TOPIC_HARNESS_POINT

TINY = BenchScale(
    max_cycles=2_000, warmup_cycles=400, interval_cycles=400,
    ace_window=800, profile_instructions=6_000, profile_window=1_500,
)

AXES = {"scheduler": ["oldest", "visa"], "dispatch": [None, "opt2"]}
BASELINE = {"scheduler": "oldest", "dispatch": None}


@pytest.fixture(autouse=True, scope="module")
def _caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="module")
def serial_rows():
    return sweep("CPU-A", TINY, AXES)


@pytest.fixture(scope="module")
def serial_rows_normalized():
    return sweep("CPU-A", TINY, AXES, normalize_to=BASELINE)


def _ck(tmp_path) -> str:
    return str(tmp_path / "checkpoint.jsonl")


# ----------------------------------------------------------------------
# Serial/parallel equivalence
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_inline_matches_serial(self, serial_rows, tmp_path):
        run = parallel_sweep("CPU-A", TINY, AXES, checkpoint=_ck(tmp_path))
        assert run.rows == serial_rows
        assert run.executed == 4 and run.cached == 0 and not run.skipped

    def test_inline_matches_serial_normalized(
        self, serial_rows_normalized, tmp_path
    ):
        run = parallel_sweep(
            "CPU-A", TINY, AXES, normalize_to=BASELINE, checkpoint=_ck(tmp_path)
        )
        assert run.rows == serial_rows_normalized

    def test_pool_matches_serial(self, serial_rows_normalized, tmp_path):
        # Workers fork with the module's warm run_sim caches, so the
        # pool path exercises submission/merge without re-simulating.
        run = parallel_sweep(
            "CPU-A", TINY, AXES, normalize_to=BASELINE,
            jobs=2, checkpoint=_ck(tmp_path),
        )
        assert run.rows == serial_rows_normalized

    def test_row_order_is_grid_order(self, serial_rows, tmp_path):
        run = parallel_sweep("CPU-A", TINY, AXES, checkpoint=_ck(tmp_path))
        order = [(r["scheduler"], r["dispatch"]) for r in run.rows]
        assert order == [(r["scheduler"], r["dispatch"]) for r in serial_rows]

    def test_no_checkpoint_mode(self, serial_rows):
        run = parallel_sweep("CPU-A", TINY, AXES, checkpoint=None)
        assert run.rows == serial_rows
        assert run.checkpoint_path is None

    def test_replicate_matches_serial(self, tmp_path):
        serial = replicate("CPU-A", TINY, seeds=[1, 2])
        out = parallel_replicate(
            "CPU-A", TINY, seeds=[1, 2], checkpoint=_ck(tmp_path)
        )
        assert {k: v.values for k, v in out.items()} == {
            k: v.values for k, v in serial.items()
        }


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_full_resume_executes_nothing(self, serial_rows, tmp_path):
        ck = _ck(tmp_path)
        parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck)
        run = parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck, resume=True)
        assert run.rows == serial_rows
        assert run.executed == 0 and run.cached == 4
        assert all(r.status == "cached" for r in run.reports)

    def test_partial_resume_executes_only_missing(self, serial_rows, tmp_path):
        ck = _ck(tmp_path)
        parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck)
        # Simulate a kill after two completed points: keep the header
        # and the first two records, plus a torn half-written line.
        with open(ck) as fh:
            lines = fh.readlines()
        with open(ck, "w") as fh:
            fh.writelines(lines[:3])
            fh.write('{"key": "torn-partial-reco')
        run = parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck, resume=True)
        assert run.executed == 2 and run.cached == 2
        assert run.rows == serial_rows
        # The shard is now complete again: a further resume is all-cached.
        again = parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck, resume=True)
        assert again.executed == 0 and again.cached == 4

    def test_without_resume_flag_restarts(self, tmp_path):
        ck = _ck(tmp_path)
        parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck)
        run = parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck)
        assert run.executed == 4 and run.cached == 0

    def test_signature_mismatch_rejected(self, tmp_path):
        ck = _ck(tmp_path)
        parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck)
        with pytest.raises(ValueError, match="different sweep configuration"):
            parallel_sweep(
                "CPU-A", TINY, {"scheduler": ["oldest"]},
                checkpoint=ck, resume=True,
            )

    def test_headerless_shard_rejected(self, tmp_path):
        ck = _ck(tmp_path)
        with open(ck, "w") as fh:
            fh.write('{"key": "x", "status": "done", "value": {}}\n')
        with pytest.raises(ValueError, match="no readable header"):
            parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck, resume=True)

    def test_version_mismatch_rejected(self, tmp_path):
        ck = _ck(tmp_path)
        with open(ck, "w") as fh:
            fh.write(json.dumps({"_checkpoint": {"version": 99, "signature": "x"}}) + "\n")
        with pytest.raises(ValueError, match="format version"):
            parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck, resume=True)

    def test_shard_records_are_json_rows(self, tmp_path):
        ck = _ck(tmp_path)
        parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck)
        header, records = CheckpointShard.load(ck)
        assert header["version"] == parallel_mod.CHECKPOINT_VERSION
        assert header["kind"] == "sweep"
        assert len(records) == 4
        for rec in records.values():
            assert {"ipc", "iq_avf", "max_iq_avf"} <= set(rec["value"])


# ----------------------------------------------------------------------
# Degraded runs: retry, skip, strict
# ----------------------------------------------------------------------
class TestFailurePaths:
    def test_retry_then_skip_on_poisoned_point(self, monkeypatch, tmp_path):
        monkeypatch.setenv(parallel_mod.FAULT_ENV, "raise:dispatch=opt2")
        bus = EventBus()
        statuses = []
        bus.subscribe(
            TOPIC_HARNESS_POINT, lambda e: statuses.append(e.payload["status"])
        )
        run = parallel_sweep(
            "CPU-A", TINY, AXES,
            checkpoint=_ck(tmp_path), retries=1, backoff=0.0, bus=bus,
        )
        assert len(run.rows) == 2  # both dispatch=opt2 points skipped
        assert len(run.skipped) == 2
        assert all("injected fault" in r.error for r in run.skipped)
        assert all(r.attempts == 2 for r in run.skipped)
        assert statuses.count("retry") == 2 and statuses.count("skipped") == 2

    def test_strict_raises_on_skip(self, monkeypatch, tmp_path):
        monkeypatch.setenv(parallel_mod.FAULT_ENV, "raise:scheduler=visa")
        with pytest.raises(RuntimeError, match="failed after"):
            parallel_sweep(
                "CPU-A", TINY, AXES,
                checkpoint=_ck(tmp_path), retries=0, backoff=0.0, strict=True,
            )

    def test_transient_failure_recovers(self, monkeypatch, serial_rows, tmp_path):
        real = parallel_mod.run_sim
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(*args, **kwargs)

        monkeypatch.setattr(parallel_mod, "run_sim", flaky)
        run = parallel_sweep(
            "CPU-A", TINY, AXES, checkpoint=_ck(tmp_path),
            retries=2, backoff=0.0,
        )
        assert run.rows == serial_rows
        assert not run.skipped
        assert run.reports[0].attempts == 2

    def test_pool_worker_death_is_skipped(self, monkeypatch, tmp_path):
        # os._exit in the worker kills the process outright: the pool
        # breaks, the engine rebuilds it, and after the retry budget the
        # point is reported skipped instead of crashing the sweep.
        monkeypatch.setenv(parallel_mod.FAULT_ENV, "exit:scheduler=visa")
        run = parallel_sweep(
            "CPU-A", TINY, {"scheduler": ["visa"]},
            jobs=2, checkpoint=_ck(tmp_path), retries=1, backoff=0.0,
        )
        assert run.rows == []
        assert len(run.skipped) == 1
        assert "worker process died" in run.skipped[0].error

    def test_skipped_points_rerun_on_resume(self, monkeypatch, serial_rows, tmp_path):
        ck = _ck(tmp_path)
        monkeypatch.setenv(parallel_mod.FAULT_ENV, "raise:dispatch=opt2")
        first = parallel_sweep(
            "CPU-A", TINY, AXES, checkpoint=ck, retries=0, backoff=0.0
        )
        assert len(first.skipped) == 2
        monkeypatch.delenv(parallel_mod.FAULT_ENV)
        second = parallel_sweep(
            "CPU-A", TINY, AXES, checkpoint=ck, resume=True
        )
        assert second.executed == 2 and second.cached == 2
        assert second.rows == serial_rows

    def test_skipped_baseline_yields_nan_rows(self, monkeypatch, tmp_path):
        monkeypatch.setenv(parallel_mod.FAULT_ENV, "raise:baseline")
        with pytest.warns(RuntimeWarning, match="baseline point was skipped"):
            run = parallel_sweep(
                "CPU-A", TINY, {"scheduler": ["visa"]},
                normalize_to={"scheduler": "oldest", "dispatch": "opt1"},
                checkpoint=_ck(tmp_path), retries=0, backoff=0.0,
            )
        assert len(run.rows) == 1
        assert all(math.isnan(run.rows[0][m]) for m in ("ipc", "iq_avf"))


# ----------------------------------------------------------------------
# Argument validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            parallel_sweep("CPU-A", TINY, {})

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            parallel_replicate("CPU-A", TINY, seeds=[])

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            parallel_sweep("CPU-A", TINY, AXES, jobs=-1, checkpoint=None)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            parallel_sweep("CPU-A", TINY, AXES, timeout=0.0, checkpoint=None)

    def test_duplicate_task_keys_rejected(self):
        task = Task(0, "same-key", "a", "sim", ("CPU-A", TINY, ()))
        dup = Task(1, "same-key", "b", "sim", ("CPU-A", TINY, ()))
        with pytest.raises(ValueError, match="unique"):
            execute_tasks([task, dup], reduce=lambda t, v: v)

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError, match="unknown figure suite"):
            parallel_figures(["fig99"], TINY)

    def test_config_key_is_canonical(self):
        a = config_key("CPU-A", TINY, {"x": 1, "y": None})
        b = config_key("CPU-A", TINY, {"y": None, "x": 1})
        assert a == b
        assert a != config_key("CPU-A", TINY, {"x": 1, "y": 2})


# ----------------------------------------------------------------------
# Telemetry + figures
# ----------------------------------------------------------------------
class TestTelemetryAndFigures:
    def test_bus_events_and_chrome_trace(self, tmp_path):
        from repro.perf.chrome_trace import (
            TID_WORKER_BASE,
            build_trace,
            validate_trace,
        )
        from repro.telemetry.timeline import TimelineRecorder

        ck = _ck(tmp_path)
        parallel_sweep("CPU-A", TINY, AXES, checkpoint=ck)
        bus = EventBus()
        recorder = TimelineRecorder(bus, topics=(TOPIC_HARNESS_POINT,))
        with recorder:
            rerun = parallel_sweep(
                "CPU-A", TINY, AXES, checkpoint=ck, resume=True, bus=bus
            )
        assert rerun.cached == 4
        assert [e.payload["status"] for e in recorder.events] == ["cached"] * 4
        # A live run produces per-worker slices that nest cleanly.
        bus2 = EventBus()
        recorder2 = TimelineRecorder(bus2, topics=(TOPIC_HARNESS_POINT,))
        with recorder2:
            parallel_sweep("CPU-A", TINY, AXES, checkpoint=None, bus=bus2)
        doc = build_trace(recorded=recorder2.events)
        counts = validate_trace(doc)
        assert counts["X"] == 4
        worker_tids = {
            e["tid"] for e in doc["traceEvents"] if e.get("ph") == "X"
        }
        assert worker_tids and all(t >= TID_WORKER_BASE for t in worker_tids)

    def test_timeline_detail_line(self):
        from repro.telemetry.timeline import _fmt_payload

        detail = _fmt_payload(
            "harness.point",
            {
                "index": 3, "label": "scheduler=visa", "status": "done",
                "start_ms": 1.0, "elapsed_ms": 42.0, "attempt": 1, "worker": 0,
            },
        )
        assert "scheduler=visa" in detail and "done" in detail and "w0" in detail

    def test_figures_matches_direct_driver(self, tmp_path):
        direct = SUITES["table1"][0](TINY)
        run = parallel_figures(["table1"], TINY, checkpoint=_ck(tmp_path))
        assert run.results["table1"] == direct
        resumed = parallel_figures(
            ["table1"], TINY, checkpoint=run.checkpoint_path, resume=True
        )
        assert resumed.cached == 1 and resumed.results["table1"] == direct


# ----------------------------------------------------------------------
# CLI integration (inline engine)
# ----------------------------------------------------------------------
class TestCLI:
    def test_sweep_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "--axis", "scheduler=oldest,visa", "--jobs", "4",
             "--resume", "--timeout", "30"]
        )
        assert dict(args.axis) == {"scheduler": ["oldest", "visa"]}
        assert args.jobs == 4 and args.resume and args.timeout == 30.0

    def test_axis_value_parsing(self):
        from repro.cli import _parse_axis, _parse_kwargs

        name, values = _parse_axis("dispatch=none,opt1,opt2")
        assert name == "dispatch" and values == [None, "opt1", "opt2"]
        assert _parse_kwargs("dvm_target=0.5,profiled=true") == {
            "dvm_target": 0.5, "profiled": True,
        }

    def test_sweep_command_roundtrip(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CYCLES", raising=False)
        ck = str(tmp_path / "cli.jsonl")
        out = str(tmp_path / "rows.json")
        argv = [
            "sweep", "--mix", "CPU-A",
            "--axis", "scheduler=oldest,visa",
            "--cycles", "2000", "--checkpoint", ck, "--out", out, "--quiet",
        ]
        assert main(argv) == 0
        rows = json.load(open(out))
        assert len(rows) == 2
        assert main(argv + ["--resume"]) == 0
        err = capsys.readouterr().err
        assert "2 resumed from checkpoint" in err
        assert json.load(open(out)) == rows

    def test_figures_command(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CYCLES", raising=False)
        monkeypatch.chdir(tmp_path)
        assert main(["figures", "table1", "--cycles", "2000", "--quiet"]) == 0
        assert "Table 1" in capsys.readouterr().out
        assert main(["figures", "nope"]) == 2

    def test_serve_and_log_flags_build_monitor_config(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "--axis", "scheduler=oldest", "--jobs", "2",
             "--serve", ":9099", "--log", "run.log"]
        )
        assert args.serve == ":9099" and args.log == "run.log"
        args = build_parser().parse_args(["monitor", "ck.jsonl", "--once"])
        assert args.checkpoint == "ck.jsonl" and args.once
        assert args.interval == 2.0

    def test_monitor_command_attaches_to_dead_run(self, tmp_path, capsys,
                                                  monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CYCLES", raising=False)
        ck = str(tmp_path / "mon.jsonl")
        argv = [
            "sweep", "--mix", "CPU-A",
            "--axis", "scheduler=oldest,visa",
            "--cycles", "2000", "--jobs", "2", "--checkpoint", ck, "--quiet",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["monitor", ck, "--once"]) == 0
        out = capsys.readouterr().out
        assert "[finished]" in out and "2/2 points" in out
        assert "dropped=0" in out

    def test_monitor_command_missing_status(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["monitor", str(tmp_path / "nope.jsonl"), "--once"]) == 1
        err = capsys.readouterr().err
        assert "no status document" in err
