"""Multi-seed replication helpers."""

import pytest

from repro.harness.replication import Replicated, replicate, replicated_ratio
from repro.harness.runner import BenchScale, clear_caches

TINY = BenchScale(
    max_cycles=2_000, warmup_cycles=400, interval_cycles=400,
    ace_window=800, profile_instructions=6_000, profile_window=1_500,
)


@pytest.fixture(autouse=True, scope="module")
def _caches():
    clear_caches()
    yield
    clear_caches()


class TestReplicated:
    def test_stats(self):
        r = Replicated("x", (1.0, 2.0, 3.0))
        assert r.mean == 2.0
        assert r.n == 3
        assert r.sem > 0
        lo, hi = r.ci95()
        assert lo < 2.0 < hi

    def test_single_sample_sem_zero(self):
        r = Replicated("x", (1.5,))
        assert r.sem == 0.0


class TestReplicate:
    def test_default_metrics(self):
        out = replicate("CPU-A", TINY, seeds=[1, 2])
        assert set(out) == {"ipc", "iq_avf"}
        assert out["ipc"].n == 2
        assert all(v > 0 for v in out["ipc"].values)

    def test_seeds_produce_distinct_values(self):
        out = replicate("CPU-A", TINY, seeds=[1, 2])
        assert out["ipc"].values[0] != out["ipc"].values[1]

    def test_custom_metric(self):
        out = replicate(
            "CPU-A", TINY, seeds=[1],
            metrics={"sq": lambda r: r.squashed},
        )
        assert out["sq"].n == 1

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate("CPU-A", TINY, seeds=[])


class TestReplicatedRatio:
    def test_visa_avf_ratio(self):
        r = replicated_ratio(
            "CPU-A", TINY, seeds=[1, 2],
            metric=lambda res: res.iq_avf,
            scheduler="visa",
        )
        assert r.n == 2
        assert all(0.2 < v < 1.5 for v in r.values)

    def test_identity_ratio_is_one(self):
        r = replicated_ratio(
            "CPU-A", TINY, seeds=[1],
            metric=lambda res: res.ipc,
        )
        assert r.values == (1.0,)

    def test_zero_baseline_metric_is_nan_not_zero(self):
        # Regression: a 0.0 baseline metric used to make the ratio 0.0,
        # which reads as a perfect (100%) reduction.
        import math

        with pytest.warns(RuntimeWarning, match="baseline metric"):
            r = replicated_ratio(
                "CPU-A", TINY, seeds=[1, 2],
                metric=lambda res: 0.0,
                scheduler="visa",
            )
        assert r.n == 2
        assert all(math.isnan(v) for v in r.values)
        assert math.isnan(r.mean)
