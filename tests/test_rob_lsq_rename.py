"""Per-thread ROB, LSQ and rename table."""

import pytest

from repro.core.lsq import LoadStoreQueue
from repro.core.rename import RenameTable
from repro.core.rob import ReorderBuffer
from repro.isa.instruction import (
    DynInst,
    DynState,
    MemBehavior,
    MemPattern,
    OpClass,
    StaticInst,
)


def alu_dyn(tag, dest=1, srcs=(2,), thread=0):
    st = StaticInst(pc=0x1000 + 4 * tag, opclass=OpClass.IALU, dest=dest, srcs=srcs)
    return DynInst(tag=tag, thread=thread, static=st, stream_pos=tag)


def mem_dyn(tag, op=OpClass.LOAD, thread=0):
    st = StaticInst(
        pc=0x1000 + 4 * tag, opclass=op,
        dest=1 if op == OpClass.LOAD else -1,
        srcs=(2,) if op == OpClass.LOAD else (2, 3),
        mem=MemBehavior(MemPattern.HOT, base=0, footprint=4096),
    )
    return DynInst(tag=tag, thread=thread, static=st, stream_pos=tag)


class TestROB:
    def test_in_order_commit(self):
        rob = ReorderBuffer(4, thread=0)
        a, b = alu_dyn(1), alu_dyn(2)
        rob.push(a)
        rob.push(b)
        assert rob.head() is a
        committed = rob.commit_head()
        assert committed is a and committed.state == DynState.COMMITTED
        assert rob.head() is b

    def test_overflow(self):
        rob = ReorderBuffer(1, thread=0)
        rob.push(alu_dyn(1))
        assert rob.full
        with pytest.raises(RuntimeError):
            rob.push(alu_dyn(2))

    def test_squash_after_removes_young_first(self):
        rob = ReorderBuffer(8, thread=0)
        for t in range(1, 6):
            rob.push(alu_dyn(t))
        removed = rob.squash_after(after_tag=2)
        assert [d.tag for d in removed] == [5, 4, 3]
        assert len(rob) == 2

    def test_squash_nothing(self):
        rob = ReorderBuffer(8, thread=0)
        rob.push(alu_dyn(1))
        assert rob.squash_after(after_tag=10) == []

    def test_free_entries(self):
        rob = ReorderBuffer(4, thread=0)
        rob.push(alu_dyn(1))
        assert rob.free_entries == 3

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0, thread=0)


class TestLSQ:
    def test_capacity(self):
        lsq = LoadStoreQueue(2, thread=0)
        lsq.push(mem_dyn(1))
        lsq.push(mem_dyn(2))
        assert lsq.full
        with pytest.raises(RuntimeError):
            lsq.push(mem_dyn(3))

    def test_forwarding_after_store_address(self):
        lsq = LoadStoreQueue(8, thread=0)
        store = mem_dyn(1, op=OpClass.STORE)
        store.mem_addr = 0x100
        lsq.push(store)
        assert not lsq.can_forward(0x100)
        lsq.note_store_address(store)
        assert lsq.can_forward(0x100)
        assert lsq.can_forward(0x104)  # same 8-byte word
        assert not lsq.can_forward(0x108)

    def test_forwarding_cleared_at_remove(self):
        lsq = LoadStoreQueue(8, thread=0)
        store = mem_dyn(1, op=OpClass.STORE)
        store.mem_addr = 0x100
        lsq.push(store)
        lsq.note_store_address(store)
        lsq.remove(store)
        assert not lsq.can_forward(0x100)
        assert len(lsq) == 0

    def test_two_stores_same_word(self):
        lsq = LoadStoreQueue(8, thread=0)
        s1, s2 = mem_dyn(1, OpClass.STORE), mem_dyn(2, OpClass.STORE)
        s1.mem_addr = s2.mem_addr = 0x200
        for s in (s1, s2):
            lsq.push(s)
            lsq.note_store_address(s)
        lsq.remove(s1)
        assert lsq.can_forward(0x200)  # s2 still pending
        lsq.remove(s2)
        assert not lsq.can_forward(0x200)

    def test_squash_after(self):
        lsq = LoadStoreQueue(8, thread=0)
        for t in (1, 2, 3):
            lsq.push(mem_dyn(t))
        removed = lsq.squash_after(after_tag=1)
        assert sorted(d.tag for d in removed) == [2, 3]
        assert len(lsq) == 1

    def test_remove_unknown_is_noop(self):
        lsq = LoadStoreQueue(8, thread=0)
        lsq.remove(mem_dyn(9))  # no error


class TestRename:
    def test_resolve_unknown_sources_ready(self):
        rt = RenameTable(0)
        d = alu_dyn(1, srcs=(5, 6))
        rt.resolve_sources(d)
        assert d.src_tags == []

    def test_pending_producer_tracked(self):
        rt = RenameTable(0)
        producer = alu_dyn(1, dest=5)
        producer.state = DynState.DISPATCHED
        rt.set_dest(producer)
        consumer = alu_dyn(2, srcs=(5,))
        rt.resolve_sources(consumer)
        assert consumer.src_tags == [1]

    def test_completed_producer_is_available(self):
        rt = RenameTable(0)
        producer = alu_dyn(1, dest=5)
        producer.state = DynState.COMPLETED
        rt.set_dest(producer)
        consumer = alu_dyn(2, srcs=(5,))
        rt.resolve_sources(consumer)
        assert consumer.src_tags == []

    def test_duplicate_source_tag_once(self):
        rt = RenameTable(0)
        producer = alu_dyn(1, dest=5)
        producer.state = DynState.DISPATCHED
        rt.set_dest(producer)
        consumer = alu_dyn(2, srcs=(5, 5))
        rt.resolve_sources(consumer)
        assert consumer.src_tags == [1]

    def test_unwind_restores_previous_producer(self):
        rt = RenameTable(0)
        p1 = alu_dyn(1, dest=5)
        p1.state = DynState.DISPATCHED
        rt.set_dest(p1)
        p2 = alu_dyn(2, dest=5)
        p2.state = DynState.DISPATCHED
        rt.set_dest(p2)
        assert rt.get(5) is p2
        rt.unwind(p2)
        assert rt.get(5) is p1

    def test_unwind_chain_young_to_old(self):
        rt = RenameTable(0)
        producers = []
        for t in range(1, 4):
            p = alu_dyn(t, dest=7)
            p.state = DynState.DISPATCHED
            rt.set_dest(p)
            producers.append(p)
        for p in reversed(producers[1:]):
            rt.unwind(p)
        assert rt.get(7) is producers[0]

    def test_unwind_to_empty(self):
        rt = RenameTable(0)
        p = alu_dyn(1, dest=3)
        rt.set_dest(p)
        rt.unwind(p)
        assert rt.get(3) is None

    def test_unwind_ignores_stale(self):
        rt = RenameTable(0)
        p1 = alu_dyn(1, dest=5)
        rt.set_dest(p1)
        p2 = alu_dyn(2, dest=5)
        rt.set_dest(p2)
        rt.unwind(p1)  # p1 is not the current mapping: no-op
        assert rt.get(5) is p2

    def test_squashed_producer_treated_available(self):
        rt = RenameTable(0)
        p = alu_dyn(1, dest=5)
        p.state = DynState.SQUASHED
        rt.set_dest(p)
        c = alu_dyn(2, srcs=(5,))
        rt.resolve_sources(c)
        assert c.src_tags == []
