"""Pipeline tracer: recording, summaries, JSONL round-trip."""

import pytest

from repro.config import ReliabilityConfig, SimulationConfig
from repro.core.pipeline import SMTPipeline
from repro.harness.trace import PipelineTracer, TraceEvent
from repro.isa.generator import generate_program
from repro.workloads import get_mix


def make_pipe(cycles=1_200, mix="CPU-A"):
    sim = SimulationConfig(
        max_cycles=cycles, warmup_cycles=0, seed=3, bp_warmup_instructions=2_000,
        reliability=ReliabilityConfig(interval_cycles=400, ace_window=800),
    )
    return SMTPipeline(get_mix(mix).programs(seed=3), sim=sim)


@pytest.fixture(scope="module")
def traced():
    pipe = make_pipe()
    with PipelineTracer(pipe) as tracer:
        result = pipe.run()
    return tracer, result


class TestRecording:
    def test_committed_events_match_result(self, traced):
        tracer, result = traced
        assert len(tracer.committed()) == result.committed

    def test_squashed_events_recorded(self, traced):
        tracer, result = traced
        squashed = [e for e in tracer.events if e.squashed]
        assert len(squashed) == result.squashed

    def test_stage_timestamps_ordered(self, traced):
        tracer, _ = traced
        for e in tracer.committed():
            if e.dispatch >= 0:
                assert e.fetch <= e.dispatch
            if e.issue >= 0:
                assert e.dispatch <= e.issue
            if e.complete >= 0 and e.issue >= 0:
                assert e.issue < e.complete
            if e.commit >= 0 and e.complete >= 0:
                assert e.complete <= e.commit

    def test_unhook_restores_pipeline(self):
        pipe = make_pipe(cycles=300)
        with PipelineTracer(pipe) as tracer:
            pass
        assert pipe._squash_thread.__name__ == "_squash_thread"

    def test_limit_respected(self):
        pipe = make_pipe(cycles=800)
        with PipelineTracer(pipe, limit=50) as tracer:
            pipe.run()
        assert len(tracer.events) == 50

    def test_exclude_squashed(self):
        pipe = make_pipe(cycles=600)
        with PipelineTracer(pipe, include_squashed=False) as tracer:
            pipe.run()
        assert all(not e.squashed for e in tracer.events)

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            PipelineTracer(make_pipe(cycles=100), limit=0)


class TestSummary:
    def test_summary_fields(self, traced):
        tracer, result = traced
        s = tracer.summary()
        assert s["committed"] == result.committed
        assert s["mean_total_latency"] > 0
        assert s["mean_iq_residency"] >= 0
        assert 0 <= s["ace_fraction"] <= 1

    def test_empty_summary(self):
        pipe = make_pipe(cycles=300)
        tracer = PipelineTracer(pipe)
        assert tracer.summary()["committed"] == 0

    def test_thread_filter(self, traced):
        tracer, _ = traced
        t0 = tracer.of_thread(0)
        assert t0 and all(e.thread == 0 for e in t0)


class TestJsonl:
    def test_round_trip(self, traced, tmp_path):
        tracer, _ = traced
        path = str(tmp_path / "trace.jsonl")
        n = tracer.to_jsonl(path)
        back = PipelineTracer.read_jsonl(path)
        assert len(back) == n
        assert back[0] == tracer.events[0]

    def test_event_properties(self):
        e = TraceEvent(
            tag=1, thread=0, pc=0x10, opclass="IALU",
            fetch=5, dispatch=7, ready=8, issue=9, complete=10, commit=12,
            squashed=False, ace=True, ace_pred=True, mispredicted=False,
            l1_miss=False, l2_miss=False,
        )
        assert e.iq_residency == 2
        assert e.total_latency == 7
