"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.mix == "CPU-A"
        assert args.scheduler == "oldest"
        assert args.dispatch is None

    def test_run_rejects_unknown_mix(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--mix", "GPU-A"])

    def test_run_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--fetch-policy", "nope"])

    def test_profile_args(self):
        args = build_parser().parse_args(["profile", "mesa", "--instructions", "500"])
        assert args.benchmark == "mesa"
        assert args.instructions == 500

    def test_reproduce_args(self):
        args = build_parser().parse_args(["reproduce", "fig5", "--full", "--save"])
        assert args.experiment == "fig5" and args.full and args.save


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "CPU-A" in out and "fig5" in out

    def test_profile(self, capsys):
        assert main(["profile", "gcc", "--instructions", "3000", "--window", "800"]) == 0
        out = capsys.readouterr().out
        assert "PC-classification acc" in out

    def test_profile_unknown_benchmark(self, capsys):
        assert main(["profile", "doom"]) == 2

    def test_run_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLES", "2500")
        from repro.harness.runner import clear_caches

        clear_caches()
        assert main(["run", "--mix", "CPU-A", "--cycles", "2500"]) == 0
        out = capsys.readouterr().out
        assert "throughput IPC" in out and "IQ AVF" in out
        clear_caches()

    def test_reproduce_unknown(self, capsys):
        assert main(["reproduce", "fig99"]) == 2


class TestReproduceCommand:
    def test_reproduce_with_stub(self, capsys, monkeypatch, tmp_path):
        import repro.cli as cli

        monkeypatch.setitem(
            cli._EXPERIMENTS, "stub",
            (lambda scale: [{"a": 1.0, "b": 2.0}], "Stub experiment"),
        )
        monkeypatch.chdir(tmp_path)
        assert main(["reproduce", "stub", "--save"]) == 0
        out = capsys.readouterr().out
        assert "Stub experiment" in out and "saved to" in out
        assert (tmp_path / "reports" / "stub.txt").exists()

    def test_reproduce_dict_payload(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setitem(
            cli._EXPERIMENTS, "stub2",
            (lambda scale: {"x": 3}, "Dict experiment"),
        )
        assert main(["reproduce", "stub2"]) == 0
        assert "Dict experiment" in capsys.readouterr().out

    def test_scale_overrides(self, monkeypatch):
        import repro.cli as cli

        captured = {}
        monkeypatch.setitem(
            cli._EXPERIMENTS, "stub3",
            (lambda scale: captured.setdefault("scale", scale) and [], "S"),
        )
        main(["reproduce", "stub3", "--cycles", "5000", "--seed", "9", "--full"])
        scale = captured["scale"]
        assert scale.max_cycles == 5000
        assert scale.seed == 9
        assert scale.groups == ("A", "B", "C")
