"""Reliability observability: the streaming observer, the vulnerability
report, the drift gate, and the online-vs-oracle convergence property."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.config import MachineConfig
from repro.isa.instruction import DynInst, DynState, OpClass, StaticInst
from repro.perf.history import entries_of_kind, load_history
from repro.reliability.avf import AVFAccount, Structure
from repro.reliability.gate import (
    KIND_RELIABILITY,
    STATUS_DRIFT,
    STATUS_INVALID,
    STATUS_NEW,
    STATUS_OK,
    baseline_value,
    compare_reliability,
    headline_numbers,
    record_reliability,
)
from repro.reliability.observe import SLOT_BIN, ReliabilityObserver
from repro.telemetry.bus import EventBus

L = 100  # interval length used throughout


def _dyn(tag=1, thread=0, opclass=OpClass.IALU, ace=True, ace_pred=True,
         dispatch=0, iq_leave=10, issue=10, commit=20, latency=1,
         state=DynState.COMMITTED, iq_slot=0):
    st_ = StaticInst(pc=0x1000 + 4 * tag, opclass=opclass, dest=1, srcs=())
    d = DynInst(tag=tag, thread=thread, static=st_, stream_pos=tag)
    d.state = state
    d.ace = ace
    d.ace_pred = ace_pred
    d.dispatch_cycle = dispatch
    d.iq_leave_cycle = iq_leave
    d.issue_cycle = issue
    d.commit_cycle = commit
    d.exec_latency = latency
    d.iq_slot = iq_slot
    return d


def _observed_account():
    """An accountant wired to a bus with an attached observer."""
    machine = MachineConfig()
    acct = AVFAccount(machine, interval_cycles=L)
    bus = EventBus()
    acct.bus = bus
    obs = ReliabilityObserver(
        interval_cycles=L,
        capacity_bits={
            "iq": acct.capacity_bits(Structure.IQ),
            "rob": acct.capacity_bits(Structure.ROB),
            "rf": acct.capacity_bits(Structure.RF),
            "fu": acct.capacity_bits(Structure.FU),
        },
        iq_slots=machine.iq_size,
    ).attach(bus)
    return acct, bus, obs


class TestObserverStream:
    def test_reproduces_accountant_series_from_stream(self):
        """The observer must rebuild the accountant's interval AVF
        series purely from bus events (latency-1 residencies within one
        interval, so FU bucketing is exact too)."""
        acct, _, obs = _observed_account()
        acct.on_resolved(_dyn(tag=1, dispatch=10, iq_leave=40, issue=40,
                              commit=90, iq_slot=2))
        acct.on_resolved(_dyn(tag=2, thread=1, dispatch=120, iq_leave=180,
                              issue=180, commit=199, iq_slot=5))
        acct.close(300)
        rep = obs.report(300)
        for s, enum_s in (("iq", Structure.IQ), ("rob", Structure.ROB),
                          ("fu", Structure.FU)):
            assert rep.oracle_interval_avf[s] == pytest.approx(
                acct.interval_avf(enum_s)
            ), s
            assert rep.oracle_overall_avf[s] == pytest.approx(
                acct.overall_avf(enum_s)
            ), s
        assert rep.attributions == 2

    def test_per_thread_shares(self):
        acct, _, obs = _observed_account()
        acct.on_resolved(_dyn(tag=1, thread=0, dispatch=0, iq_leave=30))
        acct.on_resolved(_dyn(tag=2, thread=1, dispatch=0, iq_leave=60))
        acct.close(L)
        rep = obs.report(L)
        bit_cycles = rep.per_thread_bit_cycles["iq"]
        assert bit_cycles[1] == 2 * bit_cycles[0]

    def test_rf_stream(self):
        acct, _, obs = _observed_account()

        class Rec:
            commit_cycle = 10
            last_read_cycle = 40
            dyn = _dyn(thread=1)

        acct.on_rf_lifetime(Rec(), end_cycle=50)
        acct.close(L)
        rep = obs.report(L)
        assert rep.rf_lifetimes == 1
        assert rep.oracle_overall_avf["rf"] == pytest.approx(
            acct.overall_avf(Structure.RF)
        )
        assert rep.residency["rf_lifetime"]["count"] == 1

    def test_heatmap_spreads_residency_across_intervals(self):
        acct, _, obs = _observed_account()
        # Slot 0, resident [50, 150): half in interval 0, half in 1.
        acct.on_resolved(_dyn(dispatch=50, iq_leave=150, issue=-1,
                              commit=-1, iq_slot=0))
        acct.close(200)
        rep = obs.report(200)
        row = rep.heatmap_occupancy[0]  # slots 0..SLOT_BIN-1
        assert row[0] == pytest.approx(50 / (SLOT_BIN * L))
        assert row[1] == pytest.approx(50 / (SLOT_BIN * L))
        vuln = rep.heatmap_vulnerability[0]
        assert vuln[0] > 0 and vuln[1] > 0
        assert vuln[0] + vuln[1] <= acct.layout.iq_ace * 100

    def test_residency_histograms(self):
        acct, _, obs = _observed_account()
        acct.on_resolved(_dyn(dispatch=0, iq_leave=32, issue=32, commit=64))
        acct.close(L)
        h = obs.histograms["iq_residency"]
        assert h.count == 1 and h.maximum == 32
        assert obs.histograms["iq_wait"].count == 1

    def test_detach_stops_accumulation(self):
        acct, _, obs = _observed_account()
        acct.on_resolved(_dyn(tag=1))
        obs.detach()
        acct.on_resolved(_dyn(tag=2))
        assert obs.attributions == 1

    def test_report_round_trips_as_json(self):
        acct, _, obs = _observed_account()
        acct.on_resolved(_dyn())
        acct.close(L)
        rep = obs.report(L)
        doc = json.loads(json.dumps(rep.to_dict()))
        assert doc["attributions"] == 1
        assert doc["per_thread_bit_cycles"]["iq"]["0"] > 0
        text = rep.format()
        assert "Vulnerability report" in text and "heatmap" in text

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ReliabilityObserver(0, {}, 4)
        with pytest.raises(ValueError):
            ReliabilityObserver(L, {}, 0)


class TestObservedRun:
    """End-to-end: a real pipeline with the observer attached."""

    @pytest.fixture(scope="class")
    def observed(self):
        from repro.harness.runner import BenchScale, run_observed

        scale = BenchScale(
            max_cycles=4_000, warmup_cycles=1_000, interval_cycles=1_000,
            ace_window=1_000, profile_instructions=10_000,
            profile_window=2_000,
        )
        result, observer, recorder = run_observed(
            "MEM-A", scale, dvm_target=0.3, record=True
        )
        return result, observer, recorder

    def test_oracle_matches_result(self, observed):
        result, observer, _ = observed
        rep = observer.report(result.cycles)
        assert rep.attributions > 0
        assert rep.oracle_overall_avf["iq"] == pytest.approx(
            result.overall_avf[Structure.IQ], rel=1e-9
        )
        assert rep.oracle_interval_avf["iq"] == pytest.approx(
            result.iq_interval_avf
        )

    def test_online_series_and_divergence(self, observed):
        result, observer, _ = observed
        rep = observer.report(result.cycles)
        assert len(rep.online_interval_avf["iq"]) == rep.intervals
        assert "iq" in rep.divergence
        assert math.isfinite(rep.divergence["iq"]["mean_abs"])
        # DVM publishes its estimate stream.
        assert observer.estimates
        assert all(s == "iq" for _, s, _, _ in observer.estimates)

    def test_recorded_trace_has_counters(self, observed, tmp_path):
        from repro.perf.chrome_trace import (
            read_trace,
            validate_trace,
            write_chrome_trace,
        )

        _, _, recorder = observed
        assert recorder is not None and recorder.events
        path = tmp_path / "avf-trace.json"
        write_chrome_trace(str(path), recorded=recorder.events)
        counts = validate_trace(read_trace(str(path)))
        assert counts.get("C", 0) > 0

    def test_no_observer_run_unaffected(self, observed):
        """The same configuration without an observer must produce the
        identical physics (zero-subscriber fast path is inert)."""
        from repro.harness.runner import BenchScale, run_sim

        result, _, _ = observed
        scale = BenchScale(
            max_cycles=4_000, warmup_cycles=1_000, interval_cycles=1_000,
            ace_window=1_000, profile_instructions=10_000,
            profile_window=2_000,
        )
        plain = run_sim("MEM-A", scale, dvm_target=0.3)
        assert plain.iq_avf == pytest.approx(result.iq_avf)
        assert plain.ipc == pytest.approx(result.ipc)


# ----------------------------------------------------------------------
# Online vs. oracle convergence (property)
# ----------------------------------------------------------------------
@st.composite
def _in_interval_spans(draw):
    """Residency spans each contained in a single interval; the span's
    leave cycle may fall exactly on the interval edge."""
    n = draw(st.integers(1, 10))
    spans = []
    for _ in range(n):
        bucket = draw(st.integers(0, 3))
        start = draw(st.integers(0, L - 1))
        end = draw(st.integers(start + 1, L))
        spans.append((bucket * L + start, bucket * L + end))
    return spans


class TestOnlineOracleConvergence:
    @settings(max_examples=25, deadline=None)
    @given(_in_interval_spans())
    def test_all_ace_workload_converges_exactly(self, spans):
        """With every instruction committed and correctly predicted ACE,
        the oracle interval series equals a cycle-by-cycle online
        accumulation of predicted ACE bits — including spans that leave
        exactly on an interval edge."""
        acct = AVFAccount(MachineConfig(), interval_cycles=L)
        online: dict[int, int] = {}
        for tag, (d, leave) in enumerate(spans, start=1):
            dyn = _dyn(tag=tag, dispatch=d, iq_leave=leave, issue=-1,
                       commit=-1)
            for cycle in range(d, leave):
                b = cycle // L
                online[b] = online.get(b, 0) + acct.iq_bits_pred(dyn)
            acct.on_resolved(dyn)
        total = L * (max(leave for _, leave in spans) + L - 1) // L
        acct.close(max(total, L))
        denom = acct.capacity_bits(Structure.IQ) * L
        series = acct.interval_avf(Structure.IQ)
        for i, v in enumerate(series):
            assert v == pytest.approx(online.get(i, 0) / denom)

    @settings(max_examples=25, deadline=None)
    @given(_in_interval_spans(), st.data())
    def test_squashes_diverge_by_their_predicted_bits(self, spans, data):
        """Wrong-path squashes are invisible to the online counter but
        contribute zero oracle bits, so online - oracle must equal
        exactly the squashed instructions' predicted bit-cycles."""
        acct = AVFAccount(MachineConfig(), interval_cycles=L)
        squashed = [data.draw(st.booleans()) for _ in spans]
        online_total = 0
        squashed_total = 0
        for tag, ((d, leave), sq) in enumerate(zip(spans, squashed), start=1):
            state = DynState.SQUASHED if sq else DynState.COMMITTED
            dyn = _dyn(tag=tag, dispatch=d, iq_leave=leave, issue=-1,
                       commit=-1, state=state)
            contrib = acct.iq_bits_pred(dyn) * (leave - d)
            online_total += contrib
            if sq:
                squashed_total += contrib
            acct.on_resolved(dyn)
        acct.close(L)
        oracle_total = acct.overall_avf(Structure.IQ) * (
            acct.capacity_bits(Structure.IQ) * acct.total_cycles
        )
        assert online_total - oracle_total == pytest.approx(squashed_total)


# ----------------------------------------------------------------------
# Drift gate
# ----------------------------------------------------------------------
class TestDriftGate:
    def _history(self, tmp_path, values_list):
        path = str(tmp_path / "BENCH_reliability.json")
        for values in values_list:
            record_reliability(path, values, context={"test": True})
        return load_history(path)

    def test_empty_history_all_new_and_passes(self):
        report = compare_reliability({}, {"baseline_iq_avf": 0.2})
        assert report.ok
        assert report.cases[0].status == STATUS_NEW
        assert report.cases[0].drift is None

    def test_within_band_passes(self, tmp_path):
        hist = self._history(tmp_path, [{"baseline_iq_avf": 0.20}] * 3)
        report = compare_reliability(
            hist, {"baseline_iq_avf": 0.207}, tolerance=0.05
        )
        assert report.ok and report.cases[0].status == STATUS_OK

    def test_drift_is_two_sided(self, tmp_path):
        hist = self._history(tmp_path, [{"avf_reduction": 0.40}] * 3)
        for current in (0.30, 0.50):  # both directions are suspicious
            report = compare_reliability(
                hist, {"avf_reduction": current}, tolerance=0.05
            )
            assert not report.ok
            assert report.cases[0].status == STATUS_DRIFT
        assert "FAIL" in report.format()

    def test_baseline_is_median_of_window(self, tmp_path):
        values = [0.10, 0.20, 0.30, 0.40, 0.50, 0.60]
        hist = self._history(tmp_path, [{"x": v} for v in values])
        # window 5 -> entries 0.20..0.60 -> median 0.40.
        assert baseline_value(hist, "x", window=5) == pytest.approx(0.40)
        assert baseline_value(hist, "x", window=2) == pytest.approx(0.55)
        assert baseline_value(hist, "missing") is None
        with pytest.raises(ValueError):
            baseline_value(hist, "x", window=0)

    def test_nan_current_is_invalid(self, tmp_path):
        hist = self._history(tmp_path, [{"x": 0.2}])
        report = compare_reliability(hist, {"x": float("nan")})
        assert not report.ok
        assert report.cases[0].status == STATUS_INVALID

    def test_record_wraps_values(self, tmp_path):
        path = str(tmp_path / "hist.json")
        entry = record_reliability(path, {"baseline_iq_avf": 0.25},
                                   context={"mix": "MEM-A"})
        assert entry["kind"] == KIND_RELIABILITY
        assert entry["results"]["baseline_iq_avf"] == {"value": 0.25}
        loaded = entries_of_kind(load_history(path), KIND_RELIABILITY)
        assert len(loaded) == 1

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_reliability({}, {"x": 1.0}, tolerance=-0.1)

    def test_headline_numbers_smoke(self):
        from repro.harness.runner import BenchScale

        scale = BenchScale(
            max_cycles=3_000, warmup_cycles=600, interval_cycles=1_000,
            ace_window=1_000, profile_instructions=10_000,
            profile_window=2_000,
        )
        numbers = headline_numbers(scale)
        assert set(numbers) == {
            "baseline_iq_avf", "visa_dvm_iq_avf", "avf_reduction",
            "baseline_ipc", "visa_dvm_ipc",
        }
        assert numbers["baseline_iq_avf"] > 0
        assert numbers["avf_reduction"] <= 1.0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestAvfCli:
    def test_compare_against_saved_results(self, tmp_path, capsys):
        hist = tmp_path / "BENCH_reliability.json"
        record_reliability(str(hist), {"baseline_iq_avf": 0.2},
                           context={})
        saved = tmp_path / "current.json"
        saved.write_text(json.dumps(
            {"results": {"baseline_iq_avf": {"value": 0.201}}}
        ))
        rc = main(["avf", "compare", "--history", str(hist),
                   "--results", str(saved), "--tolerance", "0.05"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare_detects_drift(self, tmp_path, capsys):
        hist = tmp_path / "BENCH_reliability.json"
        record_reliability(str(hist), {"baseline_iq_avf": 0.2}, context={})
        saved = tmp_path / "current.json"
        saved.write_text(json.dumps({"results": {"baseline_iq_avf": 0.4}}))
        rc = main(["avf", "compare", "--history", str(hist),
                   "--results", str(saved)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_malformed_history_is_usage_error(self, tmp_path):
        hist = tmp_path / "broken.json"
        hist.write_text("{not json")
        saved = tmp_path / "current.json"
        saved.write_text(json.dumps({"results": {"x": 1.0}}))
        rc = main(["avf", "compare", "--history", str(hist),
                   "--results", str(saved)])
        assert rc == 2

    def test_run_appends_history_entry(self, tmp_path, capsys):
        hist = tmp_path / "BENCH_reliability.json"
        rc = main(["avf", "run", "--cycles", "3000",
                   "--history", str(hist)])
        assert rc == 0
        assert "appended" in capsys.readouterr().out
        (entry,) = load_history(str(hist))["entries"]
        assert entry["kind"] == KIND_RELIABILITY
        assert entry["results"]["baseline_iq_avf"]["value"] > 0

    def test_report_json_and_trace(self, tmp_path, capsys):
        from repro.perf.chrome_trace import read_trace, validate_trace

        out = tmp_path / "report.json"
        trace = tmp_path / "trace.json"
        rc = main(["avf", "report", "--mix", "MEM-A", "--cycles", "3000",
                   "--dvm", "0.5", "--json", "-o", str(out),
                   "--trace-out", str(trace)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["attributions"] > 0
        assert doc["oracle_overall_avf"]["iq"] > 0
        counts = validate_trace(read_trace(str(trace)))
        assert counts.get("C", 0) > 0

    def test_report_text_to_stdout(self, capsys):
        rc = main(["avf", "report", "--mix", "CPU-A", "--cycles", "3000"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "Vulnerability report" in text
        assert "heatmap" in text
