"""Gshare direction predictor, BTB and RAS."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BranchPredictorConfig
from repro.frontend.branch_predictor import BranchPredictor


def make_bp(threads=1, **kw):
    return BranchPredictor(BranchPredictorConfig(**kw), threads)


class TestDirection:
    def test_initial_prediction_weakly_taken(self):
        bp = make_bp()
        taken, _ = bp.predict_direction(0x1000, 0)
        assert taken is True

    def test_learns_not_taken(self):
        bp = make_bp()
        for _ in range(4):
            pred, idx = bp.predict_direction(0x1000, 0)
            bp.update_direction(0x1000, 0, taken=False, predicted=pred, idx=idx)
        taken, _ = bp.predict_direction(0x1000, 0)
        assert taken is False

    def test_saturating_counter_hysteresis(self):
        bp = make_bp()
        # Drive to strongly taken, a single not-taken shouldn't flip it.
        for _ in range(4):
            pred, idx = bp.predict_direction(0x1000, 0)
            bp.update_direction(0x1000, 0, True, pred, idx)
        pred, idx = bp.predict_direction(0x1000, 0)
        bp.update_direction(0x1000, 0, False, pred, idx)
        taken, _ = bp.predict_direction(0x1000, 0)
        assert taken is True

    def test_deterministic_branch_converges(self):
        bp = make_bp()
        correct = 0
        for i in range(200):
            pred, idx = bp.predict_direction(0x2000, 0)
            bp.update_direction(0x2000, 0, False, pred, idx)
            correct += pred is False
        assert correct >= 190  # only initial counters mispredict

    def test_history_separates_patterns(self):
        # Alternating pattern is perfectly predictable with history.
        bp = make_bp()
        outcomes = [bool(i % 2) for i in range(400)]
        correct = 0
        for i, t in enumerate(outcomes):
            pred, idx = bp.predict_direction(0x3000, 0)
            bp.update_direction(0x3000, 0, t, pred, idx)
            if i >= 100:
                correct += pred is t
        assert correct / 300 > 0.95

    def test_per_thread_history_isolated(self):
        bp = make_bp(threads=2)
        for _ in range(50):
            p0, i0 = bp.predict_direction(0x1000, 0)
            bp.update_direction(0x1000, 0, True, p0, i0)
        h0, h1 = bp._hist[0], bp._hist[1]
        assert h0 != 0
        assert h1 == 0

    def test_accuracy_stat(self):
        bp = make_bp()
        pred, idx = bp.predict_direction(0x1000, 0)
        bp.update_direction(0x1000, 0, pred, pred, idx)
        bp.update_direction(0x1000, 0, not pred, pred, idx)
        assert bp.stats.direction_lookups == 2
        assert bp.stats.direction_correct == 1
        assert bp.stats.direction_accuracy == 0.5


class TestBTB:
    def test_miss_returns_none(self):
        bp = make_bp()
        assert bp.btb_lookup(0x1000) is None

    def test_install_and_hit(self):
        bp = make_bp()
        bp.btb_update(0x1000, 42)
        assert bp.btb_lookup(0x1000) == 42

    def test_update_overwrites(self):
        bp = make_bp()
        bp.btb_update(0x1000, 42)
        bp.btb_update(0x1000, 43)
        assert bp.btb_lookup(0x1000) == 43

    def test_associativity_eviction(self):
        bp = make_bp(btb_entries=4, btb_assoc=4)  # one set
        for i in range(5):
            bp.btb_update(0x1000 + i * 4, i)
        assert bp.btb_lookup(0x1000) is None  # LRU evicted
        assert bp.btb_lookup(0x1000 + 4 * 4) == 4

    def test_lru_refresh_on_lookup(self):
        bp = make_bp(btb_entries=2, btb_assoc=2)
        bp.btb_update(0x1000, 1)
        bp.btb_update(0x1000 + 2 * 4 * 1, 2)  # same set (1 set only)
        bp.btb_lookup(0x1000)  # refresh
        bp.btb_update(0x1000 + 4 * 4, 3)  # evicts entry 2
        assert bp.btb_lookup(0x1000) == 1

    def test_hit_stats(self):
        bp = make_bp()
        bp.btb_lookup(0x1000)
        bp.btb_update(0x1000, 7)
        bp.btb_lookup(0x1000)
        assert bp.stats.btb_lookups == 2
        assert bp.stats.btb_hits == 1


class TestRAS:
    def test_push_pop_lifo(self):
        bp = make_bp()
        bp.ras_push(0, 10)
        bp.ras_push(0, 20)
        assert bp.ras_pop(0) == 20
        assert bp.ras_pop(0) == 10

    def test_underflow_returns_none(self):
        bp = make_bp()
        assert bp.ras_pop(0) is None

    def test_overflow_drops_oldest(self):
        bp = make_bp(ras_entries=2)
        bp.ras_push(0, 1)
        bp.ras_push(0, 2)
        bp.ras_push(0, 3)
        assert bp.ras_pop(0) == 3
        assert bp.ras_pop(0) == 2
        assert bp.ras_pop(0) is None

    def test_per_thread_stacks(self):
        bp = make_bp(threads=2)
        bp.ras_push(0, 1)
        assert bp.ras_pop(1) is None
        assert bp.ras_pop(0) == 1


class TestReset:
    def test_reset_clears_everything(self):
        bp = make_bp()
        pred, idx = bp.predict_direction(0x1000, 0)
        bp.update_direction(0x1000, 0, False, pred, idx)
        bp.btb_update(0x1000, 5)
        bp.ras_push(0, 9)
        bp.reset()
        assert bp.btb_lookup(0x1000) is None
        assert bp.ras_pop(0) is None
        assert bp.stats.direction_lookups == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_property_stats_consistent(outcomes):
    bp = make_bp()
    for t in outcomes:
        pred, idx = bp.predict_direction(0x1000, 0)
        bp.update_direction(0x1000, 0, t, pred, idx)
    assert bp.stats.direction_lookups == len(outcomes)
    assert 0 <= bp.stats.direction_correct <= len(outcomes)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1 << 16), st.integers(0, 63)), max_size=200))
def test_property_btb_lookup_returns_last_installed(pairs):
    bp = make_bp()
    last = {}
    for pc, target in pairs:
        bp.btb_update(pc, target)
        last[pc] = target
        # The just-installed entry is always MRU, hence resident.
        assert bp.btb_lookup(pc) == target
