"""Offline PC-based ACE profiling (Section 2.1 / Table 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.generator import generate_program
from repro.reliability.profiling import (
    ProfileResult,
    apply_profile,
    profile_and_apply,
    profile_program,
)


@pytest.fixture(scope="module")
def gcc_profile():
    program = generate_program("gcc", seed=21)
    return program, profile_program(program, n_instructions=20_000, window=5_000)


class TestProfileRun:
    def test_covers_executed_pcs(self, gcc_profile):
        program, prof = gcc_profile
        assert len(prof.pc_table) > 100

    def test_accuracy_in_range(self, gcc_profile):
        _, prof = gcc_profile
        assert 0.8 < prof.accuracy <= 1.0

    def test_ace_fraction_plausible(self, gcc_profile):
        _, prof = gcc_profile
        assert 0.3 < prof.ace_fraction < 0.95

    def test_deterministic(self):
        p1 = generate_program("gap", seed=5)
        p2 = generate_program("gap", seed=5)
        r1 = profile_program(p1, n_instructions=5_000, window=1_000)
        r2 = profile_program(p2, n_instructions=5_000, window=1_000)
        assert r1.pc_table == r2.pc_table
        assert r1.accuracy == r2.accuracy

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            profile_program(generate_program("gap", seed=5), n_instructions=0)


class TestFalsePositiveOnly:
    def test_no_false_negatives(self, gcc_profile):
        """A PC with any ACE instance must be tagged ACE (the paper's
        conservative guarantee: false positives only)."""
        _, prof = gcc_profile
        for pc, n_ace in prof.ace_instances.items():
            if n_ace > 0:
                assert prof.pc_table[pc] is True

    def test_unseen_pc_defaults_ace(self, gcc_profile):
        _, prof = gcc_profile
        assert prof.predict(0xDEAD0000) is True


class TestAccuracyMath:
    def test_accuracy_from_counts(self):
        r = ProfileResult(program_name="x", instructions=10)
        r.pc_table = {1: True, 2: False}
        r.ace_instances = {1: 6}
        r.unace_instances = {1: 2, 2: 2}
        # pc1 predicted ACE: 6 of 8 correct; pc2 predicted unACE: 2 of 2.
        assert r.accuracy == pytest.approx(8 / 10)

    def test_empty_profile_zero(self):
        r = ProfileResult(program_name="x", instructions=0)
        assert r.accuracy == 0.0
        assert r.ace_fraction == 0.0
        assert r.static_ace_fraction == 0.0


class TestApply:
    def test_apply_sets_hints(self, gcc_profile):
        program, prof = gcc_profile
        n_unace = apply_profile(program, prof)
        assert n_unace > 0
        tagged = [st for st in program.all_insts() if not st.ace_hint]
        assert len(tagged) == n_unace

    def test_profile_and_apply_roundtrip(self):
        program = generate_program("twolf", seed=9)
        prof = profile_and_apply(program, n_instructions=10_000, window=2_000)
        for st in program.all_insts():
            assert st.ace_hint == prof.predict(st.pc)


class TestPaperShape:
    def test_mesa_worse_than_perlbmk(self):
        """Table 1's headline contrast must reproduce."""
        mesa = profile_program(generate_program("mesa", seed=3), 20_000, 5_000)
        perl = profile_program(generate_program("perlbmk", seed=3), 20_000, 5_000)
        assert mesa.accuracy < perl.accuracy

    def test_average_accuracy_band(self):
        """Average over a sample of benchmarks lands near the paper's
        93.7% (we accept 88-100%)."""
        names = ("gcc", "swim", "mesa", "vpr", "perlbmk", "mcf")
        accs = [
            profile_program(generate_program(n, seed=3), 15_000, 4_000).accuracy
            for n in names
        ]
        avg = sum(accs) / len(accs)
        assert 0.88 <= avg <= 1.0


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(["gcc", "mcf", "swim", "mesa"]), st.integers(0, 50))
def test_property_accuracy_bounded(name, seed):
    prof = profile_program(generate_program(name, seed=seed), 3_000, 1_000)
    assert 0.0 <= prof.accuracy <= 1.0
    assert 0.0 <= prof.ace_fraction <= 1.0
