"""Prometheus exposition, status documents, and the metrics HTTP server."""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.telemetry.export import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsServer,
    mangle_metric_name,
    parse_serve_spec,
    prometheus_text,
    read_status,
    render_status,
    status_path_for,
    watch_status,
    write_status,
)
from repro.telemetry.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# Name mangling and text rendering
# ----------------------------------------------------------------------
class TestPrometheusText:
    def test_name_mangling(self):
        assert mangle_metric_name("relay.dropped") == "relay_dropped"
        assert mangle_metric_name("worker.w0.rss-kb") == "worker_w0_rss_kb"
        assert mangle_metric_name("ns:sub.total") == "ns:sub_total"
        # A leading digit is invalid in Prometheus names.
        assert mangle_metric_name("2nd.pass") == "_2nd_pass"

    def test_counter_and_gauge_with_help_and_type(self):
        reg = MetricsRegistry()
        reg.counter("relay.events", help="Events relayed.").inc(3)
        reg.gauge("fleet.workers").set(2)
        text = prometheus_text(reg)
        assert "# HELP relay_events Events relayed.\n" in text
        assert "# TYPE relay_events counter\n" in text
        assert "relay_events 3\n" in text
        # No help= registered: no HELP line, but always a TYPE line.
        assert "# HELP fleet_workers" not in text
        assert "# TYPE fleet_workers gauge\nfleet_workers 2" in text

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("odd", help="line one\nback\\slash")
        assert "# HELP odd line one\\nback\\\\slash\n" in prometheus_text(reg)

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(0.1, 0.5, 1.0), help="Latency.")
        for v in (0.05, 0.3, 0.4, 2.0):
            hist.observe(v)
        text = prometheus_text(reg)
        assert "# TYPE lat histogram\n" in text
        assert 'lat_bucket{le="0.1"} 1\n' in text
        assert 'lat_bucket{le="0.5"} 3\n' in text  # cumulative, not per-bucket
        assert 'lat_bucket{le="1"} 3\n' in text
        assert 'lat_bucket{le="+Inf"} 4\n' in text
        assert "lat_sum 2.75\n" in text
        assert "lat_count 4" in text


# ----------------------------------------------------------------------
# Status documents
# ----------------------------------------------------------------------
def _doc(**over):
    doc = {
        "schema": 1,
        "state": "running",
        "kind": "sweep",
        "run_id": "ab12cd34ef56",
        "config_hash": "ab12cd34ef56" + "0" * 52,
        "jobs": 2,
        "started": 100.0,
        "updated": 109.0,
        "points": {"total": 4, "done": 2, "retry": 1},
        "workers": [
            {
                "worker": 0, "pid": 41, "state": "running",
                "point": "scheduler=visa", "cycles": 120_000,
                "cycles_per_sec": 52_000.0, "rss_kb": 81_920.0,
                "point_wall_s": 2.31, "heartbeat_age_s": 0.12, "beats": 9,
            },
            {
                "worker": 1, "pid": 42, "state": "idle", "point": None,
                "cycles": 0, "cycles_per_sec": 0.0, "rss_kb": 40_960.0,
                "point_wall_s": 0.0, "heartbeat_age_s": 1.02, "beats": 4,
            },
        ],
        "metrics": {
            "relay.events": 64, "relay.heartbeats": 13, "relay.dropped": 0,
            "worker.w0.online_iq_avf": 0.312, "worker.w0.online_rob_avf": 0.207,
        },
        "checkpoint": "reports/sweep-ab12cd34ef56.jsonl",
    }
    doc.update(over)
    return doc


class TestStatusDocuments:
    def test_status_path_for(self):
        assert status_path_for("a/sweep-x.jsonl") == "a/sweep-x.status.json"
        assert status_path_for("a/rows.json") == "a/rows.status.json"
        assert status_path_for("a/raw") == "a/raw.status.json"
        # Already a status doc: passes through (monitor accepts either).
        assert status_path_for("a/sweep-x.status.json") == "a/sweep-x.status.json"

    def test_write_read_roundtrip_accepts_checkpoint_path(self, tmp_path):
        ck = str(tmp_path / "sweep-x.jsonl")
        write_status(status_path_for(ck), _doc())
        assert read_status(ck) == _doc()
        assert read_status(status_path_for(ck)) == _doc()

    def test_write_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "x.status.json")
        write_status(path, _doc(state="running"))
        write_status(path, _doc(state="finished"))
        assert read_status(path)["state"] == "finished"
        assert not (tmp_path / "x.status.json.tmp").exists()

    def test_read_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.status.json"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            read_status(str(path))

    def test_render_status_fleet_view(self):
        text = render_status(_doc(), now=110.0)
        head = text.splitlines()[0]
        assert "sweep ab12cd34ef56 [running]" in head
        assert "2/4 points" in head and "jobs=2" in head
        assert "updated 1.0s ago" in head
        assert "done=2" in text and "retry=1" in text
        assert "w0  pid 41  [running]  scheduler=visa" in text
        assert "120000 cyc @ 52000/s" in text
        assert "w1  pid 42  [   idle]  -" in text
        assert "w0.online_iq_avf=0.312" in text
        assert "events=64  heartbeats=13  dropped=0" in text
        assert "checkpoint: reports/sweep-ab12cd34ef56.jsonl" in text

    def test_watch_status_once_and_until_finished(self, tmp_path):
        path = str(tmp_path / "w.status.json")
        write_status(path, _doc(state="running"))
        out = io.StringIO()
        assert watch_status(path, once=True, stream=out) == 0
        assert "[running]" in out.getvalue()
        # state=finished exits the watch loop without --once.
        write_status(path, _doc(state="finished"))
        out = io.StringIO()
        assert watch_status(path, interval_s=0.01, stream=out) == 0
        assert "[finished]" in out.getvalue()


# ----------------------------------------------------------------------
# --serve parsing and the HTTP server
# ----------------------------------------------------------------------
class TestServe:
    def test_parse_serve_spec(self):
        assert parse_serve_spec(":9099") == ("127.0.0.1", 9099)
        assert parse_serve_spec("9099") == ("127.0.0.1", 9099)
        assert parse_serve_spec("0.0.0.0:80") == ("0.0.0.0", 80)
        with pytest.raises(ValueError, match="port must be an integer"):
            parse_serve_spec("localhost:http")
        with pytest.raises(ValueError, match="port out of range"):
            parse_serve_spec(":70000")

    def test_server_serves_metrics_and_status(self):
        reg = MetricsRegistry()
        reg.counter("relay.events", help="Events relayed.").inc(7)
        server = MetricsServer(
            reg, lambda: _doc(), host="127.0.0.1", port=0
        ).start()
        try:
            base = f"http://{server.host}:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                body = resp.read().decode()
            assert "relay_events 7" in body
            with urllib.request.urlopen(f"{base}/status") as resp:
                assert json.load(resp) == _doc()
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/nope")
            assert err.value.code == 404
        finally:
            server.close()

    def test_broken_status_provider_returns_503_not_crash(self):
        def boom():
            raise RuntimeError("registry mid-mutation")

        reg = MetricsRegistry()
        server = MetricsServer(reg, boom, host="127.0.0.1", port=0).start()
        try:
            base = f"http://{server.host}:{server.port}"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/status")
            assert err.value.code == 503
            # The serve thread survives: /metrics still answers.
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                assert resp.status == 200
        finally:
            server.close()
