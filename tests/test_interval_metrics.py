"""Interval-trace analysis metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.interval import (
    EmergencyProfile,
    autocorrelation,
    emergency_profile,
    emergency_runs,
    trace_stats,
)


class TestTraceStats:
    def test_basic(self):
        s = trace_stats([0.1, 0.2, 0.3])
        assert s.n == 3
        assert s.mean == pytest.approx(0.2)
        assert s.minimum == 0.1 and s.maximum == 0.3

    def test_cv(self):
        assert trace_stats([1.0, 1.0]).cv == 0.0
        assert trace_stats([0.5, 1.5]).cv > 0

    def test_cv_zero_mean_is_nan(self):
        assert math.isnan(trace_stats([0.0, 0.0]).cv)

    def test_dynamic_range(self):
        assert trace_stats([0.1, 0.4]).dynamic_range == pytest.approx(4.0)

    def test_dynamic_range_zero_floor_is_nan(self):
        assert math.isnan(trace_stats([0.0, 1.0]).dynamic_range)

    def test_empty_is_nan(self):
        s = trace_stats([])
        assert s.n == 0
        for value in (s.mean, s.std, s.minimum, s.maximum, s.cv, s.dynamic_range):
            assert math.isnan(value)

    def test_ddof(self):
        pop = trace_stats([0.0, 1.0])
        sample = trace_stats([0.0, 1.0], ddof=1)
        assert pop.std == pytest.approx(0.5)
        assert sample.std == pytest.approx(math.sqrt(0.5))
        with pytest.raises(ValueError):
            trace_stats([1.0], ddof=1)


class TestAutocorrelation:
    def test_persistent_phases_high(self):
        trace = [0.1] * 10 + [0.9] * 10 + [0.1] * 10 + [0.9] * 10
        assert autocorrelation(trace, lag=1) > 0.7

    def test_alternating_negative(self):
        trace = [0.1, 0.9] * 10
        assert autocorrelation(trace, lag=1) < -0.7

    def test_constant_zero(self):
        assert autocorrelation([0.5] * 10, lag=1) == 0.0

    def test_short_trace(self):
        assert autocorrelation([1.0, 2.0], lag=3) == 0.0

    def test_rejects_bad_lag(self):
        with pytest.raises(ValueError):
            autocorrelation([1, 2, 3], lag=0)


class TestEmergencyRuns:
    def test_runs_detected(self):
        assert emergency_runs([0, 1, 1, 0, 1, 0, 1, 1, 1], target=0.5) == [2, 1, 3]

    def test_trailing_run(self):
        assert emergency_runs([1, 1], target=0.5) == [2]

    def test_none(self):
        assert emergency_runs([0.1, 0.2], target=0.5) == []


class TestEmergencyProfile:
    def test_profile(self):
        p = emergency_profile([0, 1, 1, 0, 1, 1, 1, 0], target=0.5)
        assert p.pve == pytest.approx(5 / 8)
        assert p.episodes == 2
        assert p.mean_run == pytest.approx(2.5)
        assert p.max_run == 3
        assert p.bursty

    def test_scattered_not_bursty(self):
        p = emergency_profile([0, 1, 0, 1, 0, 1, 0], target=0.5)
        assert not p.bursty

    def test_empty(self):
        p = emergency_profile([], target=0.5)
        assert p.pve == 0.0 and p.episodes == 0

    def test_integrates_with_simulation_trace(self):
        from repro.harness.runner import BenchScale, clear_caches, run_sim

        clear_caches()
        scale = BenchScale(
            max_cycles=4_000, warmup_cycles=1_000, interval_cycles=500,
            ace_window=1_000, profile_instructions=8_000, profile_window=2_000,
        )
        res = run_sim("MEM-A", scale)
        prof = emergency_profile(res.warm_iq_interval_avf, 0.5 * res.max_iq_avf)
        assert prof.pve == pytest.approx(res.pve(0.5 * res.max_iq_avf))
        clear_caches()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), max_size=60),
    st.floats(min_value=0, max_value=1),
)
def test_property_runs_sum_to_pve(trace, target):
    prof = emergency_profile(trace, target)
    runs = emergency_runs(trace, target)
    assert sum(runs) == round(prof.pve * len(trace)) if trace else True
    assert 0 <= prof.pve <= 1
