"""Telemetry layer: event bus, metrics registry, provenance, profiler,
timeline recording, and the pipeline wiring (stage-order property)."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ReliabilityConfig, SimulationConfig
from repro.core.pipeline import SMTPipeline
from repro.reliability.dvm import DVMController
from repro.reliability.resource_alloc import L2MissSensitiveAllocation
from repro.telemetry import (
    DECISION_TOPICS,
    STAGE_ORDER,
    TOPICS,
    EventBus,
    MetricsRegistry,
    RunManifest,
    StageProfiler,
    TimelineRecorder,
    collect_manifest,
    config_digest,
    get_topic,
    read_jsonl,
    render_timeline,
    timeline_json,
)
from repro.telemetry.topics import (
    TOPIC_DVM_RATIO,
    TOPIC_DVM_SAMPLE,
    TOPIC_DVM_TRIGGER,
    TOPIC_INTERVAL_CLOSE,
    TOPIC_IQL_CAP,
)
from repro.workloads import get_mix


def make_pipe(cycles=1_200, mix="MEM-A", *, dvm_target=None, dispatch=None,
              seed=3, telemetry=True):
    rel = ReliabilityConfig(interval_cycles=400, ace_window=800)
    sim = SimulationConfig(
        max_cycles=cycles, warmup_cycles=0, seed=seed,
        bp_warmup_instructions=2_000, reliability=rel,
    )
    dvm = DVMController(dvm_target, config=rel) if dvm_target is not None else None
    return SMTPipeline(
        get_mix(mix).programs(seed=seed), sim=sim, dvm=dvm,
        dispatch_policy=dispatch, telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# EventBus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_emit_without_subscribers_is_noop(self):
        bus = EventBus()
        # No validation on the fast path: even a wrong payload returns.
        bus.emit(TOPIC_DVM_SAMPLE, nonsense=1)  # lint: disable=event-schema
        assert not bus.wants(TOPIC_DVM_SAMPLE)

    def test_subscribe_and_emit(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TOPIC_DVM_SAMPLE, seen.append)
        bus.cycle, bus.stage = 42, "tick"
        bus.emit(TOPIC_DVM_SAMPLE, estimate=0.3, triggered=True, wq_ratio=4.0)
        assert len(seen) == 1
        ev = seen[0]
        assert ev.topic == "dvm.sample"
        assert ev.cycle == 42 and ev.stage == "tick"
        assert ev["estimate"] == 0.3 and ev["triggered"] is True

    def test_schema_validated_on_delivery(self):
        bus = EventBus()
        bus.subscribe(TOPIC_DVM_SAMPLE, lambda e: None)
        with pytest.raises(ValueError, match="does not match schema"):
            bus.emit(TOPIC_DVM_SAMPLE, estimate=0.3)  # missing fields  # lint: disable=event-schema
        with pytest.raises(ValueError, match="unexpected"):
            bus.emit(  # lint: disable=event-schema
                TOPIC_DVM_SAMPLE,
                estimate=0.3, triggered=False, wq_ratio=1.0, bogus=1,
            )

    def test_unsubscribe_restores_fast_path(self):
        bus = EventBus()
        sub = bus.subscribe(TOPIC_DVM_SAMPLE, lambda e: None)
        assert bus.wants(TOPIC_DVM_SAMPLE)
        v = bus.version
        sub.close()
        assert not bus.wants(TOPIC_DVM_SAMPLE)
        assert bus.version > v  # cached wants() flags must refresh
        sub.close()  # idempotent

    def test_wildcard_subscription_sees_everything(self):
        bus = EventBus()
        seen = []
        with bus.subscribe_all(lambda e: seen.append(e.topic)):
            bus.emit(TOPIC_DVM_TRIGGER, reason="sample", estimate=0.5)
            bus.emit(TOPIC_IQL_CAP, old_limit=96, new_limit=48, ipc=1.0,
                     avg_ready_queue_len=2.0)
        bus.emit(TOPIC_DVM_TRIGGER, reason="sample", estimate=0.5)  # detached
        assert seen == ["dvm.trigger", "iql.cap"]

    def test_predicate_filters(self):
        bus = EventBus()
        seen = []
        bus.subscribe(
            TOPIC_DVM_SAMPLE, seen.append, predicate=lambda e: e["triggered"]
        )
        bus.emit(TOPIC_DVM_SAMPLE, estimate=0.1, triggered=False, wq_ratio=1.0)
        bus.emit(TOPIC_DVM_SAMPLE, estimate=0.9, triggered=True, wq_ratio=1.0)
        assert len(seen) == 1 and seen[0]["triggered"]

    def test_multi_topic_subscription(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe(DECISION_TOPICS, lambda e: seen.append(e.topic))
        bus.emit(TOPIC_DVM_TRIGGER, reason="l2_miss", estimate=0.0)
        bus.emit(TOPIC_DVM_RATIO, old_ratio=4.0, new_ratio=2.0, direction="decrease")
        assert seen == ["dvm.trigger", "dvm.ratio"]
        assert bus.subscriber_count(TOPIC_DVM_TRIGGER) == 1
        sub.close()
        assert bus.subscriber_count() == 0

    def test_topic_catalog_consistency(self):
        for name, topic in TOPICS.items():
            assert topic.name == name
            assert get_topic(name) is topic
            # auto-stamped fields never appear in a schema
            assert "cycle" not in topic.fields and "stage" not in topic.fields
        with pytest.raises(KeyError):
            get_topic("no.such.topic")


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("pipeline.commit.total")
        c.inc()
        c.inc(5)
        assert c.get() == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_child_scoping(self):
        reg = MetricsRegistry()
        dvm = reg.child("dvm")
        dvm.counter("samples").inc(3)
        dvm.child("ratio").gauge("current").set(4.0)
        assert reg.names("dvm") == ["dvm.ratio.current", "dvm.samples"]
        assert dvm.snapshot() == {"dvm.ratio.current": 4.0, "dvm.samples": 3}

    def test_histogram_buckets_and_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("avf", buckets=(0.5, 1.0))
        for v in (0.2, 0.4, 0.8, 2.0):
            h.observe(v)
        out = h.get()
        assert out["count"] == 4 and out["le_0.5"] == 2
        assert out["le_1"] == 1 and out["le_inf"] == 1
        assert out["min"] == 0.2 and out["max"] == 2.0
        assert out["mean"] == pytest.approx(0.85)
        assert math.isnan(reg.histogram("empty").mean)

    def test_snapshot_diff(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(10)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        before = reg.snapshot()
        reg.counter("n").inc(7)
        reg.histogram("h").observe(0.25)
        delta = MetricsRegistry.diff(before, reg.snapshot())
        assert delta["n"] == 7
        assert delta["h"]["count"] == 1.0
        assert delta["h"]["sum"] == pytest.approx(0.25)

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", ".x", "x."):
            with pytest.raises(ValueError):
                reg.counter(bad)
        with pytest.raises(ValueError):
            reg.child(".bad")

    def test_streaming_histogram_power_of_two_buckets(self):
        from repro.telemetry.metrics import StreamingHistogram

        h = StreamingHistogram()
        for v in (0, 1, 2, 3, 1000):
            h.observe(v)
        out = h.get()
        assert out["count"] == 5 and out["min"] == 0 and out["max"] == 1000
        assert out["le_0"] == 1  # bucket 0 holds exactly 0
        assert out["le_1"] == 1  # [1, 1]
        assert out["le_3"] == 2  # [2, 3]
        assert out["le_1023"] == 1
        assert h.mean == pytest.approx(1006 / 5)

    def test_streaming_histogram_quantiles_approximate(self):
        from repro.telemetry.metrics import StreamingHistogram

        h = StreamingHistogram()
        for v in range(1, 101):
            h.observe(v)
        # p50 of 1..100 is ~50; the geometric bucket midpoint must land
        # within the holding bucket's [32, 63] range.
        assert 32 <= h.quantile(0.5) <= 63
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_streaming_histogram_edge_cases(self):
        from repro.telemetry.metrics import StreamingHistogram

        h = StreamingHistogram()
        assert math.isnan(h.mean) and math.isnan(h.quantile(0.5))
        with pytest.raises(ValueError):
            h.observe(-1)
        h.observe(0)
        assert h.quantile(0.5) == 0.0

    def test_help_metadata_registration_and_upgrade(self):
        reg = MetricsRegistry()
        c = reg.counter("relay.dropped", help="Events dropped.")
        assert c.help == "Events dropped."
        # Re-registration keeps the existing metric and its help.
        assert reg.counter("relay.dropped") is c
        assert c.help == "Events dropped."
        # A later registration may supply help the first one lacked.
        g = reg.gauge("fleet.workers")
        assert g.help == ""
        reg.gauge("fleet.workers", help="Distinct workers.")
        assert g.help == "Distinct workers."
        assert reg.histogram("lat", help="Latency.").help == "Latency."

    def test_histogram_merge_requires_identical_buckets(self):
        from repro.telemetry.metrics import Histogram

        a = Histogram(buckets=(0.5, 1.0))
        b = Histogram(buckets=(0.25, 1.0))
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)

    def test_histogram_merge_equals_single_stream(self):
        from repro.telemetry.metrics import Histogram

        shard_a, shard_b, whole = (Histogram(buckets=(0.5, 1.0)) for _ in range(3))
        for v in (0.2, 0.8):
            shard_a.observe(v)
            whole.observe(v)
        for v in (0.4, 2.0):
            shard_b.observe(v)
            whole.observe(v)
        shard_a.merge(shard_b)
        assert shard_a.get() == whole.get()

    @settings(max_examples=60, deadline=None)
    @given(
        shards=st.lists(
            st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=30),
            min_size=1,
            max_size=5,
        )
    )
    def test_streaming_merge_of_shards_equals_single_stream(self, shards):
        # Workers each observe a shard of the stream; merging their
        # histograms must be indistinguishable from one observer that
        # saw the concatenated stream.
        from repro.telemetry.metrics import StreamingHistogram

        merged = StreamingHistogram()
        whole = StreamingHistogram()
        for shard in shards:
            part = StreamingHistogram()
            for v in shard:
                part.observe(v)
                whole.observe(v)
            merged.merge(part)
        if whole.count:
            assert merged.get() == whole.get()
            assert merged.quantile(0.5) == whole.quantile(0.5)
        else:
            assert merged.count == 0 and math.isnan(merged.mean)

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False), max_size=40
        ),
        split=st.integers(min_value=0, max_value=40),
    )
    def test_fixed_bucket_merge_of_shards_equals_single_stream(self, values, split):
        from repro.telemetry.metrics import Histogram

        buckets = (0.1, 0.5, 1.0)
        shard_a, shard_b, whole = (Histogram(buckets=buckets) for _ in range(3))
        for v in values[:split]:
            shard_a.observe(v)
        for v in values[split:]:
            shard_b.observe(v)
        for v in values:
            whole.observe(v)
        shard_a.merge(shard_b)
        assert shard_a.counts == whole.counts
        assert shard_a.count == whole.count
        assert shard_a.total == pytest.approx(whole.total)
        if whole.count:
            assert shard_a.minimum == whole.minimum
            assert shard_a.maximum == whole.maximum


# ----------------------------------------------------------------------
# Provenance
# ----------------------------------------------------------------------
class TestProvenance:
    def test_config_digest_is_stable_and_order_free(self):
        a = config_digest({"b": 1, "a": {"y": 2, "x": 3}})
        b = config_digest({"a": {"x": 3, "y": 2}, "b": 1})
        assert a == b and len(a) == 16
        assert config_digest({"b": 2}) != a

    def test_manifest_round_trip(self):
        m = collect_manifest(seed=7, extra={"note": "test"})
        assert m.schema == 1 and m.seed == 7
        assert m.extra == {"note": "test"}
        assert "python" in m.packages
        back = RunManifest.from_dict(json.loads(json.dumps(m.to_dict())))
        assert back == m

    def test_pipeline_result_carries_manifest_and_metrics(self):
        pipe = make_pipe(cycles=600)
        res = pipe.run()
        assert res.manifest is not None
        assert res.manifest.config_hash == config_digest(res.manifest.config)
        assert res.manifest.seed == 3
        assert res.metrics is not None
        assert res.metrics["pipeline.commit.total"] == res.committed
        assert res.metrics["pipeline.cycles"] == res.cycles

    def test_telemetry_off_means_no_manifest(self):
        res = make_pipe(cycles=600, telemetry=False).run()
        assert res.manifest is None


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_shares_sum_to_100(self):
        profiler = StageProfiler()
        pipe = make_pipe(cycles=600)
        pipe.profiler = profiler
        pipe.run()
        prof = profiler.report()
        assert prof.cycles == 600
        assert sum(prof.shares().values()) == pytest.approx(100.0)
        assert set(prof.seconds) == set(STAGE_ORDER)
        assert prof.cycles_per_sec > 0
        assert "cycles/s" in prof.format()

    def test_empty_profile_is_all_zero(self):
        prof = StageProfiler().report()
        assert prof.cycles == 0 and prof.cycles_per_sec == 0.0
        assert all(v == 0.0 for v in prof.shares().values())

    def test_mid_run_report_keeps_wall_window_open(self):
        # Regression: report() used to end_run() without reopening the
        # wall window, so cycles after a mid-run report were profiled
        # against a frozen wall clock (cycles_per_sec inflated, later
        # end_run() a no-op).
        profiler = StageProfiler()
        profiler.start_run()
        profiler.cycle_start()
        profiler.lap("fetch")
        mid = profiler.report()
        assert mid.cycles == 1 and mid.wall_s > 0
        # The run must still be live: more cycles accumulate.
        profiler.cycle_start()
        profiler.lap("fetch")
        profiler.end_run()
        final = profiler.report()
        assert final.cycles == 2
        assert final.wall_s >= mid.wall_s
        assert final.seconds["fetch"] >= mid.seconds["fetch"]

    def test_report_after_end_run_does_not_reopen(self):
        profiler = StageProfiler()
        profiler.start_run()
        profiler.cycle_start()
        profiler.lap("fetch")
        profiler.end_run()
        wall = profiler.report().wall_s
        # A closed run stays closed across repeated reports.
        assert profiler.report().wall_s == wall


# ----------------------------------------------------------------------
# Overhead measurement → BENCH_perf.json persistence (satellite)
# ----------------------------------------------------------------------
class TestOverheadHistory:
    def _fake_report(self):
        from repro.telemetry.overhead import OverheadReport

        return OverheadReport(
            mix="MIX-A", cycles=100, repeats=1, bare_s=0.010, stamped_s=0.0102
        )

    def test_main_appends_history_entry(self, tmp_path, monkeypatch):
        from repro.telemetry import overhead

        monkeypatch.setattr(
            overhead, "measure_overhead", lambda *a, **kw: self._fake_report()
        )
        hist = tmp_path / "BENCH_perf.json"
        rc = overhead.main(["--history", str(hist)])
        assert rc == 0
        doc = json.loads(hist.read_text())
        (entry,) = doc["entries"]
        assert entry["kind"] == "telemetry-overhead"
        assert set(entry["results"]) == {
            "telemetry_bare_loop",
            "telemetry_stamped_loop",
        }
        assert entry["results"]["telemetry_bare_loop"]["best_s"] == pytest.approx(0.010)
        assert entry["context"]["overhead"] == pytest.approx(0.02)
        assert "manifest" in entry

    def test_no_history_flag_skips_write(self, tmp_path, monkeypatch):
        from repro.telemetry import overhead

        monkeypatch.setattr(
            overhead, "measure_overhead", lambda *a, **kw: self._fake_report()
        )
        hist = tmp_path / "BENCH_perf.json"
        rc = overhead.main(["--history", str(hist), "--no-history"])
        assert rc == 0
        assert not hist.exists()

    def test_failure_exit_still_persists(self, tmp_path, monkeypatch):
        from repro.telemetry import overhead

        monkeypatch.setattr(
            overhead, "measure_overhead", lambda *a, **kw: self._fake_report()
        )
        hist = tmp_path / "BENCH_perf.json"
        rc = overhead.main(["--history", str(hist), "--max-overhead", "0.001"])
        assert rc == 1
        assert json.loads(hist.read_text())["entries"]


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------
class TestTimeline:
    @pytest.fixture(scope="class")
    def recorded(self):
        pipe = make_pipe(
            cycles=2_000, dvm_target=0.05,
            dispatch=L2MissSensitiveAllocation(96, t_cache_miss=10, min_limit=8),
        )
        recorder = TimelineRecorder(pipe.bus)
        with recorder:
            result = pipe.run()
        return recorder, result

    def test_decision_kinds_present(self, recorded):
        recorder, _ = recorded
        kinds = recorder.decision_kinds()
        # A two-plus-thread DVM run on a MEM mix must show at least
        # three distinct decision kinds (acceptance criterion).
        assert len(kinds) >= 3
        assert "dvm.trigger" in kinds

    def test_events_carry_stamps(self, recorded):
        recorder, _ = recorded
        assert recorder.events
        for ev in recorder.events:
            assert ev.stage in STAGE_ORDER
            assert ev.cycle >= 0

    def test_render_text(self, recorded):
        recorder, _ = recorded
        text = render_timeline(recorder.events, max_rows=20, chart=True)
        assert "decision timeline" in text
        assert "intervals" in text

    def test_jsonl_round_trip(self, recorded, tmp_path):
        recorder, result = recorded
        path = tmp_path / "timeline.jsonl"
        n = recorder.to_jsonl(str(path), manifest=result.manifest)
        assert n == len(recorder.events)
        manifest, events = read_jsonl(str(path))
        assert manifest == result.manifest
        assert len(events) == n
        assert events[0] == recorder.events[0]

    def test_timeline_json_counts(self, recorded):
        recorder, result = recorded
        doc = timeline_json(recorder.events, result.manifest)
        assert doc["manifest"]["seed"] == 3
        assert sum(doc["topic_counts"].values()) == len(recorder.events)

    def test_limit_drops_and_counts(self):
        pipe = make_pipe(cycles=1_200, dvm_target=0.05)
        recorder = TimelineRecorder(pipe.bus, limit=5)
        with recorder:
            pipe.run()
        assert len(recorder.events) == 5
        assert recorder.dropped > 0


# ----------------------------------------------------------------------
# Pipeline wiring property: within one cycle events arrive in stage
# order, and interval indices increase monotonically.
# ----------------------------------------------------------------------
_STAGE_INDEX = {stage: i for i, stage in enumerate(STAGE_ORDER)}


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=50),
    cycles=st.sampled_from([500, 900, 1_300]),
)
def test_property_stage_order_and_interval_monotonicity(seed, cycles):
    pipe = make_pipe(cycles=cycles, dvm_target=0.05, seed=seed)
    seen = []
    sub = pipe.bus.subscribe_all(
        lambda e: seen.append((e.cycle, e.stage, e.topic, e.payload))
    )
    try:
        pipe.run()
    finally:
        sub.close()
    assert seen, "a DVM run must emit events"
    last_cycle = -1
    last_stage_idx = -1
    interval_indices = []
    for cycle, stage, topic, payload in seen:
        if stage == "":
            # Emitted outside the cycle loop (end-of-run resolution /
            # divergence events); exempt from within-cycle stage order.
            assert topic.startswith("reliability.") or topic == "interval.close"
            continue
        assert stage in _STAGE_INDEX
        if cycle != last_cycle:
            assert cycle > last_cycle, "event cycles must not go backwards"
            last_cycle, last_stage_idx = cycle, -1
        idx = _STAGE_INDEX[stage]
        assert idx >= last_stage_idx, (
            f"stage {stage!r} out of order at cycle {cycle}"
        )
        last_stage_idx = idx
        if topic == TOPIC_INTERVAL_CLOSE.name:
            interval_indices.append(payload["index"])
    assert interval_indices == sorted(set(interval_indices)), (
        "interval indices must be strictly increasing"
    )
