"""Experiment harness: scaling, caching and driver output shapes."""

import dataclasses
import os

import pytest

from repro.harness import experiments
from repro.harness.report import format_table, save_report
from repro.harness.runner import (
    BenchScale,
    clear_caches,
    get_programs,
    mix_harmonic_ipc,
    run_sim,
    single_thread_ipc,
)
from repro.workloads import CATEGORIES

TINY = BenchScale(
    max_cycles=2_500,
    warmup_cycles=500,
    interval_cycles=500,
    ace_window=1_000,
    profile_instructions=8_000,
    profile_window=2_000,
)


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestBenchScale:
    def test_default_groups(self):
        assert BenchScale().groups == ("A",)

    def test_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert BenchScale.from_env().groups == ("A", "B", "C")

    def test_env_cycles(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLES", "9999")
        assert BenchScale.from_env().max_cycles == 9999

    def test_env_cycles_scales_warmup_down(self, monkeypatch):
        # Regression: REPRO_CYCLES=2000 used to keep warmup_cycles=3000,
        # leaving the whole run warm-up and failing config validation
        # with an opaque message.
        monkeypatch.setenv("REPRO_CYCLES", "2000")
        scale = BenchScale.from_env()
        assert scale.max_cycles == 2000
        assert scale.warmup_cycles == 2000 * 3000 // 14000
        scale.sim_config().validate()

    def test_env_cycles_tiny_budget_still_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLES", "10")
        scale = BenchScale.from_env()
        assert 1 <= scale.warmup_cycles < scale.max_cycles
        scale.sim_config().validate()

    def test_env_cycles_large_budget_keeps_default_warmup(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLES", "50000")
        scale = BenchScale.from_env()
        assert scale.max_cycles == 50000
        assert scale.warmup_cycles == BenchScale().warmup_cycles

    def test_env_cycles_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLES", "lots")
        with pytest.raises(ValueError, match="integer cycle count"):
            BenchScale.from_env()

    @pytest.mark.parametrize("raw", ["0", "-5"])
    def test_env_cycles_rejects_nonpositive(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CYCLES", raw)
        with pytest.raises(ValueError, match="must be positive"):
            BenchScale.from_env()

    def test_sim_config_valid(self):
        TINY.sim_config().validate()

    def test_mixes_filtered_by_groups(self):
        assert [m.name for m in TINY.mixes("CPU")] == ["CPU-A"]
        full = dataclasses.replace(TINY, groups=("A", "B", "C"))
        assert len(full.mixes("MEM")) == 3


class TestRunner:
    def test_run_sim_produces_result(self):
        res = run_sim("CPU-A", TINY)
        assert res.committed > 0

    def test_result_cache_hit(self):
        r1 = run_sim("CPU-A", TINY)
        r2 = run_sim("CPU-A", TINY)
        assert r1 is r2

    def test_cache_key_distinguishes_config(self):
        r1 = run_sim("CPU-A", TINY)
        r2 = run_sim("CPU-A", TINY, scheduler="visa")
        assert r1 is not r2

    def test_programs_cached_and_profiled(self):
        p1 = get_programs("CPU-A", TINY)
        p2 = get_programs("CPU-A", TINY)
        assert p1 is p2
        assert any(not st.ace_hint for prog in p1 for st in prog.all_insts())

    def test_unprofiled_programs_all_ace(self):
        progs = get_programs("MEM-A", TINY, profiled=False)
        assert all(st.ace_hint for prog in progs for st in prog.all_insts())

    def test_unknown_dispatch_raises(self):
        with pytest.raises(KeyError):
            run_sim("CPU-A", TINY, dispatch="opt9")

    def test_single_thread_ipc_positive(self):
        assert single_thread_ipc("gcc", TINY) > 0

    def test_every_kwarg_participates_in_memo_key(self):
        # Regression: the memo key is built from the full parameter set
        # (via a locals() snapshot), so two configurations may only
        # share a cache slot by being equal.  Exercise each run_sim
        # kwarg through _memo_key directly.
        import inspect

        from repro.harness.runner import _memo_key

        sig = inspect.signature(run_sim)
        kwargs = [
            n for n in sig.parameters
            if n not in ("mix_name", "scale", "use_cache")
        ]
        assert set(kwargs) >= {
            "fetch_policy", "scheduler", "dispatch", "dvm_target",
            "dvm_static_ratio", "profiled", "collect_hist",
        }
        base = {n: sig.parameters[n].default for n in kwargs}
        for name in kwargs:
            varied = dict(base)
            varied[name] = "other-value"
            assert _memo_key("CPU-A", TINY, varied) != _memo_key(
                "CPU-A", TINY, base
            ), f"kwarg {name!r} does not participate in the memo key"

    def test_memo_key_not_order_or_slot_ambiguous(self):
        from repro.harness.runner import _memo_key

        assert _memo_key("m", TINY, {"a": 1, "b": None}) != _memo_key(
            "m", TINY, {"a": None, "b": 1}
        )
        assert _memo_key("m", TINY, {"a": 1, "b": 2}) == _memo_key(
            "m", TINY, {"b": 2, "a": 1}
        )

    def test_collect_hist_not_conflated(self):
        # Regression for the concrete collision this audit guards: a
        # histogram-collecting run must not satisfy a plain lookup.
        plain = run_sim("CPU-A", TINY)
        hist = run_sim("CPU-A", TINY, collect_hist=True)
        assert plain is not hist
        assert run_sim("CPU-A", TINY, collect_hist=True) is hist

    def test_unhashable_kwarg_fails_loudly(self):
        with pytest.raises(TypeError, match="dispatch"):
            run_sim("CPU-A", TINY, dispatch=["opt1"])

    def test_use_cache_false_bypasses_memo(self):
        r1 = run_sim("CPU-A", TINY)
        r2 = run_sim("CPU-A", TINY, use_cache=False)
        assert r1 is not r2
        assert r1.committed == r2.committed

    def test_harmonic_ipc_bounded(self):
        res = run_sim("CPU-A", TINY)
        h = mix_harmonic_ipc("CPU-A", TINY, res)
        assert 0.0 <= h <= 2.0


class TestExperimentShapes:
    def test_fig1_rows(self):
        rows = experiments.fig1_structure_avf(TINY)
        assert [r["category"] for r in rows] == list(CATEGORIES)
        for r in rows:
            assert set(r) >= {"IQ", "ROB", "RF", "FU"}

    def test_fig2_shape(self):
        d = experiments.fig2_ready_queue(TINY)
        assert len(d["hist"]) == 97  # 96-entry IQ + empty bucket
        assert abs(sum(d["hist"]) - 1.0) < 1e-9
        assert 0 <= d["overall_ace_pct"] <= 1

    def test_table1_has_19_rows(self):
        rows = experiments.table1_pc_accuracy(TINY)
        assert len(rows) == 19  # 18 benchmarks + AVG
        assert rows[-1]["benchmark"] == "AVG"
        for r in rows[:-1]:
            assert 0.5 <= r["accuracy"] <= 1.0

    def test_fig5_rows(self):
        rows = experiments.fig5_visa_configs(TINY)
        assert len(rows) == 9  # 3 categories x 3 configs
        for r in rows:
            assert r["norm_iq_avf"] > 0
            assert r["norm_ipc"] > 0

    def test_dvm_scale_refines_intervals(self):
        s = experiments.dvm_scale(TINY)
        assert s.interval_cycles < TINY.interval_cycles or s.interval_cycles == 1000
        assert s.max_cycles >= TINY.max_cycles


class TestReport:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 22, "b": None}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "0.500" in text and "-" in text

    def test_format_empty(self):
        assert "(no data)" in format_table([], title="X")

    def test_save_report(self, tmp_path):
        path = save_report("unit", "hello\n", directory=str(tmp_path))
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"
