"""The stage-effect / state-contract layer: local effect extraction,
the interprocedural fold, contract build/diff, the dimension lattice,
and the three rules riding them (``state-contract-drift``,
``escaped-state-write``, ``dimension-mismatch``)."""

import ast
import json
import textwrap

import pytest

from repro.analysis import LintEngine
from repro.analysis.effects.analyze import EffectAnalysis, PipelineContract
from repro.analysis.effects.cli import contract_main
from repro.analysis.effects.contract import (
    build_contract,
    diff_contracts,
    render_contract,
)
from repro.analysis.effects.dimensions import (
    BIT_CYCLES,
    BITS,
    CYCLES,
    FRACTION,
    PER_CYCLE,
    check_function,
    dimension_of_name,
)
from repro.analysis.effects.model import (
    extract_local_effects,
    paths_overlap,
    truncate_path,
)
from repro.analysis.perfmodel.cli import build_project

# ----------------------------------------------------------------------
# A miniature simulator tree exercised by most contract tests.
# ----------------------------------------------------------------------
MINI_PIPELINE = """
from collections import deque


class IssueQueue:
    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = {}
        self.count = 0

    def insert(self, tag, inst):
        self.entries[tag] = inst
        self.count += 1

    def dump(self):
        return self.entries


class ReorderBuffer:
    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = deque()

    def push(self, inst):
        self.entries.append(inst)

    def commit(self):
        if self.entries:
            return self.entries.popleft()
        return None


class MiniPipeline:
    def __init__(self, num_threads):
        self.num_threads = num_threads
        self.cycle = 0
        self.iq = IssueQueue(32)
        self.robs = [ReorderBuffer(64) for _ in range(num_threads)]
        self.fetch_q = [0] * num_threads
        self.bus = None

    def _fetch(self):
        for t in range(self.num_threads):
            self.fetch_q[t] += 1

    def _dispatch(self):
        self.iq.insert(self.cycle, self.fetch_q[0])

    def _commit(self):
        for rob in self.robs:
            rob.commit()

    def run(self, cycles):
        for _ in range(cycles):
            self.bus.stage = "fetch"
            self._fetch()
            self.bus.stage = "dispatch"
            self._dispatch()
            self.bus.stage = "commit"
            self._commit()
            self.cycle += 1
"""


def mini_project(tmp_path, source=MINI_PIPELINE, name="mini.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return build_project([str(tmp_path)])


def mini_contract(tmp_path, source=MINI_PIPELINE):
    return PipelineContract(mini_project(tmp_path, source))


def effects_of(body, qualname="m.C.f"):
    tree = ast.parse(textwrap.dedent(body))
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return extract_local_effects(func, qualname)


# ----------------------------------------------------------------------
# Local effect extraction
# ----------------------------------------------------------------------
class TestLocalEffects:
    def test_attribute_reads_and_writes(self):
        eff = effects_of(
            """
            def f(self):
                self.total = self.count + 1
            """
        )
        assert "count" in eff.reads
        assert "total" in eff.writes

    def test_subscript_write_is_element_write(self):
        eff = effects_of(
            """
            def f(self, tag, inst):
                self.entries[tag] = inst
            """
        )
        assert "entries[*]" in eff.writes

    def test_alias_through_local(self):
        eff = effects_of(
            """
            def f(self, t):
                rob = self.robs[t]
                rob.head = 0
            """
        )
        assert "robs[*].head" in eff.writes

    def test_for_loop_aliases_element(self):
        eff = effects_of(
            """
            def f(self):
                for rob in self.robs:
                    rob.flush()
            """
        )
        assert any(c.receiver == "robs[*]" and c.method == "flush" for c in eff.calls)

    def test_mutator_on_unaliased_param_ignored(self):
        eff = effects_of(
            """
            def f(self, queue):
                queue.append(1)
            """
        )
        assert eff.writes == {}
        assert all(c.receiver != "queue" for c in eff.calls)

    def test_augassign_is_read_and_write(self):
        eff = effects_of(
            """
            def f(self):
                self.cycle += 1
            """
        )
        assert "cycle" in eff.reads and "cycle" in eff.writes

    def test_truncate_and_overlap(self):
        assert truncate_path("a.b.c.d.e") == "a.b.c.d"
        assert paths_overlap("robs[*]", "robs[*].entries[*]")
        assert not paths_overlap("robs[*]", "robstats")


# ----------------------------------------------------------------------
# Interprocedural fold
# ----------------------------------------------------------------------
class TestEffectFold:
    def test_callee_effects_reroot_through_receiver(self, tmp_path):
        project = mini_project(tmp_path)
        analysis = EffectAnalysis(project)
        summary = analysis.summary("mini.MiniPipeline._dispatch")
        assert "iq.entries[*]" in summary.writes
        assert "iq.count" in summary.writes

    def test_builtin_mutator_on_state_is_container_write(self, tmp_path):
        project = mini_project(tmp_path)
        analysis = EffectAnalysis(project)
        summary = analysis.summary("mini.ReorderBuffer.push")
        assert "entries[*]" in summary.writes

    def test_reachability_covers_stage_closure(self, tmp_path):
        project = mini_project(tmp_path)
        analysis = EffectAnalysis(project)
        reachable = analysis.reachable_from("mini.MiniPipeline.run")
        assert "mini.IssueQueue.insert" in reachable
        assert "mini.ReorderBuffer.commit" in reachable
        assert "mini.IssueQueue.dump" not in reachable

    def test_constructor_typing_covers_listcomp(self, tmp_path):
        project = mini_project(tmp_path)
        analysis = EffectAnalysis(project)
        types = analysis.attr_types("mini.MiniPipeline")
        assert types["iq"] == "mini.IssueQueue"
        assert types["robs"] == "mini.ReorderBuffer"


# ----------------------------------------------------------------------
# Pipeline contract
# ----------------------------------------------------------------------
class TestPipelineContract:
    def test_stages_in_run_order(self, tmp_path):
        contract = mini_contract(tmp_path)
        assert [s.name for s in contract.stages] == ["fetch", "dispatch", "commit"]

    def test_stage_dependency_on_fetch_queue(self, tmp_path):
        contract = mini_contract(tmp_path)
        dep = next(
            d
            for d in contract.dependencies
            if d.writer == "fetch" and d.reader == "dispatch"
        )
        assert any(p.startswith("fetch_q") for p in dep.paths)

    def test_state_partitioning(self, tmp_path):
        contract = mini_contract(tmp_path)
        assert "robs" in contract.per_thread
        assert "fetch_q" in contract.per_thread
        assert "iq" in contract.shared
        assert "cycle" in contract.shared

    def test_iq_and_rob_verdicts_with_locations(self, tmp_path):
        contract = mini_contract(tmp_path)
        iq = contract.structures["iq"]
        rob = contract.structures["rob"]
        assert not iq.vectorizable
        kinds = {b.kind for b in iq.blockers}
        assert "dynamic-container" in kinds  # self.entries = {}
        assert "escape" in kinds  # dump() returns self.entries
        assert all(b.line > 0 for b in iq.blockers)
        assert not rob.vectorizable
        assert any(
            b.kind == "dynamic-container" and "deque" in b.detail
            for b in rob.blockers
        )

    def test_no_pipeline_raises_lookup_error(self, tmp_path):
        project = mini_project(tmp_path, source="class Plain:\n    pass\n")
        with pytest.raises(LookupError):
            PipelineContract(project)

    def test_bare_calls_fall_back_when_unlabeled(self, tmp_path):
        source = MINI_PIPELINE.replace('self.bus.stage = "fetch"\n            ', "")
        source = source.replace('self.bus.stage = "dispatch"\n            ', "")
        source = source.replace('self.bus.stage = "commit"\n            ', "")
        contract = mini_contract(tmp_path, source)
        assert [s.name for s in contract.stages] == ["fetch", "dispatch", "commit"]


# ----------------------------------------------------------------------
# Contract document: build, render, diff
# ----------------------------------------------------------------------
class TestContractDocument:
    def test_render_is_byte_stable(self, tmp_path):
        doc = build_contract(mini_contract(tmp_path))
        again = build_contract(mini_contract(tmp_path))
        assert render_contract(doc) == render_contract(again)

    def test_roundtrips_through_json(self, tmp_path):
        doc = build_contract(mini_contract(tmp_path))
        assert json.loads(render_contract(doc)) == doc

    def test_diff_reports_each_divergence(self, tmp_path):
        doc = build_contract(mini_contract(tmp_path))
        mutated = json.loads(render_contract(doc))
        mutated["state"]["shared"].append("zz_new_attr")
        diffs = diff_contracts(doc, mutated)
        assert len(diffs) == 1 and "zz_new_attr" in diffs[0]
        assert diff_contracts(doc, json.loads(render_contract(doc))) == []


# ----------------------------------------------------------------------
# The CLI: repro lint contract
# ----------------------------------------------------------------------
class TestContractCLI:
    def test_write_contract_is_byte_identical(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mini.py").write_text(textwrap.dedent(MINI_PIPELINE))
        monkeypatch.chdir(tmp_path)
        assert contract_main(["mini.py", "--write-contract"]) == 0
        first = (tmp_path / "backend-contract.json").read_bytes()
        assert contract_main(["mini.py", "--write-contract"]) == 0
        assert (tmp_path / "backend-contract.json").read_bytes() == first

    def test_diff_clean_then_drift(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mini.py").write_text(textwrap.dedent(MINI_PIPELINE))
        monkeypatch.chdir(tmp_path)
        assert contract_main(["mini.py", "--write-contract"]) == 0
        assert contract_main(["mini.py", "--diff"]) == 0
        # Seeded mutation: a new cross-object write in the dispatch
        # stage must flip the gate.
        mutated = textwrap.dedent(MINI_PIPELINE).replace(
            "self.iq.insert(self.cycle, self.fetch_q[0])",
            "self.iq.insert(self.cycle, self.fetch_q[0])\n        self.iq.count = 0",
        )
        (tmp_path / "mini.py").write_text(mutated)
        capsys.readouterr()
        assert contract_main(["mini.py", "--diff"]) == 1
        out = capsys.readouterr().out
        assert "contract drift" in out

    def test_diff_missing_contract_is_usage_error(self, tmp_path, monkeypatch):
        (tmp_path / "mini.py").write_text(textwrap.dedent(MINI_PIPELINE))
        monkeypatch.chdir(tmp_path)
        assert contract_main(["mini.py", "--diff"]) == 2

    def test_json_format_prints_canonical_document(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mini.py").write_text(textwrap.dedent(MINI_PIPELINE))
        monkeypatch.chdir(tmp_path)
        assert contract_main(["mini.py", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["pipeline"].endswith("MiniPipeline")
        assert [s["name"] for s in doc["stages"]] == ["fetch", "dispatch", "commit"]

    def test_text_summary_lists_blockers(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mini.py").write_text(textwrap.dedent(MINI_PIPELINE))
        monkeypatch.chdir(tmp_path)
        assert contract_main(["mini.py"]) == 0
        out = capsys.readouterr().out
        assert "SoA-feasibility verdicts" in out
        assert "dynamic-container" in out


# ----------------------------------------------------------------------
# state-contract-drift / escaped-state-write project rules
# ----------------------------------------------------------------------
class TestContractCheckers:
    def test_drift_silent_without_committed_contract(self, tmp_path, monkeypatch):
        (tmp_path / "mini.py").write_text(textwrap.dedent(MINI_PIPELINE))
        monkeypatch.chdir(tmp_path)
        assert LintEngine(["state-contract-drift"]).run(["mini.py"]) == []

    def test_drift_silent_when_contract_matches(self, tmp_path, monkeypatch):
        (tmp_path / "mini.py").write_text(textwrap.dedent(MINI_PIPELINE))
        monkeypatch.chdir(tmp_path)
        assert contract_main(["mini.py", "--write-contract"]) == 0
        assert LintEngine(["state-contract-drift"]).run(["mini.py"]) == []

    def test_drift_fires_on_divergence(self, tmp_path, monkeypatch):
        (tmp_path / "mini.py").write_text(textwrap.dedent(MINI_PIPELINE))
        monkeypatch.chdir(tmp_path)
        assert contract_main(["mini.py", "--write-contract"]) == 0
        doc = json.loads((tmp_path / "backend-contract.json").read_text())
        doc["state"]["shared"].append("zz_phantom")
        (tmp_path / "backend-contract.json").write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        diags = LintEngine(["state-contract-drift"]).run(["mini.py"])
        assert len(diags) == 1
        assert diags[0].rule == "state-contract-drift"
        assert "zz_phantom" in diags[0].message
        assert diags[0].symbol.endswith("MiniPipeline")

    def test_drift_silent_without_pipeline(self, tmp_path, monkeypatch):
        (tmp_path / "plain.py").write_text("class Plain:\n    pass\n")
        monkeypatch.chdir(tmp_path)
        assert LintEngine(["state-contract-drift"]).run(["plain.py"]) == []

    def test_escaped_write_flags_cross_object_mutation(self, tmp_path, monkeypatch):
        mutated = textwrap.dedent(MINI_PIPELINE).replace(
            "self.iq.insert(self.cycle, self.fetch_q[0])",
            "self.iq.insert(self.cycle, self.fetch_q[0])\n        self.iq.count = 0",
        )
        (tmp_path / "mini.py").write_text(mutated)
        monkeypatch.chdir(tmp_path)
        diags = LintEngine(["escaped-state-write"]).run(["mini.py"])
        assert len(diags) == 1
        diag = diags[0]
        assert diag.rule == "escaped-state-write"
        assert "iq.count" in diag.message
        assert diag.symbol == "mini.MiniPipeline._dispatch"
        assert diag.line > 0 and diag.end_line >= diag.line

    def test_escaped_write_clean_on_method_calls(self, tmp_path, monkeypatch):
        (tmp_path / "mini.py").write_text(textwrap.dedent(MINI_PIPELINE))
        monkeypatch.chdir(tmp_path)
        assert LintEngine(["escaped-state-write"]).run(["mini.py"]) == []

    def test_drift_invalidates_cached_project_snapshot(self, tmp_path, monkeypatch):
        """Editing only backend-contract.json must bust the project
        cache (fingerprint_files), not serve stale clean results."""
        (tmp_path / "mini.py").write_text(textwrap.dedent(MINI_PIPELINE))
        monkeypatch.chdir(tmp_path)
        assert contract_main(["mini.py", "--write-contract"]) == 0
        cache = str(tmp_path / "lintcache")
        engine = LintEngine(["state-contract-drift"], cache_dir=cache)
        assert engine.run(["mini.py"]) == []
        doc = json.loads((tmp_path / "backend-contract.json").read_text())
        doc["version"] = 99
        (tmp_path / "backend-contract.json").write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        engine2 = LintEngine(["state-contract-drift"], cache_dir=cache)
        diags = engine2.run(["mini.py"])
        assert diags and diags[0].rule == "state-contract-drift"


# ----------------------------------------------------------------------
# Dimension lattice + dimension-mismatch rule
# ----------------------------------------------------------------------
def findings_of(body):
    tree = ast.parse(textwrap.dedent(body))
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return check_function(func)


class TestDimensionLattice:
    def test_name_seeding(self):
        assert dimension_of_name("ace_bit_cycles") == BIT_CYCLES
        assert dimension_of_name("_sample_bits") == BITS
        assert dimension_of_name("warmup_cycles") == CYCLES
        assert dimension_of_name("online_avf_estimate") == FRACTION
        assert dimension_of_name("entries") == "unknown"

    def test_bit_cycles_seeding_wins_over_bits(self):
        # checked before the *_bits suffix: a bit-cycle accumulator is
        # not a bit count.
        assert dimension_of_name("rob_bit_cycles") == BIT_CYCLES

    def test_cycles_plus_bit_cycles_flagged(self):
        findings = findings_of(
            """
            def f(self):
                total = self.ace_bit_cycles + self.warmup_cycles
            """
        )
        assert len(findings) == 1
        assert "mixed dimensions" in findings[0].message
        assert findings[0].line == 3

    def test_cycle_minus_cycle_is_duration_not_flagged(self):
        assert (
            findings_of(
                """
                def f(self):
                    wait_cycles = self.leave_cycle - self.enter_cycle
                """
            )
            == []
        )

    def test_dropped_normalization_flagged(self):
        # bits / (cycles * bits) leaves 1/cycles, not a fraction: the
        # shape of a dropped `/ (bits * cycles)` AVF normalization.
        findings = findings_of(
            """
            def f(self, cycles):
                avf = self.resident_bits / (cycles * self.capacity_bits)
            """
        )
        assert len(findings) == 1
        assert PER_CYCLE in findings[0].message

    def test_correct_normalization_clean(self):
        assert (
            findings_of(
                """
                def f(self, cycles):
                    avf = self.ace_bit_cycles / (cycles * self.capacity_bits)
                """
            )
            == []
        )

    def test_keyword_argument_mismatch_flagged(self):
        findings = findings_of(
            """
            def f(self, cycles):
                self.record(
                    online_avf_estimate=self.resident_bits
                    / (cycles * self.capacity_bits)
                )
            """
        )
        assert len(findings) == 1
        assert "online_avf_estimate" in findings[0].message

    def test_per_cycle_integration_allowed(self):
        # acc_bit_cycles += resident bits, once per cycle: canonical
        # ACE accumulation, not a mixup.
        assert (
            findings_of(
                """
                def f(self, iq):
                    self.ace_bit_cycles += iq.pred_ace_bits
                """
            )
            == []
        )

    def test_accumulating_cycles_into_bits_flagged(self):
        findings = findings_of(
            """
            def f(self):
                self.total_bits += self.stall_cycles
            """
        )
        assert len(findings) == 1
        assert "accumulating" in findings[0].message

    def test_literals_are_compatible(self):
        assert (
            findings_of(
                """
                def f(self):
                    self.cycle = self.cycle + 1
                """
            )
            == []
        )

    def test_finding_has_end_span(self):
        findings = findings_of(
            """
            def f(self):
                t = self.ace_bit_cycles + self.warmup_cycles
            """
        )
        f = findings[0]
        assert f.end_line == f.line and f.end_col > f.col


class TestDimensionChecker:
    def test_engine_integration(self, tmp_path):
        bad = tmp_path / "avfmath.py"
        bad.write_text(
            textwrap.dedent(
                """
                class A:
                    def close(self, cycles):
                        self.total = self.ace_bit_cycles + self.warmup_cycles
                """
            )
        )
        diags = LintEngine(["dimension-mismatch"]).run([str(bad)])
        assert len(diags) == 1
        assert diags[0].rule == "dimension-mismatch"
        assert diags[0].symbol == "close"

    def test_suppression_comment_respected(self, tmp_path):
        bad = tmp_path / "avfmath.py"
        bad.write_text(
            textwrap.dedent(
                """
                class A:
                    def close(self, cycles):
                        self.total = self.ace_bit_cycles + self.warmup_cycles  # lint: disable=dimension-mismatch
                """
            )
        )
        assert LintEngine(["dimension-mismatch"]).run([str(bad)]) == []

    def test_real_tree_is_clean(self):
        diags = LintEngine(["dimension-mismatch"]).run(["src"])
        assert diags == []
