"""Cross-process telemetry relay, worker health, and fleet monitoring."""

import queue as queue_mod
import time

import pytest

from repro.harness import parallel as parallel_mod
from repro.harness.health import (
    STATE_IDLE,
    STATE_LOST,
    STATE_RUNNING,
    HealthMonitor,
    HeartbeatEmitter,
    MonitorConfig,
)
from repro.harness.parallel import parallel_sweep
from repro.harness.runner import BenchScale, clear_caches
from repro.telemetry.bus import EventBus, EventOrigin
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.relay import MSG_HEALTH, RelayDrain, WorkerRelay
from repro.telemetry.topics import (
    TOPIC_HARNESS_POINT,
    TOPIC_INTERVAL_CLOSE,
    TOPIC_RELIABILITY_ESTIMATE,
    TOPIC_WORKER_HEALTH,
)

TINY = BenchScale(
    max_cycles=2_000, warmup_cycles=400, interval_cycles=400,
    ace_window=800, profile_instructions=6_000, profile_window=1_500,
)


@pytest.fixture(autouse=True, scope="module")
def _caches():
    clear_caches()
    yield
    clear_caches()


def _interval_payload(index: int) -> dict:
    return {
        "index": index, "end_cycle": (index + 1) * 400, "ipc": 2.0,
        "committed": 800, "avg_ready_queue_len": 4.0,
        "avg_waiting_queue_len": 8.0, "l2_misses": 0,
        "online_avf_estimate": 0.25, "online_rob_estimate": 0.33,
        "iq_limit": 64,
    }


def _emit_intervals(bus: EventBus, n: int, start: int = 0) -> None:
    for i in range(start, start + n):
        bus.emit(
            TOPIC_INTERVAL_CLOSE,
            index=i, end_cycle=(i + 1) * 400, ipc=2.0, committed=800,
            avg_ready_queue_len=4.0, avg_waiting_queue_len=8.0, l2_misses=0,
            online_avf_estimate=0.25, online_rob_estimate=0.33, iq_limit=64,
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class TestWorkerRelay:
    def test_batches_ship_at_batch_size(self):
        q = queue_mod.Queue()
        bus = EventBus()
        relay = WorkerRelay(q, batch_size=3)
        relay.attach(bus)
        _emit_intervals(bus, 2)
        assert q.empty()  # below batch size: nothing shipped yet
        _emit_intervals(bus, 1, start=2)
        kind, _pid, _seq, dropped, batch = q.get_nowait()
        assert kind == "events" and dropped == 0 and len(batch) == 3
        topic, _cycle, _stage, payload = batch[0]
        assert topic == TOPIC_INTERVAL_CLOSE.name
        assert payload["online_avf_estimate"] == 0.25

    def test_full_queue_drops_and_counts_without_blocking(self):
        q = queue_mod.Queue(maxsize=1)
        bus = EventBus()
        relay = WorkerRelay(q, batch_size=1)
        relay.attach(bus)
        start = time.perf_counter()  # lint: disable=determinism
        _emit_intervals(bus, 5)  # capacity 1: four batches must drop
        # put_nowait, not put: a blocking put would hang here forever.
        assert time.perf_counter() - start < 0.5  # lint: disable=determinism
        assert relay.sent == 1
        assert relay.dropped == 4

    def test_heartbeats_bypass_batching(self):
        q = queue_mod.Queue()
        relay = WorkerRelay(q, batch_size=32)
        relay.send_health({"kind": "beat"})
        kind, _pid, _seq, _dropped, body = q.get_nowait()
        assert kind == MSG_HEALTH and body == {"kind": "beat"}

    def test_drop_count_rides_every_message(self):
        # Dropped batches never arrive, so the *next* delivered message
        # must carry the cumulative count for the parent to see it.
        q = queue_mod.Queue(maxsize=1)
        relay = WorkerRelay(q, batch_size=1)
        relay.send_health({"kind": "a"})      # fills the queue
        relay.send_health({"kind": "lost"})   # dropped
        q.get_nowait()
        relay.send_health({"kind": "b"})
        _kind, _pid, _seq, dropped, _body = q.get_nowait()
        assert dropped == 1

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            WorkerRelay(queue_mod.Queue(), batch_size=0)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class TestRelayDrain:
    def _pair(self, maxsize=0, batch_size=1, on_health=None):
        q = queue_mod.Queue(maxsize=maxsize)
        worker_bus = EventBus()
        relay = WorkerRelay(q, batch_size=batch_size)
        relay.attach(worker_bus)
        parent_bus = EventBus()
        drain = RelayDrain(
            q, parent_bus, worker_slot=lambda pid: 0, t0=0.0,
            on_health=on_health,
        )
        return worker_bus, relay, parent_bus, drain

    def test_republishes_with_origin_preserving_order(self):
        worker_bus, relay, parent_bus, drain = self._pair()
        seen = []
        parent_bus.subscribe(
            TOPIC_INTERVAL_CLOSE, lambda e: seen.append((e.payload["index"], e.origin))
        )
        _emit_intervals(worker_bus, 5)
        assert drain.pump() == 5
        assert [i for i, _ in seen] == [0, 1, 2, 3, 4]
        origin = seen[0][1]
        assert isinstance(origin, EventOrigin)
        assert origin.worker == 0 and origin.pid == relay._pid
        assert origin.ms >= 0.0

    def test_dropped_counter_reflects_worker_losses(self):
        worker_bus, relay, _parent_bus, drain = self._pair(maxsize=2)
        _emit_intervals(worker_bus, 6)  # 2 delivered, 4 dropped
        drain.pump()
        assert relay.dropped == 4
        # Dropped batches never arrive; the cumulative count rides the
        # *next* delivered message instead.
        assert drain.dropped == 0
        _emit_intervals(worker_bus, 1, start=6)
        drain.pump()
        assert drain.dropped == 4
        assert drain.metrics.snapshot()["relay.dropped"] == 4

    def test_health_routed_to_sink_not_bus(self):
        sink = []
        _, relay, parent_bus, drain = self._pair(
            on_health=lambda slot, pid, body, ms: sink.append((slot, pid, body))
        )
        republished = []
        parent_bus.subscribe(TOPIC_WORKER_HEALTH, lambda e: republished.append(e))
        relay.send_health({"kind": "beat", "cycles": 7})
        drain.pump()
        assert sink == [(0, relay._pid, {"kind": "beat", "cycles": 7})]
        assert republished == []  # the monitor republishes, not the drain

    def test_pump_bounded_by_max_messages(self):
        worker_bus, _relay, _parent_bus, drain = self._pair()
        _emit_intervals(worker_bus, 8)
        assert drain.pump(max_messages=3) == 3
        assert drain.pump() == 5

    def test_unknown_topic_skipped(self):
        q = queue_mod.Queue()
        q.put_nowait(("events", 1234, 1, 0, [("no.such.topic", 0, "", {})]))
        drain = RelayDrain(q, EventBus(), worker_slot=lambda pid: 0, t0=0.0)
        assert drain.pump() == 1
        assert drain.metrics.snapshot()["relay.events"] == 0


# ----------------------------------------------------------------------
# Heartbeats and the health monitor
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_start_tick_end_sequence(self):
        q = queue_mod.Queue()
        relay = WorkerRelay(q, batch_size=64)
        clock = [100.0]
        hb = HeartbeatEmitter(relay, interval_s=0.25, clock=lambda: clock[0])
        bus = EventBus()
        hb.attach(bus)
        hb.point_started("point-key")
        clock[0] += 0.1
        _emit_intervals(bus, 1)  # throttled
        clock[0] += 0.3
        _emit_intervals(bus, 1, start=1)  # beats
        hb.point_finished()
        kinds = []
        while not q.empty():
            kind, _pid, _seq, _dropped, body = q.get_nowait()
            if kind == MSG_HEALTH:
                kinds.append(body["kind"])
                if body["kind"] == "beat":
                    assert body["point"] == "point-key"
                    assert body["cycles"] == 800
                    assert body["cycles_per_sec"] == pytest.approx(800 / 0.4)
        assert kinds == ["start", "beat", "end"]

    def test_cycle_reset_within_point(self):
        # Figure tasks run several sims per point; end_cycle restarting
        # from zero must not produce a negative rate.
        q = queue_mod.Queue()
        relay = WorkerRelay(q, batch_size=64)
        clock = [0.0]
        hb = HeartbeatEmitter(relay, interval_s=0.0, clock=lambda: clock[0])
        bus = EventBus()
        hb.attach(bus)
        hb.point_started("p")
        clock[0] += 1.0
        _emit_intervals(bus, 1, start=4)
        clock[0] += 1.0
        _emit_intervals(bus, 1)  # new sim: end_cycle restarts below 2000
        rates = []
        while not q.empty():
            kind, _pid, _seq, _dropped, body = q.get_nowait()
            if kind == MSG_HEALTH and body["kind"] == "beat":
                rates.append(body["cycles_per_sec"])
        assert all(rate >= 0.0 for rate in rates)


class TestHealthMonitor:
    def _monitor(self, bus=None, stall_after_s=1.0):
        return HealthMonitor(
            metrics=MetricsRegistry(), bus=bus, stall_after_s=stall_after_s
        )

    def _beat(self, mon, slot=0, pid=41, kind="beat", point="k", ms=0.0, **over):
        payload = {
            "kind": kind, "point": point, "cycles": 1200,
            "cycles_per_sec": 5000.0, "rss_kb": 2048.0, "point_wall_s": 0.4,
        }
        payload.update(over)
        mon.on_health(slot, pid, payload, ms)

    def test_folds_heartbeat_into_gauges(self):
        mon = self._monitor()
        self._beat(mon, slot=1, pid=77)
        snap = mon.metrics.snapshot()
        assert snap["worker.w1.cycles"] == 1200
        assert snap["worker.w1.cycles_per_sec"] == 5000.0
        assert snap["worker.w1.rss_kb"] == 2048.0
        assert snap["fleet.workers"] == 1
        (row,) = mon.to_doc(now_ms=100.0)
        assert row["state"] == STATE_RUNNING and row["point"] == "k"

    def test_republishes_health_with_origin(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TOPIC_WORKER_HEALTH, lambda e: seen.append(e))
        mon = self._monitor(bus=bus)
        self._beat(mon, slot=2, pid=99, ms=12.5)
        (event,) = seen
        assert event.payload["worker"] == 2 and event.payload["pid"] == 99
        assert event.origin == EventOrigin(worker=2, pid=99, ms=12.5)

    def test_end_beat_marks_idle(self):
        mon = self._monitor()
        self._beat(mon, kind="start")
        self._beat(mon, kind="end", point=None)
        (row,) = mon.to_doc(now_ms=10.0)
        assert row["state"] == STATE_IDLE and row["point"] is None

    def test_stall_detection_and_display_promotion(self):
        mon = self._monitor(stall_after_s=1.0)
        self._beat(mon, kind="start", ms=0.0)
        assert mon.stalled_worker("k", now_ms=500.0) is None  # still fresh
        record, age_s = mon.stalled_worker("k", now_ms=2500.0)
        assert record.worker == 0 and age_s == pytest.approx(2.5)
        assert mon.stalled_worker("other-point", now_ms=2500.0) is None
        (row,) = mon.to_doc(now_ms=2500.0)
        assert row["state"] == "stalled"  # displayed, though never beat again

    def test_begin_round_resets_attribution(self):
        # A stale running record from a torn-down pool must not stall
        # the retried point; the worker renders as lost instead.
        mon = self._monitor(stall_after_s=0.1)
        self._beat(mon, kind="start", ms=0.0)
        assert mon.started("k")
        mon.begin_round()
        assert not mon.started("k")
        assert mon.stalled_worker("k", now_ms=10_000.0) is None
        (row,) = mon.to_doc(now_ms=10_000.0)
        assert row["state"] == STATE_LOST

    def test_relayed_avf_samples_fold_into_worker_gauges(self):
        bus = EventBus()
        mon = self._monitor(bus=bus)
        mon.attach(bus)
        origin = EventOrigin(worker=3, pid=11, ms=5.0)
        bus.republish(
            TOPIC_INTERVAL_CLOSE, _interval_payload(0), cycle=400, stage="",
            origin=origin,
        )
        bus.republish(
            TOPIC_RELIABILITY_ESTIMATE,
            {"structure": "iq", "estimate": 0.4, "threshold": 0.3,
             "triggered": True},
            cycle=400, stage="", origin=origin,
        )
        # The parent's own (origin-less) events must not touch gauges.
        _emit_intervals(bus, 1, start=1)
        snap = mon.metrics.snapshot()
        assert snap["worker.w3.online_iq_avf"] == 0.25
        assert snap["worker.w3.online_rob_avf"] == 0.33
        assert snap["worker.w3.est_iq"] == 0.4


# ----------------------------------------------------------------------
# Live fleet integration (jobs=2)
# ----------------------------------------------------------------------
class TestLiveFleet:
    def test_mid_point_telemetry_and_worker_gauges(self, tmp_path):
        bus = EventBus()
        done_seen = [0]
        relayed_before_done = [0]
        health_kinds = set()

        def on_point(event):
            if event.payload["status"] == "done":
                done_seen[0] += 1

        def on_relayed(event):
            if done_seen[0] == 0:
                relayed_before_done[0] += 1

        bus.subscribe(TOPIC_HARNESS_POINT, on_point)
        bus.subscribe(
            TOPIC_INTERVAL_CLOSE, on_relayed,
            predicate=lambda e: e.origin is not None,
        )
        bus.subscribe(
            TOPIC_WORKER_HEALTH, lambda e: health_kinds.add(e.payload["kind"])
        )
        ck = str(tmp_path / "fleet.jsonl")
        run = parallel_sweep(
            "CPU-A", TINY, {"scheduler": ["oldest", "visa"]},
            jobs=2, checkpoint=ck, bus=bus,
            monitor=MonitorConfig(heartbeat_s=0.05),
        )
        assert len(run.rows) == 2 and not run.skipped
        # Reliability samples reached the parent bus before any point
        # completed — the sweep is observable in flight, not post hoc.
        assert relayed_before_done[0] > 0
        assert "start" in health_kinds and "end" in health_kinds

    def test_engine_telemetry_snapshot_and_status_doc(self, tmp_path):
        import json

        from repro.telemetry.export import read_status

        ck = str(tmp_path / "fleet2.jsonl")
        run = parallel_sweep(
            "CPU-A", TINY, {"scheduler": ["oldest", "visa"]},
            jobs=2, checkpoint=ck,
            monitor=MonitorConfig(heartbeat_s=0.05),
        )
        # Default batch/queue sizes must not drop anything at this scale.
        assert run.telemetry["relay.dropped"] == 0
        assert run.telemetry["relay.events"] > 0
        assert run.telemetry["relay.heartbeats"] >= 4  # start+end per point
        assert any(k.startswith("worker.w0.") for k in run.telemetry)
        assert run.status_path == str(tmp_path / "fleet2.status.json")
        doc = read_status(ck)  # accepts the checkpoint path
        assert doc["state"] == "finished"
        assert doc["points"]["total"] == 2 and doc["points"]["done"] == 2
        assert doc["config_hash"] and doc["run_id"] == doc["config_hash"][:12]
        assert {w["state"] for w in doc["workers"]} == {"idle"}
        raw = json.load(open(run.status_path))
        assert raw == doc

    def test_monitor_false_disables_fleet(self, tmp_path):
        run = parallel_sweep(
            "CPU-A", TINY, {"scheduler": ["oldest"]},
            jobs=2, checkpoint=str(tmp_path / "off.jsonl"), monitor=False,
        )
        assert run.telemetry == {} and run.status_path is None


# ----------------------------------------------------------------------
# Degraded fleets: hangs and deaths classified as stalls
# ----------------------------------------------------------------------
class TestStallDisposition:
    def test_hung_worker_is_stalled_not_timed_out(self, monkeypatch, tmp_path):
        # The worker sleeps mid-point with NO timeout set: only the
        # heartbeat-silence detector can hand the point back.
        monkeypatch.setenv(parallel_mod.FAULT_ENV, "sleep:2.0:scheduler=visa")
        bus = EventBus()
        statuses = []
        bus.subscribe(
            TOPIC_HARNESS_POINT, lambda e: statuses.append(e.payload["status"])
        )
        run = parallel_sweep(
            "CPU-A", TINY, {"scheduler": ["visa"]},
            jobs=2, checkpoint=str(tmp_path / "hang.jsonl"), bus=bus,
            retries=0, backoff=0.0, timeout=None,
            monitor=MonitorConfig(heartbeat_s=0.05, stall_after_s=0.5),
        )
        assert len(run.skipped) == 1
        assert "stalled: no heartbeat for" in run.skipped[0].error
        assert "timed out" not in run.skipped[0].error
        assert "stalled" in statuses and "skipped" in statuses

    def test_killed_worker_is_stalled_then_retried(self, monkeypatch, tmp_path):
        # die: sleeps past a heartbeat before os._exit, so the start
        # beat reliably reaches the parent and the death is attributed
        # to the point (mp.Queue's feeder thread can lose the beat on
        # an instant exit, which is the anonymous "worker process died"
        # path instead).
        monkeypatch.setenv(parallel_mod.FAULT_ENV, "die:0.4:scheduler=visa")
        bus = EventBus()
        statuses = []
        bus.subscribe(
            TOPIC_HARNESS_POINT, lambda e: statuses.append(e.payload["status"])
        )
        run = parallel_sweep(
            "CPU-A", TINY, {"scheduler": ["visa"]},
            jobs=2, checkpoint=str(tmp_path / "die.jsonl"), bus=bus,
            retries=1, backoff=0.0,
            monitor=MonitorConfig(heartbeat_s=0.05, stall_after_s=5.0),
        )
        assert len(run.skipped) == 1
        assert "stalled: worker process died mid-point" in run.skipped[0].error
        # Round 1: stalled then retried; round 2: stalled then skipped.
        assert statuses.count("stalled") == 2
        assert statuses.count("retry") == 1
        assert statuses.count("skipped") == 1
