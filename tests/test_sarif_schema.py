"""The structural SARIF 2.1.0 validator against the lint reporter's
real output and hand-broken documents."""

import json

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.reporters import render_sarif
from repro.analysis.sarif_schema import main as sarif_main
from repro.analysis.sarif_schema import validate_sarif


def make_doc(diags=()):
    return json.loads(render_sarif(list(diags)))


def diag(**overrides):
    base = dict(
        path="src/repro/core/pipeline.py",
        line=10,
        col=2,
        rule="determinism",
        message="wall-clock read in simulation code",
        severity=Severity.WARNING,
        symbol="SMTPipeline.run",
    )
    base.update(overrides)
    return Diagnostic(**base)


class TestValidDocuments:
    def test_empty_report_validates(self):
        assert validate_sarif(make_doc()) == []

    def test_report_with_results_validates(self):
        doc = make_doc([diag(), diag(line=20, severity=Severity.ERROR)])
        assert validate_sarif(doc) == []


class TestRegions:
    """The reporter must emit 1-based, ordered region bounds."""

    def region_of(self, doc):
        return doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"]["region"]

    def test_point_region_converts_zero_based_column(self):
        region = self.region_of(make_doc([diag(line=10, col=0)]))
        assert region == {"startLine": 10, "startColumn": 1}

    def test_span_region_emits_one_based_end_bounds(self):
        # AST span: line 10 cols [2, 7) -> SARIF 1-based columns 3..8.
        region = self.region_of(make_doc([diag(line=10, col=2, end_line=10, end_col=7)]))
        assert region == {
            "startLine": 10,
            "startColumn": 3,
            "endLine": 10,
            "endColumn": 8,
        }
        assert validate_sarif(make_doc([diag(end_line=10, end_col=7)])) == []

    def test_multiline_span(self):
        region = self.region_of(make_doc([diag(line=10, col=4, end_line=12, end_col=0)]))
        assert region["endLine"] == 12 and region["endColumn"] == 1

    def test_degenerate_span_is_clamped_ordered(self):
        # A checker handing back an inverted span must not produce a
        # region consumers drop.
        doc = make_doc([diag(line=10, col=5, end_line=10, end_col=1)])
        region = self.region_of(doc)
        assert region["endColumn"] >= region["startColumn"]
        assert validate_sarif(doc) == []

    def test_validator_rejects_inverted_columns(self):
        doc = make_doc([diag(end_line=10, end_col=9)])
        self.region_of(doc)["endColumn"] = 1
        assert any("endColumn" in e and "startColumn" in e for e in validate_sarif(doc))

    def test_validator_rejects_inverted_lines(self):
        doc = make_doc([diag(line=10, end_line=12, end_col=3)])
        self.region_of(doc)["endLine"] = 4
        assert any("endLine" in e and "startLine" in e for e in validate_sarif(doc))


class TestViolations:
    def test_wrong_version(self):
        doc = make_doc()
        doc["version"] = "2.0.0"
        assert any("$.version" in e for e in validate_sarif(doc))

    def test_missing_runs(self):
        assert validate_sarif({"version": "2.1.0"}) == ["$.runs: missing or empty"]

    def test_non_object_document(self):
        assert validate_sarif([1, 2]) == ["$: expected a JSON object"]

    def test_missing_driver_name(self):
        doc = make_doc()
        del doc["runs"][0]["tool"]["driver"]["name"]
        assert any("tool.driver.name" in e for e in validate_sarif(doc))

    def test_duplicate_rule_ids(self):
        doc = make_doc()
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        rules[1]["id"] = rules[0]["id"]
        assert any("duplicate rule id" in e for e in validate_sarif(doc))

    def test_unknown_result_level(self):
        doc = make_doc([diag()])
        doc["runs"][0]["results"][0]["level"] = "fatal"
        assert any(".level" in e for e in validate_sarif(doc))

    def test_empty_message_text(self):
        doc = make_doc([diag()])
        doc["runs"][0]["results"][0]["message"]["text"] = " "
        assert any(".message.text" in e for e in validate_sarif(doc))

    def test_rule_index_out_of_range(self):
        doc = make_doc([diag()])
        doc["runs"][0]["results"][0]["ruleIndex"] = 999
        assert any(".ruleIndex" in e for e in validate_sarif(doc))

    def test_rule_index_pointing_at_wrong_rule(self):
        doc = make_doc([diag()])
        result = doc["runs"][0]["results"][0]
        result["ruleIndex"] = (result["ruleIndex"] + 1) % len(
            doc["runs"][0]["tool"]["driver"]["rules"]
        )
        assert any("but ruleId is" in e for e in validate_sarif(doc))

    def test_missing_locations(self):
        doc = make_doc([diag()])
        doc["runs"][0]["results"][0]["locations"] = []
        assert any(".locations" in e for e in validate_sarif(doc))

    def test_absolute_uri_rejected(self):
        doc = make_doc([diag()])
        loc = doc["runs"][0]["results"][0]["locations"][0]
        loc["physicalLocation"]["artifactLocation"]["uri"] = "/abs/path.py"
        assert any("relative" in e for e in validate_sarif(doc))

    def test_zero_based_region_rejected(self):
        doc = make_doc([diag()])
        loc = doc["runs"][0]["results"][0]["locations"][0]
        loc["physicalLocation"]["region"]["startLine"] = 0
        assert any("region.startLine" in e for e in validate_sarif(doc))

    def test_boolean_region_value_rejected(self):
        doc = make_doc([diag()])
        loc = doc["runs"][0]["results"][0]["locations"][0]
        loc["physicalLocation"]["region"]["startColumn"] = True
        assert any("region.startColumn" in e for e in validate_sarif(doc))


class TestCli:
    def write(self, tmp_path, doc):
        path = tmp_path / "report.sarif"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = self.write(tmp_path, make_doc([diag()]))
        assert sarif_main([path]) == 0
        assert "valid SARIF 2.1.0" in capsys.readouterr().out

    def test_invalid_file_exits_one_with_violations(self, tmp_path, capsys):
        doc = make_doc([diag()])
        doc["version"] = "1.0"
        path = self.write(tmp_path, doc)
        assert sarif_main([path]) == 1
        err = capsys.readouterr().err
        assert "$.version" in err and "violation(s)" in err

    def test_unreadable_file_exits_one(self, tmp_path, capsys):
        assert sarif_main([str(tmp_path / "missing.sarif")]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_usage_error(self, capsys):
        assert sarif_main([]) == 2
        assert "usage:" in capsys.readouterr().err
