"""Post-retirement ACE analysis: ground-truth liveness semantics."""

import pytest

from repro.isa.instruction import (
    DynInst,
    DynState,
    MemBehavior,
    MemPattern,
    OpClass,
    StaticInst,
)
from repro.reliability.ace import ACEAnalyzer


def make_dyn(tag, opclass, dest=-1, srcs=(), thread=0):
    kw = {}
    if opclass.is_mem:
        kw["mem"] = MemBehavior(MemPattern.HOT, base=0, footprint=4096)
    if opclass == OpClass.BRANCH:
        from repro.isa.instruction import BranchBehavior

        kw["branch"] = BranchBehavior(taken_bias=0.5)
        kw["taken_block"] = 0
        kw["fall_block"] = 0
    st = StaticInst(pc=0x1000 + tag * 4, opclass=opclass, dest=dest, srcs=srcs, **kw)
    d = DynInst(tag=tag, thread=thread, static=st, stream_pos=tag)
    d.state = DynState.COMMITTED
    return d


class Harness:
    """Feeds a committed stream and records resolutions."""

    def __init__(self, threads=1, window=1000):
        self.resolved = {}
        self.analyzer = ACEAnalyzer(
            threads, window_size=window, resolve_cb=self._cb
        )
        self._cycle = 0

    def _cb(self, dyn):
        self.resolved[dyn.tag] = dyn.ace

    def feed(self, *dyns):
        for d in dyns:
            self.analyzer.commit(d, self._cycle)
            self._cycle += 1

    def finish(self):
        self.analyzer.flush(self._cycle)


class TestRoots:
    def test_store_is_ace(self):
        h = Harness()
        h.feed(make_dyn(1, OpClass.STORE, srcs=(2, 3)))
        h.finish()
        assert h.resolved[1] is True

    def test_branch_is_ace(self):
        h = Harness()
        h.feed(make_dyn(1, OpClass.BRANCH, srcs=(2,)))
        h.finish()
        assert h.resolved[1] is True

    def test_nop_never_ace(self):
        h = Harness()
        h.feed(make_dyn(1, OpClass.NOP))
        h.finish()
        assert h.resolved[1] is False

    def test_prefetch_never_ace(self):
        h = Harness()
        h.feed(make_dyn(1, OpClass.PREFETCH, srcs=(2,)))
        h.finish()
        assert h.resolved[1] is False

    def test_output_flag_makes_ace(self):
        h = Harness()
        d = make_dyn(1, OpClass.IALU, dest=1, srcs=())
        d.static.is_output = True
        h.feed(d)
        h.finish()
        assert h.resolved[1] is True


class TestLiveness:
    def test_value_feeding_store_is_ace(self):
        h = Harness()
        h.feed(
            make_dyn(1, OpClass.IALU, dest=5, srcs=()),
            make_dyn(2, OpClass.STORE, srcs=(5, 6)),
        )
        h.finish()
        assert h.resolved[1] is True

    def test_overwritten_unread_is_dead(self):
        h = Harness()
        h.feed(
            make_dyn(1, OpClass.IALU, dest=5, srcs=()),
            make_dyn(2, OpClass.IALU, dest=5, srcs=()),  # overwrites r5
            make_dyn(3, OpClass.STORE, srcs=(5,)),
        )
        h.finish()
        assert h.resolved[1] is False
        assert h.resolved[2] is True

    def test_transitive_chain_to_root(self):
        h = Harness()
        h.feed(
            make_dyn(1, OpClass.IALU, dest=1, srcs=()),
            make_dyn(2, OpClass.IALU, dest=2, srcs=(1,)),
            make_dyn(3, OpClass.IALU, dest=3, srcs=(2,)),
            make_dyn(4, OpClass.STORE, srcs=(3,)),
        )
        h.finish()
        assert all(h.resolved[t] for t in (1, 2, 3, 4))

    def test_transitively_dead_chain(self):
        """Read only by a dead instruction -> still dead (the paper's
        'dynamically dead' transitive case)."""
        h = Harness()
        h.feed(
            make_dyn(1, OpClass.IALU, dest=1, srcs=()),
            make_dyn(2, OpClass.IALU, dest=2, srcs=(1,)),  # reads r1, dies
            make_dyn(3, OpClass.IALU, dest=1, srcs=()),
            make_dyn(4, OpClass.IALU, dest=2, srcs=()),
        )
        h.finish()
        assert h.resolved[1] is False
        assert h.resolved[2] is False

    def test_read_by_nop_like_consumer_not_ace(self):
        h = Harness()
        h.feed(
            make_dyn(1, OpClass.IALU, dest=5, srcs=()),
            make_dyn(2, OpClass.PREFETCH, srcs=(5,)),  # un-ACE reader
            make_dyn(3, OpClass.IALU, dest=5, srcs=()),
        )
        h.finish()
        assert h.resolved[1] is False

    def test_branch_source_chain_ace(self):
        h = Harness()
        h.feed(
            make_dyn(1, OpClass.IALU, dest=4, srcs=()),
            make_dyn(2, OpClass.BRANCH, srcs=(4,)),
        )
        h.finish()
        assert h.resolved[1] is True

    def test_diamond_style_flip(self):
        """Same PC: one instance consumed (ACE), one overwritten (dead)."""
        h = Harness()
        st = StaticInst(pc=0x5000, opclass=OpClass.IALU, dest=9, srcs=())

        def instance(tag):
            d = DynInst(tag=tag, thread=0, static=st, stream_pos=tag)
            d.state = DynState.COMMITTED
            return d

        h.feed(
            instance(1),
            make_dyn(2, OpClass.STORE, srcs=(9,)),  # consumed: ACE
            instance(3),
            make_dyn(4, OpClass.IALU, dest=9, srcs=()),  # overwritten: dead
            make_dyn(5, OpClass.STORE, srcs=(9,)),
        )
        h.finish()
        assert h.resolved[1] is True
        assert h.resolved[3] is False


class TestWindow:
    def test_unresolved_until_window_or_flush(self):
        h = Harness(window=10)
        d = make_dyn(1, OpClass.IALU, dest=5, srcs=())
        h.feed(d)
        assert 1 not in h.resolved  # still pending
        h.finish()
        assert h.resolved[1] is False

    def test_window_exit_declares_unace(self):
        h = Harness(window=3)
        h.feed(make_dyn(1, OpClass.IALU, dest=5, srcs=()))
        for t in range(2, 7):
            h.feed(make_dyn(t, OpClass.IALU, dest=6, srcs=()))
        assert h.resolved[1] is False  # exited the window unmarked

    def test_late_ace_counted(self):
        """A read arriving after window expiry is the documented
        approximation: counted, not crashed."""
        h = Harness(window=2)
        h.feed(make_dyn(1, OpClass.IALU, dest=5, srcs=()))
        h.feed(make_dyn(2, OpClass.IALU, dest=6, srcs=()))
        h.feed(make_dyn(3, OpClass.IALU, dest=6, srcs=()))
        assert h.resolved[1] is False
        h.feed(make_dyn(4, OpClass.STORE, srcs=(5,)))
        h.finish()
        assert h.analyzer.stats.late_ace >= 1
        assert h.resolved[1] is False  # resolution is final

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ACEAnalyzer(1, window_size=0)


class TestThreads:
    def test_threads_independent(self):
        h = Harness(threads=2)
        h.feed(
            make_dyn(1, OpClass.IALU, dest=5, srcs=(), thread=0),
            make_dyn(2, OpClass.STORE, srcs=(5,), thread=1),  # different thread!
        )
        h.finish()
        assert h.resolved[1] is False  # thread 1's read is of its own r5


class TestStats:
    def test_counts(self):
        h = Harness()
        h.feed(
            make_dyn(1, OpClass.IALU, dest=5, srcs=()),
            make_dyn(2, OpClass.STORE, srcs=(5,)),
            make_dyn(3, OpClass.NOP),
        )
        h.finish()
        s = h.analyzer.stats
        assert s.committed == 3
        assert s.ace == 2
        assert s.unace == 1
        assert s.ace_fraction == pytest.approx(2 / 3)


class TestRegisterLifetimes:
    def test_rf_callback_on_overwrite(self):
        lifetimes = []
        analyzer = ACEAnalyzer(
            1, window_size=100,
            rf_cb=lambda rec, end: lifetimes.append((rec.commit_cycle, rec.last_read_cycle, end)),
        )
        d1 = make_dyn(1, OpClass.IALU, dest=5, srcs=())
        d2 = make_dyn(2, OpClass.STORE, srcs=(5,))
        d3 = make_dyn(3, OpClass.IALU, dest=5, srcs=())
        analyzer.commit(d1, 10)
        analyzer.commit(d2, 20)
        analyzer.commit(d3, 30)
        assert lifetimes == [(10, 20, 30)]

    def test_rf_callback_on_flush(self):
        lifetimes = []
        analyzer = ACEAnalyzer(
            1, window_size=100, rf_cb=lambda rec, end: lifetimes.append(end)
        )
        analyzer.commit(make_dyn(1, OpClass.IALU, dest=5, srcs=()), 10)
        analyzer.flush(99)
        assert lifetimes == [99]
