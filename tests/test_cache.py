"""Set-associative cache: hits, LRU, eviction, and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.memory.cache import SetAssocCache


def small_cache(assoc=2, sets=4, line=64):
    return SetAssocCache(
        CacheConfig(size=assoc * sets * line, assoc=assoc, line_size=line, latency=1),
        name="test",
    )


class TestBasicBehaviour:
    def test_first_access_misses(self):
        c = small_cache()
        assert c.access(0x1000) is False

    def test_second_access_hits(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x1000) is True

    def test_same_line_different_offset_hits(self):
        c = small_cache(line=64)
        c.access(0x1000)
        assert c.access(0x103F) is True

    def test_adjacent_line_misses(self):
        c = small_cache(line=64)
        c.access(0x1000)
        assert c.access(0x1040) is False

    def test_stats_count(self):
        c = small_cache()
        c.access(0x0)
        c.access(0x0)
        c.access(0x40, is_write=True)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.writes == 1
        assert c.stats.miss_rate == pytest.approx(2 / 3)

    def test_lookup_does_not_modify(self):
        c = small_cache()
        assert c.lookup(0x1000) is False
        assert c.access(0x1000) is False  # still a miss: lookup didn't fill
        assert c.lookup(0x1000) is True
        assert c.stats.accesses == 1  # lookups aren't counted

    def test_invalidate_all(self):
        c = small_cache()
        c.access(0x1000)
        c.invalidate_all()
        assert c.occupancy == 0
        assert c.access(0x1000) is False


class TestLRUReplacement:
    def test_eviction_of_lru(self):
        # 2-way set: A, B fill it; touching A makes B the LRU; C evicts B.
        c = small_cache(assoc=2, sets=1)
        A, B, C = 0x0, 0x40 * 1, 0x40 * 2  # one set only -> same set
        c.access(A)
        c.access(B)
        c.access(A)  # A is MRU
        c.access(C)  # evicts B
        assert c.access(A) is True
        assert c.access(B) is False

    def test_eviction_counter(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0x0)
        c.access(0x40)
        assert c.stats.evictions == 1

    def test_occupancy_capped_by_capacity(self):
        c = small_cache(assoc=2, sets=4)
        for i in range(100):
            c.access(i * 64)
        assert c.occupancy <= 8

    def test_working_set_fits_no_misses_after_warm(self):
        c = small_cache(assoc=4, sets=8, line=64)
        lines = [i * 64 for i in range(32)]  # exactly capacity
        for a in lines:
            c.access(a)
        for a in lines:
            assert c.access(a) is True


class TestGeometry:
    def test_indexing_distributes_across_sets(self):
        c = small_cache(assoc=1, sets=4, line=64)
        for i in range(4):
            c.access(i * 64)
        assert c.occupancy == 4  # each line in its own set

    def test_wraparound_conflicts(self):
        c = small_cache(assoc=1, sets=4, line=64)
        c.access(0)
        c.access(4 * 64)  # same set, conflict
        assert c.access(0) is False

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache(CacheConfig(size=100, assoc=2, line_size=64, latency=1))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
def test_property_occupancy_never_exceeds_capacity(addrs):
    c = small_cache(assoc=2, sets=8)
    for a in addrs:
        c.access(a)
    assert c.occupancy <= 16


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
def test_property_hits_plus_misses_equals_accesses(addrs):
    c = small_cache()
    for a in addrs:
        c.access(a)
    assert c.stats.hits + c.stats.misses == c.stats.accesses == len(addrs)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=100))
def test_property_immediate_reaccess_always_hits(addrs):
    c = small_cache()
    for a in addrs:
        c.access(a)
        assert c.access(a) is True


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=1, max_size=200),
    st.integers(min_value=0, max_value=3),
)
def test_property_lru_most_recent_within_assoc_survives(addrs, _seed):
    """The most recently accessed line always remains resident."""
    c = small_cache(assoc=2, sets=4)
    for a in addrs:
        c.access(a)
        assert c.lookup(a) is True
