"""Event-level pipeline tests on hand-crafted micro-programs."""

import pytest

from repro.config import MachineConfig, ReliabilityConfig, SimulationConfig
from repro.core.pipeline import SMTPipeline
from repro.isa.instruction import (
    BranchBehavior,
    MemBehavior,
    MemPattern,
    OpClass,
    StaticInst,
)
from repro.isa.program import BasicBlock, SyntheticProgram


def tiny_sim(cycles=800, **kw):
    rel = ReliabilityConfig(interval_cycles=200, ace_window=500)
    return SimulationConfig(
        max_cycles=cycles, warmup_cycles=0, seed=1,
        bp_warmup_instructions=kw.pop("bp_warm", 500), reliability=rel,
    )


def straightline_loop(n_alu=6, mem=None, branch_bias=1.0):
    """One block of ALU ops (optionally a load) that jumps to itself."""
    insts = []
    pc = 0x1000
    for i in range(n_alu):
        insts.append(StaticInst(pc=pc, opclass=OpClass.IALU, dest=i % 4, srcs=((i + 1) % 4,)))
        pc += 4
    if mem is not None:
        insts.append(StaticInst(pc=pc, opclass=OpClass.LOAD, dest=5, srcs=(1,), mem=mem))
        pc += 4
    insts.append(StaticInst(pc=pc, opclass=OpClass.JUMP, taken_block=0))
    block = BasicBlock(bid=0, insts=insts)
    prog = SyntheticProgram(name="micro", blocks=[block])
    prog.validate()
    return prog


class TestStraightline:
    def test_simple_loop_commits_steadily(self):
        res = SMTPipeline([straightline_loop()], sim=tiny_sim()).run()
        assert res.committed > 500
        assert res.squashed == 0  # unconditional jumps never mispredict

    def test_jump_never_counts_as_branch(self):
        pipe = SMTPipeline([straightline_loop()], sim=tiny_sim())
        res = pipe.run()
        assert pipe.bp.stats.direction_lookups == 0

    def test_nop_program(self):
        insts = [StaticInst(pc=0x1000 + 4 * i, opclass=OpClass.NOP) for i in range(6)]
        insts.append(StaticInst(pc=0x1020, opclass=OpClass.JUMP, taken_block=0))
        prog = SyntheticProgram(name="nops", blocks=[BasicBlock(bid=0, insts=insts)])
        res = SMTPipeline([prog], sim=tiny_sim(cycles=400)).run()
        assert res.committed > 100
        assert res.ace_fraction < 0.5  # NOPs are un-ACE


class TestMemoryPath:
    def test_hot_loads_hit_after_warm(self):
        mem = MemBehavior(MemPattern.HOT, base=0x10000, footprint=1 << 16, hot_size=2048)
        pipe = SMTPipeline([straightline_loop(mem=mem)], sim=tiny_sim())
        res = pipe.run()
        assert res.l1d_miss_rate < 0.2

    def test_huge_random_loads_miss(self):
        mem = MemBehavior(
            MemPattern.RANDOM, base=0x10000, footprint=1 << 28, page_local_16=0
        )
        pipe = SMTPipeline([straightline_loop(mem=mem)], sim=tiny_sim(bp_warm=0))
        res = pipe.run()
        assert res.l2_misses > 10

    def test_l2_misses_slow_the_thread(self):
        hot = MemBehavior(MemPattern.HOT, base=0x10000, footprint=1 << 16, hot_size=2048)
        cold = MemBehavior(
            MemPattern.RANDOM, base=0x10000, footprint=1 << 28, page_local_16=0
        )
        fast = SMTPipeline([straightline_loop(mem=hot)], sim=tiny_sim()).run()
        slow = SMTPipeline([straightline_loop(mem=cold)], sim=tiny_sim(bp_warm=0)).run()
        assert fast.ipc > slow.ipc


class TestBranchRecovery:
    def _branchy(self, bias, predictability):
        """Block A ends in a conditional branch to itself or block B."""
        a = BasicBlock(bid=0)
        pc = 0x1000
        for i in range(4):
            a.insts.append(StaticInst(pc=pc, opclass=OpClass.IALU, dest=i % 3, srcs=(2,)))
            pc += 4
        a.insts.append(
            StaticInst(
                pc=pc, opclass=OpClass.BRANCH, srcs=(0,),
                branch=BranchBehavior(taken_bias=bias, predictability=predictability),
                taken_block=0, fall_block=1,
            )
        )
        b = BasicBlock(bid=1)
        b.insts.append(StaticInst(pc=pc + 4, opclass=OpClass.JUMP, taken_block=0))
        prog = SyntheticProgram(name="branchy", blocks=[a, b])
        prog.validate()
        return prog

    def test_random_branch_causes_squashes(self):
        prog = self._branchy(bias=0.5, predictability=0.0)
        pipe = SMTPipeline([prog], sim=tiny_sim())
        res = pipe.run()
        assert res.squashed > 0
        assert 0.3 < res.bp_accuracy < 0.9

    def test_deterministic_branch_no_steady_state_squashes(self):
        prog = self._branchy(bias=1.0, predictability=1.0)
        res = SMTPipeline([prog], sim=tiny_sim()).run()
        # After bp warm-up, the always-taken branch never mispredicts.
        assert res.bp_accuracy > 0.99

    def test_commit_stream_matches_architectural_path(self):
        """Despite wrong-path excursions, the committed stream must be
        exactly the correct path (the functional walk)."""
        prog = self._branchy(bias=0.5, predictability=0.0)
        pipe = SMTPipeline([prog], sim=tiny_sim(cycles=600))
        committed_pcs = []
        orig = pipe.analyzer.commit
        pipe.analyzer.commit = lambda d, c: (committed_pcs.append(d.pc), orig(d, c))
        pipe.run()

        from repro.isa.program import ThreadContext

        ctx = ThreadContext(prog, seed=pipe.sim.seed * 7919)
        # The pipeline fast-forwards bp_warmup_instructions before
        # timing; the committed stream starts there.
        expected = []
        for i in range(pipe.sim.bp_warmup_instructions + len(committed_pcs)):
            st = ctx.peek()
            if i >= pipe.sim.bp_warmup_instructions:
                expected.append(st.pc)
            if st.opclass.is_control:
                t, tg = ctx.resolve_control(st)
                ctx.advance_control(st, t, tg)
            else:
                ctx.advance()
        assert committed_pcs == expected


class TestCommitWidth:
    def test_commit_bandwidth_respected(self):
        programs = [straightline_loop() for _ in range(2)]
        pipe = SMTPipeline(programs, sim=tiny_sim(cycles=400))
        per_cycle = []
        orig = pipe._commit

        def counted():
            before = pipe.total_committed
            orig()
            per_cycle.append(pipe.total_committed - before)

        pipe._commit = counted
        pipe.run()
        assert max(per_cycle) <= pipe.machine.commit_width


class TestMultithreadSharing:
    def test_two_identical_threads_share_fairly(self):
        programs = [straightline_loop(), straightline_loop()]
        res = SMTPipeline(programs, sim=tiny_sim()).run()
        a, b = res.per_thread_committed
        assert abs(a - b) / max(a, b) < 0.2

    def test_thread_count_matches_programs(self):
        programs = [straightline_loop() for _ in range(3)]
        pipe = SMTPipeline(programs, sim=tiny_sim(cycles=200))
        assert pipe.num_threads == 3
        assert pipe.machine.num_threads == 3

    def test_empty_program_list_rejected(self):
        with pytest.raises(ValueError):
            SMTPipeline([], sim=tiny_sim())
