"""Metric helpers: harmonic IPC, weighted speedup, PVE, means."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import (
    geometric_mean,
    harmonic_ipc,
    normalized,
    pve_from_intervals,
    weighted_speedup,
)


class TestHarmonicIPC:
    def test_equal_shares(self):
        # Each thread at half its solo speed: hmean of relative IPCs = N / sum(2) = 0.5
        assert harmonic_ipc([1.0, 1.0], [2.0, 2.0]) == pytest.approx(0.5)

    def test_fairness_penalized(self):
        balanced = harmonic_ipc([1.0, 1.0], [2.0, 2.0])
        skewed = harmonic_ipc([1.9, 0.1], [2.0, 2.0])
        assert skewed < balanced

    def test_starved_thread_zeroes(self):
        assert harmonic_ipc([1.0, 0.0], [2.0, 2.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            harmonic_ipc([1.0], [1.0, 2.0])

    def test_zero_single_rejected(self):
        with pytest.raises(ValueError):
            harmonic_ipc([1.0], [0.0])

    def test_empty(self):
        assert harmonic_ipc([], []) == 0.0


class TestWeightedSpeedup:
    def test_value(self):
        assert weighted_speedup([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)

    def test_mismatch(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [])


class TestNormalized:
    def test_ratio(self):
        assert normalized(3.0, 2.0) == 1.5

    def test_zero_baseline(self):
        assert normalized(3.0, 0.0) == 0.0


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestPVE:
    def test_fraction_exceeding(self):
        assert pve_from_intervals([0.1, 0.3, 0.5, 0.7], target=0.4) == 0.5

    def test_boundary_not_emergency(self):
        assert pve_from_intervals([0.4], target=0.4) == 0.0

    def test_empty(self):
        assert pve_from_intervals([], target=0.5) == 0.0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8),
)
def test_property_harmonic_leq_min_relative(smt):
    single = [10.0] * len(smt)
    h = harmonic_ipc(smt, single)
    rel = [s / 10.0 for s in smt]
    assert h <= max(rel) + 1e-9
    assert h >= min(rel) - 1e-9


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=40),
       st.floats(min_value=0.0, max_value=1.0))
def test_property_pve_bounded(vals, target):
    assert 0.0 <= pve_from_intervals(vals, target) <= 1.0
