"""TLBs and the composed memory hierarchy."""

import pytest

from repro.config import MachineConfig, TLBConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tlb import TLB


class TestTLB:
    def test_miss_then_hit(self):
        t = TLB(TLBConfig(entries=16, assoc=4, miss_latency=200))
        assert t.access(0x1000) == 200
        assert t.access(0x1000) == 0

    def test_same_page_hits(self):
        t = TLB(TLBConfig(entries=16, assoc=4, miss_latency=200))
        t.access(0x1000)
        assert t.access(0x1FFF) == 0  # same 4KB page

    def test_different_page_misses(self):
        t = TLB(TLBConfig(entries=16, assoc=4, miss_latency=200))
        t.access(0x1000)
        assert t.access(0x2000) == 200

    def test_capacity_eviction(self):
        t = TLB(TLBConfig(entries=4, assoc=1, miss_latency=100))
        pages = [i * 4096 * 4 for i in range(8)]  # conflict in set 0... spread
        for p in pages:
            t.access(p)
        # at most 4 entries can be resident
        hits = sum(1 for p in pages if t.access(p) == 0)
        assert hits <= 4

    def test_invalidate(self):
        t = TLB(TLBConfig(entries=16, assoc=4, miss_latency=200))
        t.access(0x1000)
        t.invalidate_all()
        assert t.access(0x1000) == 200


class TestHierarchyTiming:
    def setup_method(self):
        self.mem = MemoryHierarchy(MachineConfig())

    def test_l1d_hit_latency(self):
        self.mem.access_data(0x1000, 0)  # warm everything
        res = self.mem.access_data(0x1000, 0)
        assert res.latency == self.mem.machine.l1d.latency
        assert not res.l1_miss and not res.l2_miss

    def test_cold_miss_goes_to_memory(self):
        res = self.mem.access_data(0x5000, 0)
        assert res.l1_miss and res.l2_miss and res.tlb_miss
        expected = (
            self.mem.machine.l1d.latency
            + self.mem.machine.l2.latency
            + self.mem.machine.memory_latency
            + self.mem.machine.dtlb.miss_latency
        )
        assert res.latency == expected

    def test_l2_hit_after_l1_eviction(self):
        # Touch a line, thrash L1 set, line should still be in L2.
        m = self.mem.machine
        target = 0x0
        self.mem.access_data(target, 0)
        sets = m.l1d.num_sets
        for i in range(1, m.l1d.assoc + 2):
            self.mem.access_data(target + i * sets * m.l1d.line_size, 0)
        res = self.mem.access_data(target, 0)
        assert res.l1_miss and not res.l2_miss

    def test_l2_miss_counter(self):
        before = self.mem.l2_miss_count
        self.mem.access_data(0x9000, 0)
        assert self.mem.l2_miss_count == before + 1
        self.mem.access_data(0x9000, 0)
        assert self.mem.l2_miss_count == before + 1

    def test_instruction_path_separate_from_data(self):
        self.mem.access_instr(0x4000, 0)
        res = self.mem.access_data(0x4000, 0)
        assert res.l1_miss  # L1I fill does not populate L1D

    def test_instruction_second_access_hits(self):
        self.mem.access_instr(0x4000, 0)
        res = self.mem.access_instr(0x4000, 0)
        assert res.latency == self.mem.machine.l1i.latency

    def test_unified_l2_shared_by_instr_and_data(self):
        self.mem.access_instr(0x4000, 0)
        res = self.mem.access_data(0x4000, 0)
        assert not res.l2_miss  # the I-fetch already filled L2

    def test_reset_stats(self):
        self.mem.access_data(0x1234, 0)
        self.mem.reset_stats()
        assert self.mem.l2_miss_count == 0
        assert self.mem.l1d.stats.accesses == 0


class TestThreadIsolation:
    def setup_method(self):
        self.mem = MemoryHierarchy(MachineConfig())

    def test_same_address_different_threads_dont_share_lines(self):
        self.mem.access_data(0x1000, 0)
        res = self.mem.access_data(0x1000, 1)
        assert res.l1_miss  # different address space

    def test_thread_addr_injective_per_thread(self):
        a0 = MemoryHierarchy.thread_addr(0x1000, 0)
        a1 = MemoryHierarchy.thread_addr(0x1000, 1)
        assert a0 != a1

    def test_thread_addr_perturbs_set_index(self):
        # Identical virtual layouts must not collide on the same L1 sets.
        m = self.mem.machine
        shift = m.l1d.line_size.bit_length() - 1
        mask = m.l1d.num_sets - 1
        set0 = (MemoryHierarchy.thread_addr(0x1000, 0) >> shift) & mask
        set1 = (MemoryHierarchy.thread_addr(0x1000, 1) >> shift) & mask
        assert set0 != set1
