"""Issue scheduling: oldest-first baseline and VISA (Section 2.1)."""

import pytest

from repro.core.issue_queue import IssueQueue
from repro.core.scheduler import OldestFirstScheduler, VISAScheduler, make_scheduler
from repro.isa.instruction import DynInst, OpClass, StaticInst


def dyn(tag, ace_pred):
    st = StaticInst(pc=0x1000 + tag * 4, opclass=OpClass.IALU, dest=1, srcs=())
    d = DynInst(tag=tag, thread=0, static=st, stream_pos=tag)
    d.ace_pred = ace_pred
    return d


def iq_with(insts):
    iq = IssueQueue(64, 1)
    for d in insts:
        iq.insert(d, cycle=0)
    return iq


class TestOldestFirst:
    def test_program_order(self):
        iq = iq_with([dyn(3, False), dyn(1, True), dyn(2, False)])
        sel = OldestFirstScheduler().select(iq, width=3)
        assert [d.tag for d in sel] == [1, 2, 3]

    def test_width_respected(self):
        iq = iq_with([dyn(i, True) for i in range(1, 9)])
        assert len(OldestFirstScheduler().select(iq, width=4)) == 4

    def test_empty_ready(self):
        iq = IssueQueue(8, 1)
        assert OldestFirstScheduler().select(iq, width=4) == []


class TestVISA:
    def test_ace_bypasses_unace(self):
        """Once there is a ready ACE instruction, it bypasses all ready
        un-ACE instructions (Section 2.1)."""
        iq = iq_with([dyn(1, False), dyn(2, False), dyn(3, True)])
        sel = VISAScheduler().select(iq, width=2)
        assert sel[0].tag == 3
        assert sel[1].tag == 1

    def test_ace_in_program_order(self):
        iq = iq_with([dyn(4, True), dyn(2, True), dyn(3, True)])
        sel = VISAScheduler().select(iq, width=3)
        assert [d.tag for d in sel] == [2, 3, 4]

    def test_unace_fill_remaining_slots(self):
        """If fewer ready ACE instructions than issue slots exist, the
        ready un-ACE instructions issue in program order."""
        iq = iq_with([dyn(1, False), dyn(2, True), dyn(3, False)])
        sel = VISAScheduler().select(iq, width=3)
        assert [d.tag for d in sel] == [2, 1, 3]

    def test_unace_blocked_when_slots_full_of_ace(self):
        iq = iq_with([dyn(1, False)] + [dyn(i, True) for i in range(2, 6)])
        sel = VISAScheduler().select(iq, width=4)
        assert all(d.ace_pred for d in sel)

    def test_all_unace_behaves_like_oldest(self):
        iq = iq_with([dyn(3, False), dyn(1, False)])
        sel = VISAScheduler().select(iq, width=2)
        assert [d.tag for d in sel] == [1, 3]


class TestFactory:
    def test_names(self):
        assert isinstance(make_scheduler("oldest"), OldestFirstScheduler)
        assert isinstance(make_scheduler("visa"), VISAScheduler)
        assert isinstance(make_scheduler("VISA"), VISAScheduler)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_scheduler("lifo")
