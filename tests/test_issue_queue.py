"""Shared issue queue: wakeup, readiness, squash, counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.issue_queue import IssueQueue
from repro.isa.instruction import DynInst, DynState, OpClass, StaticInst


def alu(pc=0x10, dest=1, srcs=(2,)):
    return StaticInst(pc=pc, opclass=OpClass.IALU, dest=dest, srcs=srcs)


def dyn(tag, thread=0, src_tags=(), ace_pred=True):
    d = DynInst(tag=tag, thread=thread, static=alu(pc=0x10 + tag * 4), stream_pos=tag)
    d.src_tags = list(src_tags)
    d.ace_pred = ace_pred
    return d


def bits_of(inst):
    return 96 if inst.ace_pred else 12


def make_iq(cap=8, threads=2):
    return IssueQueue(cap, threads, bits_of=bits_of)


class TestInsertAndReadiness:
    def test_no_sources_born_ready(self):
        iq = make_iq()
        iq.insert(dyn(1), cycle=0)
        assert iq.ready_count == 1
        assert iq.waiting_count == 0

    def test_pending_source_waits(self):
        iq = make_iq()
        iq.insert(dyn(2, src_tags=[1]), cycle=0)
        assert iq.waiting_count == 1
        assert iq.ready_count == 0

    def test_wakeup_moves_to_ready(self):
        iq = make_iq()
        d = dyn(2, src_tags=[1])
        iq.insert(d, cycle=0)
        iq.wakeup(1, cycle=3)
        assert iq.ready_count == 1
        assert d.ready_cycle == 3

    def test_partial_wakeup_stays_waiting(self):
        iq = make_iq()
        d = dyn(3, src_tags=[1, 2])
        iq.insert(d, cycle=0)
        iq.wakeup(1, cycle=1)
        assert iq.waiting_count == 1
        iq.wakeup(2, cycle=2)
        assert iq.ready_count == 1

    def test_overflow_raises(self):
        iq = make_iq(cap=1)
        iq.insert(dyn(1), cycle=0)
        with pytest.raises(RuntimeError):
            iq.insert(dyn(2), cycle=0)

    def test_dispatch_cycle_recorded(self):
        iq = make_iq()
        d = dyn(1)
        iq.insert(d, cycle=7)
        assert d.dispatch_cycle == 7
        assert d.state == DynState.DISPATCHED


class TestCounters:
    def test_pred_ace_bits_tracks_inserts(self):
        iq = make_iq()
        iq.insert(dyn(1, ace_pred=True), cycle=0)
        iq.insert(dyn(2, ace_pred=False), cycle=0)
        assert iq.pred_ace_bits == 96 + 12

    def test_pred_ace_bits_on_issue(self):
        iq = make_iq()
        d = dyn(1, ace_pred=True)
        iq.insert(d, cycle=0)
        iq.remove_issued(d)
        assert iq.pred_ace_bits == 0

    def test_ready_pred_ace_counter(self):
        iq = make_iq()
        iq.insert(dyn(1, ace_pred=True), cycle=0)
        iq.insert(dyn(2, ace_pred=False), cycle=0)
        w = dyn(3, src_tags=[1], ace_pred=True)
        iq.insert(w, cycle=0)
        assert iq.ready_pred_ace == 1
        iq.wakeup(1, cycle=1)
        assert iq.ready_pred_ace == 2

    def test_per_thread_counts(self):
        iq = make_iq()
        iq.insert(dyn(1, thread=0), cycle=0)
        iq.insert(dyn(2, thread=1), cycle=0)
        iq.insert(dyn(3, thread=1), cycle=0)
        assert iq.thread_count(0) == 1
        assert iq.thread_count(1) == 2

    def test_free_entries(self):
        iq = make_iq(cap=4)
        iq.insert(dyn(1), cycle=0)
        assert iq.free_entries == 3


class TestSquash:
    def test_squash_removes_younger_of_thread(self):
        iq = make_iq()
        iq.insert(dyn(1, thread=0), cycle=0)
        iq.insert(dyn(2, thread=0, src_tags=[99]), cycle=0)
        iq.insert(dyn(3, thread=1), cycle=0)
        removed = iq.squash_thread(0, after_tag=1)
        assert [d.tag for d in removed] == [2]
        assert len(iq) == 2
        assert iq.thread_count(0) == 1

    def test_squash_restores_counters(self):
        iq = make_iq()
        iq.insert(dyn(1, thread=0, ace_pred=True), cycle=0)
        iq.insert(dyn(2, thread=0, ace_pred=True), cycle=0)
        iq.squash_thread(0, after_tag=1)
        assert iq.pred_ace_bits == 96
        assert iq.ready_pred_ace == 1

    def test_squashed_consumer_not_woken(self):
        iq = make_iq()
        d = dyn(2, thread=0, src_tags=[1])
        iq.insert(d, cycle=0)
        iq.squash_thread(0, after_tag=1)
        d.state = DynState.SQUASHED
        iq.wakeup(1, cycle=5)  # must not resurrect
        assert iq.ready_count == 0

    def test_drop_consumers(self):
        iq = make_iq()
        d = dyn(2, src_tags=[1])
        iq.insert(d, cycle=0)
        iq.drop_consumers(1)
        iq.wakeup(1, cycle=1)
        assert iq.waiting_count == 1  # never woken


class TestReadyOrdering:
    def test_ready_ages_sorted_by_tag(self):
        iq = make_iq()
        a = dyn(5, src_tags=[99])
        iq.insert(a, cycle=0)
        iq.insert(dyn(7), cycle=0)
        iq.wakeup(99, cycle=1)  # tag 5 becomes ready after tag 7
        ages = [d.tag for d in iq.ready_ages()]
        assert ages == [5, 7]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=30))
def test_property_counter_consistency(ops):
    """pred_ace_bits always equals the sum over resident instructions."""
    iq = IssueQueue(64, 1, bits_of=bits_of)
    resident = {}
    tag = 0
    for make_ready, ace in ops:
        tag += 1
        d = dyn(tag, src_tags=[] if make_ready else [tag + 1000], ace_pred=ace)
        iq.insert(d, cycle=0)
        resident[tag] = d
    expected = sum(bits_of(d) for d in resident.values())
    assert iq.pred_ace_bits == expected
    assert len(iq) == len(resident)
    assert iq.ready_pred_ace == sum(
        1 for d in iq.ready.values() if d.ace_pred
    )
