"""Table 3 workload mixes and personalities."""

import pytest

from repro.isa.personalities import PERSONALITIES, get_personality
from repro.workloads import CATEGORIES, MIXES, get_mix, mixes_in_category


class TestTable3:
    """The nine mixes must be exactly the paper's Table 3."""

    TABLE3 = {
        "CPU-A": ("bzip2", "eon", "gcc", "perlbmk"),
        "CPU-B": ("gap", "facerec", "crafty", "mesa"),
        "CPU-C": ("gcc", "perlbmk", "facerec", "crafty"),
        "MIX-A": ("gcc", "mcf", "vpr", "perlbmk"),
        "MIX-B": ("mcf", "mesa", "crafty", "equake"),
        "MIX-C": ("vpr", "facerec", "swim", "gap"),
        "MEM-A": ("mcf", "equake", "vpr", "swim"),
        "MEM-B": ("lucas", "galgel", "mcf", "vpr"),
        "MEM-C": ("equake", "swim", "twolf", "galgel"),
    }

    def test_all_nine_present(self):
        assert set(MIXES) == set(self.TABLE3)

    @pytest.mark.parametrize("name", sorted(TABLE3))
    def test_mix_contents(self, name):
        assert get_mix(name).benchmarks == self.TABLE3[name]

    def test_every_benchmark_has_personality(self):
        for benchmarks in self.TABLE3.values():
            for b in benchmarks:
                get_personality(b)

    def test_categories(self):
        assert [m.category for m in mixes_in_category("CPU")] == ["CPU"] * 3
        assert len(mixes_in_category("MEM")) == 3
        assert CATEGORIES == ("CPU", "MIX", "MEM")

    def test_groups_sorted(self):
        assert [m.group for m in mixes_in_category("MIX")] == ["A", "B", "C"]

    def test_unknown_mix_raises(self):
        with pytest.raises(KeyError):
            get_mix("CPU-Z")

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            mixes_in_category("GPU")


class TestMixPrograms:
    def test_one_program_per_thread(self):
        programs = get_mix("CPU-A").programs(seed=1)
        assert len(programs) == 4
        assert [p.name for p in programs] == ["bzip2", "eon", "gcc", "perlbmk"]

    def test_thread_seeds_decorrelated(self):
        # MEM-B contains mcf and vpr; CPU-C repeats gcc-family threads —
        # same-benchmark threads must still be distinct instances.
        programs = get_mix("MIX-A").programs(seed=1)
        again = get_mix("MIX-A").programs(seed=2)
        assert programs[0].seed != again[0].seed


class TestPersonalities:
    def test_eighteen_table1_benchmarks(self):
        assert len(PERSONALITIES) == 18

    def test_all_validate(self):
        for p in PERSONALITIES.values():
            p.validate()

    def test_ref_accuracy_present_for_all(self):
        for p in PERSONALITIES.values():
            assert p.ref_pc_accuracy is not None
            assert 0.5 < p.ref_pc_accuracy <= 1.0

    def test_mesa_has_lowest_paper_accuracy(self):
        # Table 1: mesa = 74.9% is the paper's worst case.
        worst = min(PERSONALITIES.values(), key=lambda p: p.ref_pc_accuracy)
        assert worst.name == "mesa"

    def test_mem_personalities_bigger_footprints(self):
        cpu = [p.mem_footprint for p in PERSONALITIES.values() if p.category == "cpu"]
        mem = [p.mem_footprint for p in PERSONALITIES.values() if p.category == "mem"]
        assert max(cpu) < min(mem)

    def test_mcf_is_pointer_chaser(self):
        mcf = get_personality("mcf")
        assert mcf.load_chain_frac > 0.3
        assert mcf.mem_footprint >= 32 * 1024 * 1024

    def test_unknown_personality_raises(self):
        with pytest.raises(KeyError):
            get_personality("doom")

    def test_validation_rejects_bad_fraction(self):
        import dataclasses
        p = dataclasses.replace(get_personality("gcc"), dead_frac=1.5)
        with pytest.raises(ValueError):
            p.validate()

    def test_validation_rejects_tiny_blocks(self):
        import dataclasses
        p = dataclasses.replace(get_personality("gcc"), block_size_mean=1)
        with pytest.raises(ValueError):
            p.validate()
