"""Fixture: `slots` — attribute assigned but missing from __slots__."""


class HotPathEntry:
    __slots__ = ("tag", "thread")

    def __init__(self, tag, thread):
        self.tag = tag
        self.thread = thread

    def mark_squashed(self, cycle):
        # `squash_cycle` is not in __slots__: AttributeError at runtime,
        # but only on the (rare) squash path.
        self.squash_cycle = cycle


class CompleteEntry:
    """Complete declaration: must NOT fire."""

    __slots__ = ("tag", "state", "ready_cycle")

    def __init__(self, tag):
        self.tag = tag
        self.state = 0
        self.ready_cycle = -1

    def wake(self, cycle):
        self.ready_cycle = cycle
        self.state = 1
