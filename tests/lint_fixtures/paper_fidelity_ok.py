"""Negative fixture for ``paper-fidelity``: every catalogued identifier
flows from config or uses non-paper values in legitimate ways."""

from repro.config import ReliabilityConfig

_REL = ReliabilityConfig()

interval_cycles = _REL.interval_cycles  # flows from config: silent

threshold = 16  # non-catalogued identifier: silent


def simulate(cycles, t_cache_miss=_REL.t_cache_miss):  # expression default
    return cycles // t_cache_miss


def guard(t_cache_miss):
    return t_cache_miss < 0  # bounds check against a non-paper value


def scaled(scale):
    return dict(interval_cycles=scale.interval_cycles)  # expression kwarg
