"""Defining module of the re-exported base class."""


class Base:
    def __init__(self) -> None:
        self.count = 0

    def reset(self) -> None:
        self.count = 0

    def tick(self) -> None:
        self.count += 1
