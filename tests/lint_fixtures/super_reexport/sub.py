"""Subclass importing the base through the package re-export."""

from tests.lint_fixtures.super_reexport import Base


class Sub(Base):
    def reset(self) -> None:
        super().reset()

    def spin(self) -> None:
        self.tick()  # inherited: resolves through the re-exported MRO
