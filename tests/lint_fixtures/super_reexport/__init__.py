"""Regression fixture: a package ``__init__`` re-exporting a base
class, mirroring how ``repro.core`` re-exports its structures.  A
subclass importing ``Base`` from the *package* (not the defining
module) must still get its ``super()``/MRO call edges resolved."""

from tests.lint_fixtures.super_reexport.base import Base

__all__ = ["Base"]
