"""Fixture: `counter-balance` — increments without balanced decrements."""


class LeakyQueue:
    """Increments a registered counter but never decrements it."""

    def __init__(self, num_threads):
        self.pred_ace_bits = 0
        self.entries = {}

    def insert(self, inst, bits):
        self.entries[inst.tag] = inst
        self.pred_ace_bits += bits  # no decrement anywhere: leaks forever


class LopsidedQueue:
    """Decrements, but never on a squash/remove-style path."""

    def __init__(self):
        self.ready_pred_ace = 0

    def insert(self, inst):
        if inst.ace_pred:
            self.ready_pred_ace += 1

    def rebalance(self, inst):
        # A decrement exists, but `rebalance` is not a deallocation
        # path; squashed entries still leak.
        if inst.ace_pred:
            self.ready_pred_ace -= 1


class BalancedQueue:
    """Correctly balanced: must NOT fire."""

    def __init__(self, num_threads):
        self.per_thread = [0] * num_threads

    def insert(self, inst):
        self.per_thread[inst.thread] += 1

    def remove_issued(self, inst):
        self.per_thread[inst.thread] -= 1

    def squash_thread(self, tid):
        self.per_thread[tid] -= 1
