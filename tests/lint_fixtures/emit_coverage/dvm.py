"""Fixture for ``emit-coverage``: the basename makes this a decision
module, so public state-mutating ``on_*`` hooks must reach an emit."""


class SilentDVM:
    def __init__(self, bus):
        self.bus = bus
        self.triggered = False

    def on_sample(self, estimate):  # flagged: mutates, never emits
        self.triggered = estimate > 0.5

    def on_idle(self):  # trivial body: exempt
        pass


class ChattyDVM:
    def __init__(self, bus):
        self.bus = bus
        self.triggered = False

    def on_sample(self, estimate):  # clean: reaches emit via a helper
        self.triggered = estimate > 0.5
        self._publish(estimate)

    def _publish(self, estimate):
        self.bus.emit("dvm.sample", estimate=estimate)

    def on_peek(self, estimate):  # clean: reads state, mutates nothing
        return self.triggered and estimate > 0.5
