"""Negative control for ``emit-coverage``: same hook shape, but the
basename is not a decision module, so nothing is flagged."""


class SilentHelper:
    def __init__(self):
        self.count = 0

    def on_sample(self, estimate):
        self.count += 1
