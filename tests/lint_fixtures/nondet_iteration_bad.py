"""Counterexample for the ``nondet-iteration`` project pass: set
iteration order reaching simulator state or an emit payload."""


class ReadyTracker:
    def __init__(self, bus):
        self.bus = bus
        self.order = []
        self._pending = frozenset()

    def collect(self, window):
        pending = {slot.tag for slot in window}
        for tag in pending:  # set-comp reaching definition
            self.order.append(tag)  # ...appended to state in set order

    def squash(self, tags):
        doomed = set(tags)
        for tag in doomed:  # set() call reaching definition
            self.order.append(tag)

    def note(self, tags):
        self._pending = {t for t in tags}

    def drain(self):
        for tag in self._pending:  # set-valued attribute
            self.bus.emit("iq.drain", tag=tag)  # order leaks into telemetry
