"""Fixture: `config-bounds` — unvalidated numeric dataclass fields.

Named ``config.py`` because the rule only scans config modules.
"""

from dataclasses import dataclass


@dataclass
class PartiallyValidatedConfig:
    interval_cycles: int = 10_000
    t_cache_miss: int = 16  # never referenced in validate(): fires

    def validate(self) -> None:
        if self.interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")


@dataclass
class UnvalidatedConfig:
    """Numeric fields but no validate() at all: fires on the class."""

    max_cycles: int = 100_000
    seed: int = 42


@dataclass
class FullyValidatedConfig:
    """Every numeric field checked: must NOT fire."""

    num_ipc_regions: int = 4

    def validate(self) -> None:
        if self.num_ipc_regions <= 0:
            raise ValueError("num_ipc_regions must be positive")
