"""pickle-safety counterexample: unpicklable callables and handles
crossing the pool boundary.  BAD lines must be flagged; the plain
module-level submission must not."""

from concurrent.futures import ProcessPoolExecutor


def module_worker(path):
    return path


class Driver:
    def method_worker(self, x):
        return x

    def launch(self, items):
        def nested(x):
            return x

        log = open("driver.log", "w")
        with ProcessPoolExecutor() as pool:
            pool.submit(lambda x: x, 1)  # BAD error: lambda
            pool.submit(nested, 2)  # BAD error: nested def
            pool.submit(self.method_worker, 3)  # BAD warning: bound method
            pool.submit(module_worker, log)  # BAD warning: open() handle
            return pool.map(module_worker, items)  # OK: module-level


def init_pool(items):
    with ProcessPoolExecutor(initializer=lambda: None) as pool:  # BAD error
        return pool.map(module_worker, items)
