"""Negative fixture for ``nondet-iteration``: set iteration that is
order-insensitive, laundered through sorted(), or not a set at all."""


class CleanTracker:
    def __init__(self, bus):
        self.bus = bus
        self.order = []

    def collect_sorted(self, window):
        pending = {slot.tag for slot in window}
        for tag in sorted(pending):  # sorted() launders the order
            self.order.append(tag)

    def count(self, window):
        pending = {slot.tag for slot in window}
        total = 0
        for tag in pending:  # order-insensitive reduction, no escape
            total += tag
        return total

    def collect_list(self, window):
        pending = [slot.tag for slot in window]
        for tag in pending:  # list-valued: order is deterministic
            self.order.append(tag)
