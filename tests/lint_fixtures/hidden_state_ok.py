"""Negative fixture for ``hidden-state``: late-bound attributes covered
by reset(), init helpers, and complete __slots__ chains."""


class GoodController:
    def __init__(self):
        self.total = 0
        self._armed = False

    def reset(self):
        self.total = 0
        self._armed = False

    def on_trigger(self):
        self._armed = True  # bound in __init__: fine


class LazyButReset:
    def __init__(self):
        self.count = 0

    def reset(self):
        self.count = 0
        self.history = []  # reset() restores it: fine

    def record(self, x):
        self.history = [x]


class InitViaHelper:
    def __init__(self):
        self._setup()

    def _setup(self):
        self.depth = 0  # bound during construction, through a helper

    def reset(self):
        self._setup()

    def descend(self):
        self.depth += 1


class CompleteBase:
    __slots__ = ("a",)

    def __init__(self):
        self.a = 0


class CompleteDerived(CompleteBase):
    __slots__ = ("b",)

    def __init__(self):
        super().__init__()
        self.b = 1
