"""Fixture: every way the `determinism` rule can fire."""

import random
import time
from datetime import datetime

import numpy as np


def unseeded_module_rng():
    # Global-state RNG calls.
    a = random.random()
    b = random.randint(0, 10)
    c = np.random.rand(4)
    np.random.shuffle([1, 2, 3])
    return a, b, c


def wall_clock():
    t0 = time.time()
    t1 = time.perf_counter()
    stamp = datetime.now()
    return t0, t1, stamp


def set_order_escapes(tags):
    snapshot = list(set(tags))  # order leaks into the result
    out = []
    for tag in {1, 2, 3}:  # literal-set iteration
        out.append(tag)
    squares = [t * t for t in set(tags)]  # comprehension over a set
    return snapshot, out, squares


def allowed_patterns(seed):
    # None of these may fire: seeded constructors and sorted iteration.
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    local = random.Random(seed)
    ordered = sorted(set([3, 1, 2]))
    return rng, local, ordered
