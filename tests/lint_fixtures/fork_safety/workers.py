"""fork-safety counterexample: worker-reachable code mutating state
that does not cross the process boundary.  BAD lines must be flagged;
the non-submitted helper at the bottom must stay silent."""

import random
from concurrent.futures import ProcessPoolExecutor

_CACHE = {}
_ROWS = []


def run_point(point):
    _CACHE[point] = point * 2  # BAD: store into module-level container
    _ROWS.append(point)  # BAD: mutator call on module-level container
    return _helper(point)


def _helper(point):
    global _TOTAL
    _TOTAL = point  # BAD: rebinds a module global in a worker
    return random.random() + point  # BAD: process-global RNG draw


def submit_all(points):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(run_point, points))


def local_report(points):
    # Not worker-reachable: parent-side mutation is fine.
    rows = []
    for p in points:
        rows.append(p)
    _ROWS.append(len(rows))  # OK: runs in the parent only
    return rows
