"""Counterexample for the ``hidden-state`` project pass."""


class Controller:
    def __init__(self):
        self.total = 0

    def reset(self):
        self.total = 0

    def on_trigger(self):
        self._armed = True  # flagged: born here, reset() never restores it


class HelperHidden:
    def __init__(self):
        self.samples = []

    def reset(self):
        self.samples.clear()

    def on_sample(self, x):
        self._tally(x)

    def _tally(self, x):  # flagged via the call graph: acc born in a helper
        self.acc = getattr(self, "acc", 0) + x


class SlottedBase:
    __slots__ = ("a",)

    def __init__(self):
        self.a = 0


class SlottedDerived(SlottedBase):
    __slots__ = ()

    def __init__(self):
        super().__init__()
        self.b = 1  # flagged: missing from every __slots__ on the chain
