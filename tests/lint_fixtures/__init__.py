"""Deliberately broken snippets, one per lint rule.

These modules are *data* for ``tests/test_lint.py``: each must trip
exactly its own checker.  They are never imported by the test (some
would fail at runtime — that is the point).
"""
