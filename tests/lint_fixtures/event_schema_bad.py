"""Fixture: every way the `event-schema` rule can fire."""

from repro.telemetry.bus import EventBus
from repro.telemetry.topics import TOPIC_DVM_SAMPLE, TOPIC_DVM_TRIGGER

TOPIC_MADE_UP = TOPIC_DVM_TRIGGER  # not a registered catalog constant


def string_literal_topic(bus: EventBus) -> None:
    bus.emit("dvm.sample", estimate=0.5, triggered=True, wq_ratio=1.0)


def unknown_topic_constant(bus: EventBus) -> None:
    bus.emit(TOPIC_MADE_UP, reason="sample", estimate=0.5)


def positional_payload(bus: EventBus) -> None:
    bus.emit(TOPIC_DVM_TRIGGER, "sample", estimate=0.5)


def kwargs_splat(bus: EventBus, payload: dict) -> None:
    bus.emit(TOPIC_DVM_TRIGGER, **payload)


def missing_field(bus: EventBus) -> None:
    bus.emit(TOPIC_DVM_SAMPLE, estimate=0.5, triggered=True)


def extra_field(bus: EventBus) -> None:
    bus.emit(TOPIC_DVM_TRIGGER, reason="sample", estimate=0.5, bogus=1)


def allowed_patterns(bus: EventBus, queue) -> None:
    # None of these may fire: exact schema match, and emit() of an
    # object that is not a TOPIC_* catalog constant (foreign API).
    bus.emit(TOPIC_DVM_SAMPLE, estimate=0.5, triggered=True, wq_ratio=1.0)
    queue.emit("job-done", 42)
