"""Counterexample for the ``paper-fidelity`` project pass.

Every binding below either re-hard-codes a catalogued paper constant
(error) or silently drifts from it (warning)."""


interval_cycles = 10_000  # error: exact paper value re-hard-coded

ace_window = 39_000  # warning: drifts from the paper's 40_000


def simulate(cycles, t_cache_miss=16):  # error: parameter default
    return cycles // t_cache_miss


def configure(**kwargs):
    return kwargs


def sweep():
    return configure(dvm_trigger_fraction=0.9)  # error: keyword argument


def should_flush(misses, t_cache_miss):
    return t_cache_miss == 16 and misses > t_cache_miss  # error: comparison
