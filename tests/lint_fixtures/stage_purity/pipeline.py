"""Fixture: `stage-purity` — a stage reaching into foreign private state.

Named ``pipeline.py`` because the rule only scans pipeline modules.
"""


class BrokenPipeline:
    def __init__(self, iq, rob):
        self.iq = iq
        self.rob = rob
        self._cycle = 0

    def _issue(self, inst):
        # Direct write to another structure's private dict: bypasses the
        # IQ's counter maintenance.
        self.iq._consumers[inst.tag] = []

    def _writeback(self, inst):
        # Mutator call on a foreign private container.
        self.iq._consumers.pop(inst.tag, None)

    def _commit(self):
        # Own private state: must NOT fire.
        self._cycle += 1


class CleanPipeline:
    """Goes through public APIs only: must NOT fire."""

    def __init__(self, iq):
        self.iq = iq
        self._pending = []

    def _issue(self, inst):
        self.iq.remove_issued(inst)
        self._pending.append(inst)
