"""hot-loop-alloc counterexample: allocation churn reachable from the
cycle loop.  Lines marked BAD must be flagged; OK lines must not."""


class SMTPipeline:
    def __init__(self):
        self.threads = [0, 1]
        self.queue = []

    def run(self, cycles):
        for _ in range(cycles):
            self._issue()
            self._commit()

    def _issue(self):
        # Called once per cycle (score 8); depth-1 constructs rank 64.
        for t in self.threads:
            ready = [i for i in self.queue if i == t]  # BAD: list comp
            label = f"thread-{t}"  # BAD: f-string formatting
            self.consume(ready, label)

    def _commit(self):
        # Depth-0 statements rank only 8: below the hot threshold.
        done = [i for i in self.queue]  # OK: not inside a local loop
        self.consume(done, "commit")

    def consume(self, items, label):
        return len(items), label


def offline_report(queue):
    # Unreachable from any entry point: score 0, never flagged.
    rows = []
    for item in queue:
        rows.append([item, str(item)])  # OK: cold code may allocate
    return rows
