"""The project-wide dataflow layer: CFG + reaching definitions +
liveness, the import-resolved call graph, and the four passes built on
them (paper-fidelity, nondet-iteration, emit-coverage, hidden-state)."""

import ast
import os
import textwrap

import pytest

from repro.analysis import LintEngine, Severity
from repro.analysis.checkers.paper_fidelity import PAPER_CONSTANTS
from repro.analysis.flow import CallGraph, build_flow, build_module_info

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "lint_fixtures")


def run_pass(rule, *paths):
    """Run one project pass (engine run, both phases) over paths."""
    return LintEngine([rule]).run(list(paths))


def fixture(name):
    return os.path.join(FIXTURES, name)


def make_flow(body):
    tree = ast.parse(textwrap.dedent(body))
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return func, build_flow(func)


def stmt_at(func, lineno):
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and getattr(node, "lineno", None) == lineno:
            return node
    raise AssertionError(f"no statement at line {lineno}")


# ----------------------------------------------------------------------
# CFG + reaching definitions + liveness
# ----------------------------------------------------------------------
class TestReachingDefinitions:
    def test_straight_line_single_definition(self):
        func, flow = make_flow(
            """
            def f():
                x = 1
                y = x
                return y
            """
        )
        use = stmt_at(func, 4)  # y = x
        defs = flow.reaching_in(use)["x"]
        assert [d.lineno for d in defs] == [3]

    def test_if_else_join_merges_both_branches(self):
        func, flow = make_flow(
            """
            def f(cond):
                if cond:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        ret = stmt_at(func, 7)
        assert sorted(d.lineno for d in flow.reaching_in(ret)["x"]) == [4, 6]

    def test_redefinition_kills_previous(self):
        func, flow = make_flow(
            """
            def f():
                x = 1
                x = 2
                return x
            """
        )
        ret = stmt_at(func, 5)
        assert [d.lineno for d in flow.reaching_in(ret)["x"]] == [4]

    def test_loop_back_edge_brings_body_definition_to_header(self):
        func, flow = make_flow(
            """
            def f(items):
                acc = 0
                for item in items:
                    acc = acc + item
                return acc
            """
        )
        loop = stmt_at(func, 4)
        lines = sorted(d.lineno for d in flow.reaching_in(loop)["acc"])
        assert lines == [3, 5]  # initial def and the back-edge def

    def test_parameters_reach_as_function_node(self):
        func, flow = make_flow(
            """
            def f(n):
                return n
            """
        )
        ret = stmt_at(func, 3)
        assert flow.reaching_in(ret)["n"] == [func]

    def test_assigned_value_recovers_expression(self):
        func, flow = make_flow(
            """
            def f(window):
                pending = {w for w in window}
                for tag in pending:
                    pass
            """
        )
        loop = stmt_at(func, 4)
        (def_stmt,) = flow.reaching_in(loop)["pending"]
        assert isinstance(flow.assigned_value(def_stmt, "pending"), ast.SetComp)

    def test_try_except_handler_sees_body_definitions(self):
        func, flow = make_flow(
            """
            def f():
                x = 1
                try:
                    x = 2
                except ValueError:
                    y = x
                return x
            """
        )
        handler_stmt = stmt_at(func, 7)  # y = x
        lines = sorted(d.lineno for d in flow.reaching_in(handler_stmt)["x"])
        assert lines == [3, 5]  # the try body may or may not have run


class TestLiveness:
    def test_used_later_is_live_out(self):
        func, flow = make_flow(
            """
            def f():
                x = 1
                y = 2
                return x
            """
        )
        assert "x" in flow.live_out(stmt_at(func, 3))
        assert "y" not in flow.live_out(stmt_at(func, 4))

    def test_loop_keeps_accumulator_live(self):
        func, flow = make_flow(
            """
            def f(items):
                acc = 0
                for item in items:
                    acc = acc + item
                return acc
            """
        )
        assert "acc" in flow.live_out(stmt_at(func, 5))

    def test_branch_use_is_live_in(self):
        func, flow = make_flow(
            """
            def f(cond, x):
                if cond:
                    return x
                return 0
            """
        )
        assert {"cond", "x"} <= flow.live_in(stmt_at(func, 3))


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
def graph_of(**sources):
    """Build a CallGraph from {dotted_module_name: source}."""
    modules = {}
    for name, src in sources.items():
        path = name.replace(".", os.sep) + ".py"
        modules[name] = build_module_info(path, ast.parse(textwrap.dedent(src)), name)
    return CallGraph(modules), modules


class TestCallGraph:
    def test_self_call_resolves_through_class(self):
        graph, _ = graph_of(
            m="""
            class A:
                def top(self):
                    self.helper()
                def helper(self):
                    pass
            """
        )
        assert graph.callees("m.A.top") == ["m.A.helper"]

    def test_inherited_method_resolves_through_mro(self):
        graph, _ = graph_of(
            m="""
            class Base:
                def helper(self):
                    pass
            class Child(Base):
                def top(self):
                    self.helper()
            """
        )
        assert graph.callees("m.Child.top") == ["m.Base.helper"]

    def test_super_call_resolves_to_base(self):
        graph, _ = graph_of(
            m="""
            class Base:
                def reset(self):
                    pass
            class Child(Base):
                def reset(self):
                    super().reset()
            """
        )
        assert graph.callees("m.Child.reset") == ["m.Base.reset"]

    def test_cross_module_base_through_import(self):
        graph, mods = graph_of(
            pkg_base="""
            class Base:
                def helper(self):
                    pass
            """,
            pkg_child="""
            from pkg_base import Base
            class Child(Base):
                def top(self):
                    self.helper()
            """,
        )
        assert graph.callees("pkg_child.Child.top") == ["pkg_base.Base.helper"]
        mro = graph.mro(mods["pkg_child"], mods["pkg_child"].classes["Child"])
        assert [c.qualname for _, c in mro] == ["pkg_child.Child", "pkg_base.Base"]

    def test_from_imported_function_call(self):
        graph, _ = graph_of(
            util="""
            def helper():
                pass
            """,
            main="""
            from util import helper
            def top():
                helper()
            """,
        )
        assert graph.callees("main.top") == ["util.helper"]

    def test_reaches_emit_through_helper_chain(self):
        graph, _ = graph_of(
            m="""
            class C:
                def a(self):
                    self.b()
                def b(self):
                    self.c()
                def c(self):
                    self.bus.emit("t", x=1)
                def lonely(self):
                    self.x = 1
            """
        )
        assert graph.reaches_emit("m.C.a")
        assert graph.reaches_emit("m.C.c")
        assert not graph.reaches_emit("m.C.lonely")

    def test_recursive_functions_terminate(self):
        graph, _ = graph_of(
            m="""
            def even(n):
                return n == 0 or odd(n - 1)
            def odd(n):
                return n != 0 and even(n - 1)
            """
        )
        assert not graph.reaches_emit("m.even")

    def test_super_resolves_through_package_reexport(self):
        # Regression: a base class imported from a package __init__
        # (``from pkg import Base``) used to leave super()/MRO edges
        # unresolved because the alias chain through the re-exporting
        # __init__ module was never followed.
        graph, mods = graph_of(
            **{
                "pkg": """
                from pkg.base import Base
                """,
                "pkg.base": """
                class Base:
                    def reset(self):
                        pass
                    def tick(self):
                        pass
                """,
                "pkg.sub": """
                from pkg import Base
                class Sub(Base):
                    def reset(self):
                        super().reset()
                    def spin(self):
                        self.tick()
                """,
            }
        )
        assert graph.callees("pkg.sub.Sub.reset") == ["pkg.base.Base.reset"]
        assert graph.callees("pkg.sub.Sub.spin") == ["pkg.base.Base.tick"]
        mro = graph.mro(mods["pkg.sub"], mods["pkg.sub"].classes["Sub"])
        assert [c.qualname for _, c in mro] == ["pkg.sub.Sub", "pkg.base.Base"]

    def test_classmethod_chain_through_reexport(self):
        graph, _ = graph_of(
            **{
                "pkg": """
                from pkg.base import Base
                """,
                "pkg.base": """
                class Base:
                    def tick(self):
                        pass
                """,
                "pkg.user": """
                from pkg import Base
                def drive(obj):
                    Base.tick(obj)
                """,
            }
        )
        assert graph.callees("pkg.user.drive") == ["pkg.base.Base.tick"]

    def test_super_reexport_disk_fixture(self):
        paths = [
            fixture(os.path.join("super_reexport", name))
            for name in ("__init__.py", "base.py", "sub.py")
        ]
        modules = {}
        for path in paths:
            info = build_module_info(path, ast.parse(open(path).read()))
            modules[info.name] = info
        graph = CallGraph(modules)
        pkg = "tests.lint_fixtures.super_reexport"
        assert graph.callees(f"{pkg}.sub.Sub.reset") == [f"{pkg}.base.Base.reset"]
        assert graph.callees(f"{pkg}.sub.Sub.spin") == [f"{pkg}.base.Base.tick"]


# ----------------------------------------------------------------------
# The four project passes, against their fixtures
# ----------------------------------------------------------------------
class TestPaperFidelityPass:
    def test_fires_on_every_bad_binding_site(self):
        diags = run_pass("paper-fidelity", fixture("paper_fidelity_bad.py"))
        by_sev = {}
        for d in diags:
            by_sev.setdefault(d.severity, []).append(d)
        messages = [d.message for d in diags]
        assert any("assignment re-hard-codes" in m for m in messages)
        assert any("drifts from the paper's" in m for m in messages)
        assert any("parameter default re-hard-codes" in m for m in messages)
        assert any("keyword argument re-hard-codes" in m for m in messages)
        assert any("comparison re-hard-codes" in m for m in messages)
        assert len(by_sev[Severity.WARNING]) == 1  # only the drifted ace_window

    def test_silent_on_config_derived_values(self):
        assert run_pass("paper-fidelity", fixture("paper_fidelity_ok.py")) == []

    def test_config_module_is_exempt(self, tmp_path):
        cfg = tmp_path / "config.py"
        cfg.write_text("interval_cycles = 10_000\n")
        assert run_pass("paper-fidelity", str(tmp_path)) == []

    def test_test_modules_are_exempt(self, tmp_path):
        mod = tmp_path / "test_something.py"
        mod.write_text("interval_cycles = 10_000\n")
        assert run_pass("paper-fidelity", str(tmp_path)) == []

    @pytest.mark.parametrize(
        "const", PAPER_CONSTANTS, ids=[c.key for c in PAPER_CONSTANTS]
    )
    def test_each_constant_detects_drift_with_section_reference(self, const, tmp_path):
        ident = sorted(const.identifiers)[0]
        drifted = const.value * 2 + 1
        mod = tmp_path / "knobs.py"
        mod.write_text(f"{ident} = {drifted!r}\n")
        diags = run_pass("paper-fidelity", str(mod))
        assert len(diags) == 1
        d = diags[0]
        assert d.severity == Severity.WARNING
        assert d.symbol == const.key
        assert const.section in d.message
        assert const.config_attr in d.message

    @pytest.mark.parametrize(
        "const", PAPER_CONSTANTS, ids=[c.key for c in PAPER_CONSTANTS]
    )
    def test_each_constant_detects_rehardcoding_as_error(self, const, tmp_path):
        ident = sorted(const.identifiers)[0]
        mod = tmp_path / "knobs.py"
        mod.write_text(f"{ident} = {const.value!r}\n")
        diags = run_pass("paper-fidelity", str(mod))
        assert len(diags) == 1
        assert diags[0].severity == Severity.ERROR
        assert const.section in diags[0].message


class TestNondetIterationPass:
    def test_fires_on_all_three_leaks(self):
        diags = run_pass("nondet-iteration", fixture("nondet_iteration_bad.py"))
        symbols = {d.symbol for d in diags}
        assert symbols == {"pending", "doomed", "ReadyTracker._pending"}
        assert all(d.severity == Severity.ERROR for d in diags)
        assert all("sorted" in d.message for d in diags)

    def test_silent_on_laundered_or_local_iteration(self):
        assert run_pass("nondet-iteration", fixture("nondet_iteration_ok.py")) == []


class TestEmitCoveragePass:
    def test_flags_only_the_silent_mutating_hook(self):
        diags = run_pass("emit-coverage", os.path.join(FIXTURES, "emit_coverage"))
        assert {d.symbol for d in diags} == {"SilentDVM.on_sample"}
        assert diags[0].severity == Severity.WARNING
        assert "bus.emit" in diags[0].message


class TestHiddenStatePass:
    def test_fires_on_unreset_and_unslotted_attributes(self):
        diags = run_pass("hidden-state", fixture("hidden_state_bad.py"))
        by_symbol = {d.symbol: d for d in diags}
        assert set(by_symbol) == {
            "Controller._armed",
            "HelperHidden.acc",
            "SlottedDerived.b",
        }
        assert by_symbol["Controller._armed"].severity == Severity.WARNING
        assert "reset() never restores" in by_symbol["HelperHidden.acc"].message
        assert by_symbol["SlottedDerived.b"].severity == Severity.ERROR
        assert "__slots__" in by_symbol["SlottedDerived.b"].message

    def test_silent_on_covered_attributes(self):
        assert run_pass("hidden-state", fixture("hidden_state_ok.py")) == []
