"""The analyzer applied to this repository itself.

The full engine — per-file rules plus the four project passes — runs
over ``src/repro`` in-process; everything it reports must already be
recorded in the committed ``lint-baseline.json``.  The same run doubles
as the performance gate for the incremental cache: a second, unchanged
run must be nearly all cache hits, and a warm-cache parallel run must
not cost more than twice the plain per-file engine.
"""

import os
import time

from repro.analysis import LintEngine, filter_new, load_baseline

HERE = os.path.dirname(__file__)
ROOT = os.path.dirname(os.path.abspath(HERE))
SRC = os.path.join(ROOT, "src")
BASELINE = os.path.join(ROOT, "lint-baseline.json")


class TestSelfCheck:
    def test_no_non_baselined_diagnostics_on_src(self):
        diags = LintEngine().run([SRC])
        new = filter_new(diags, load_baseline(BASELINE), root=ROOT)
        assert new == [], "new findings on src/:\n" + "\n".join(
            d.format() for d in new
        )

    def test_baseline_entries_still_fire(self):
        """A stale baseline (entries nothing produces any more) should be
        pruned, not carried around."""
        diags = LintEngine().run([SRC])
        produced = {(d.rule, d.symbol) for d in diags}
        import json

        with open(BASELINE, encoding="utf-8") as fh:
            entries = json.load(fh)["entries"]
        for entry in entries:
            assert (entry["rule"], entry["symbol"]) in produced, (
                f"baseline entry {entry['rule']}:{entry['symbol']} no longer "
                "fires; remove it from lint-baseline.json"
            )


class TestCachePerformance:
    def test_second_unchanged_run_is_mostly_cache_hits(self, tmp_path):
        cache = str(tmp_path / "cache")
        LintEngine(cache_dir=cache).run([SRC])
        engine = LintEngine(cache_dir=cache)
        engine.run([SRC])
        stats = engine.cache_stats
        assert stats.lookups > 0
        assert stats.hit_rate >= 0.9, f"only {stats.hit_rate:.0%} cache hits"

    def test_cached_diagnostics_match_fresh_ones(self, tmp_path):
        cache = str(tmp_path / "cache")
        fresh = LintEngine(cache_dir=cache).run([SRC])
        cached = LintEngine(cache_dir=cache).run([SRC])
        assert [d.format() for d in cached] == [d.format() for d in fresh]

    def test_warm_cache_parallel_run_beats_twice_per_file_time(self, tmp_path):
        cache = str(tmp_path / "cache")
        start = time.perf_counter()  # lint: disable=determinism
        LintEngine().run([SRC], project_phase=False)
        per_file_time = time.perf_counter() - start  # lint: disable=determinism

        LintEngine(cache_dir=cache).run([SRC])  # prime the cache
        start = time.perf_counter()  # lint: disable=determinism
        LintEngine(cache_dir=cache).run([SRC], jobs=2)
        warm_time = time.perf_counter() - start  # lint: disable=determinism

        # Generous slack: CI boxes are noisy, and sub-second timings
        # need an absolute floor to be meaningful at all.
        assert warm_time <= max(2 * per_file_time, 0.5), (
            f"warm cached run took {warm_time:.2f}s vs {per_file_time:.2f}s "
            "for the plain per-file engine"
        )
