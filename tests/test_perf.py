"""Performance observability: span tracer, Chrome trace export,
benchmark history, and the regression comparator."""

import json
import math

import pytest

from repro.harness.runner import BenchScale
from repro.perf.bench import (
    BENCH_CASES,
    BENCH_NAMES,
    PERF_SCALE,
    BenchResult,
    format_results,
    get_cases,
    run_benchmarks,
)
from repro.perf.chrome_trace import (
    TID_COUNTERS,
    TID_DVM,
    TID_INTERVALS,
    TID_SPANS,
    TRACE_PID,
    build_trace,
    counter_events,
    read_trace,
    recorded_events,
    span_events,
    validate_trace,
    write_chrome_trace,
)
from repro.perf.compare import (
    STATUS_IMPROVEMENT,
    STATUS_INVALID,
    STATUS_NEW,
    STATUS_OK,
    STATUS_REGRESSION,
    baseline_seconds,
    compare_results,
)
from repro.perf.history import (
    KIND_PERF_SUITE,
    KIND_TELEMETRY_OVERHEAD,
    append_entry,
    empty_history,
    entries_of_kind,
    load_history,
    make_entry,
)
from repro.perf.spans import SpanRecord, SpanTracer, TracingProfiler
from repro.telemetry import EventBus
from repro.telemetry.timeline import RecordedEvent
from repro.telemetry.topics import TOPIC_PERF_SPAN


# ----------------------------------------------------------------------
# SpanTracer
# ----------------------------------------------------------------------
class TestSpanTracer:
    def test_nested_spans_record_depth(self):
        tracer = SpanTracer()
        with tracer.span("outer", cat="test"):
            with tracer.span("inner", cat="test", detail=1):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert inner.depth == 1 and outer.depth == 0
        assert inner.args == {"detail": 1}
        # The child lies inside the parent's window.
        assert outer.ts_us <= inner.ts_us
        assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1e-6

    def test_begin_end_imperative_form(self):
        tracer = SpanTracer()
        tracer.begin("phase")
        assert tracer.open_depth == 1
        record = tracer.end(items=3)
        assert record is not None and record.name == "phase"
        assert record.args == {"items": 3}
        assert tracer.open_depth == 0

    def test_end_without_open_span_raises(self):
        with pytest.raises(RuntimeError):
            SpanTracer().end()

    def test_limit_drops_and_counts(self):
        tracer = SpanTracer(limit=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        tracer.clear()
        assert tracer.spans == [] and tracer.dropped == 0

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(limit=0)

    def test_rides_bus_when_subscribed(self):
        bus = EventBus()
        tracer = SpanTracer(bus)
        seen = []
        with tracer.span("unobserved"):
            pass
        with bus.subscribe(TOPIC_PERF_SPAN, lambda ev: seen.append(ev)):
            with tracer.span("observed"):
                pass
        with tracer.span("after-detach"):
            pass
        # Only the span closed while subscribed reached the bus...
        assert [ev.payload["name"] for ev in seen] == ["observed"]
        # ...but all three were recorded locally.
        assert [s.name for s in tracer.spans] == [
            "unobserved",
            "observed",
            "after-detach",
        ]

    def test_no_bus_no_emission(self):
        tracer = SpanTracer()
        with tracer.span("quiet"):
            pass
        assert tracer.bus is None and len(tracer.spans) == 1


class TestTracingProfiler:
    def _drive(self, profiler, cycles, stages=("fetch", "issue")):
        profiler.start_run()
        for _ in range(cycles):
            profiler.cycle_start()
            for stage in stages:
                profiler.lap(stage)
        profiler.end_run()

    def test_records_cycle_and_stage_spans(self):
        profiler = TracingProfiler(max_traced_cycles=3)
        self._drive(profiler, cycles=5)
        assert profiler.cycles == 5
        assert profiler.traced_cycles == 3
        cycle_spans = [s for s in profiler.tracer.spans if s.cat == "cycle"]
        stage_spans = [s for s in profiler.tracer.spans if s.cat == "stage"]
        assert len(cycle_spans) == 3
        assert len(stage_spans) == 6  # 2 stages per traced cycle
        assert [s.args["index"] for s in cycle_spans] == [0, 1, 2]
        assert all(s.depth == 0 for s in cycle_spans)
        assert all(s.depth == 1 for s in stage_spans)

    def test_trace_exports_as_valid_nesting(self):
        profiler = TracingProfiler(max_traced_cycles=4)
        self._drive(profiler, cycles=4)
        doc = build_trace(profiler.tracer.spans)
        counts = validate_trace(doc)
        assert counts["X"] == 4 + 8

    def test_zero_traced_cycles_still_profiles(self):
        profiler = TracingProfiler(max_traced_cycles=0)
        self._drive(profiler, cycles=3)
        assert profiler.tracer.spans == []
        assert profiler.report().cycles == 3

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            TracingProfiler(max_traced_cycles=-1)


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def _span(name, ts, dur, depth=0, tid=0, **args):
    return SpanRecord(
        name=name, cat="t", ts_us=ts, dur_us=dur, depth=depth, tid=tid, args=args
    )


class TestChromeTrace:
    def test_span_events_schema(self):
        (ev,) = span_events([_span("a", 1.0, 2.0, k="v")])
        assert ev["ph"] == "X" and ev["ts"] == 1.0 and ev["dur"] == 2.0
        assert ev["pid"] == TRACE_PID and ev["tid"] == TID_SPANS
        assert ev["args"] == {"k": "v"}

    def test_recorded_interval_becomes_slice(self):
        ev = RecordedEvent(
            cycle=2000,
            stage="tick",
            topic="interval.close",
            payload={"index": 1, "end_cycle": 2000},
        )
        (out,) = recorded_events([ev], cycle_us=2.0)
        assert out["ph"] == "X" and out["tid"] == TID_INTERVALS
        assert out["dur"] == 1000 * 2.0  # interval length recovered
        assert out["ts"] == (2000 - 1000) * 2.0

    def test_recorded_decision_becomes_instant(self):
        ev = RecordedEvent(
            cycle=42, stage="tick", topic="dvm.trigger", payload={"thread": 0}
        )
        (out,) = recorded_events([ev], cycle_us=1.0)
        assert out["ph"] == "i" and out["s"] == "t"
        assert out["ts"] == 42 and out["tid"] == TID_DVM
        assert out["args"]["stage"] == "tick"

    def test_bad_cycle_us_rejected(self):
        with pytest.raises(ValueError):
            recorded_events([], cycle_us=0.0)

    def test_build_trace_has_metadata_and_other_data(self):
        doc = build_trace([_span("a", 0.0, 1.0)], extra={"note": "x"})
        phs = [e["ph"] for e in doc["traceEvents"]]
        assert "M" in phs and "X" in phs
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["name"] for m in meta} == {"process_name", "thread_name"}
        assert doc["otherData"]["note"] == "x"
        assert doc["displayTimeUnit"] == "ms"

    def test_write_read_validate_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(
            str(path),
            spans=[_span("parent", 0.0, 10.0), _span("child", 2.0, 3.0, depth=1)],
        )
        assert n == 2
        counts = validate_trace(read_trace(str(path)))
        assert counts == {"M": 2, "X": 2}

    def test_validate_rejects_missing_key(self):
        doc = {"traceEvents": [{"ph": "X", "name": "a", "ts": 0, "pid": 1, "tid": 0}]}
        with pytest.raises(ValueError, match="missing 'dur'"):
            validate_trace(doc)

    def test_validate_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Q", "name": "a"}]}
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_trace(doc)

    def test_validate_rejects_ill_formed_nesting(self):
        # Two slices on one track that overlap without containment.
        doc = build_trace([_span("a", 0.0, 10.0), _span("b", 5.0, 10.0)])
        with pytest.raises(ValueError, match="ill-formed nesting"):
            validate_trace(doc)

    def test_validate_accepts_siblings_and_children(self):
        doc = build_trace(
            [
                _span("parent", 0.0, 10.0),
                _span("c1", 1.0, 3.0, depth=1),
                _span("c2", 5.0, 4.0, depth=1),
                _span("sibling", 11.0, 2.0),
            ]
        )
        assert validate_trace(doc)["X"] == 4

    def test_non_json_safe_args_coerced(self):
        (ev,) = span_events([_span("a", 0.0, 1.0, obj={1, 2})])
        json.dumps(ev)  # must not raise


def _interval_event(index=0, end_cycle=1000, **extra):
    payload = {
        "index": index,
        "end_cycle": end_cycle,
        "online_avf_estimate": 0.25,
        "online_rob_estimate": 0.1,
        "avg_ready_queue_len": 4.0,
        "avg_waiting_queue_len": 9.0,
        "iq_limit": 32,
        "ipc": 1.5,
        "l2_misses": 3,
        **extra,
    }
    return RecordedEvent(cycle=end_cycle, stage="tick",
                         topic="interval.close", payload=payload)


class TestCounterEvents:
    def test_interval_close_produces_counter_tracks(self):
        out = counter_events([_interval_event()], cycle_us=2.0)
        names = [e["name"] for e in out]
        assert names == ["online avf", "iq occupancy", "iq limit"]
        for ev in out:
            assert ev["ph"] == "C" and ev["tid"] == TID_COUNTERS
            assert ev["ts"] == 1000 * 2.0
        avf = out[0]["args"]
        assert avf == {"iq": 0.25, "rob": 0.1}

    def test_dvm_sample_counter(self):
        ev = RecordedEvent(
            cycle=500, stage="tick", topic="dvm.sample",
            payload={"estimate": 0.3, "wq_ratio": 2.0},
        )
        (out,) = counter_events([ev])
        assert out["name"] == "dvm" and out["ph"] == "C"
        assert out["args"] == {"estimate": 0.3, "wq_ratio": 2.0}

    def test_divergence_counter_named_by_structure(self):
        ev = RecordedEvent(
            cycle=9999, stage="", topic="reliability.divergence",
            payload={"structure": "rob", "index": 1, "end_cycle": 2000,
                     "oracle_avf": 0.2, "online_estimate": 0.18,
                     "divergence": 0.02},
        )
        (out,) = counter_events([ev])
        assert out["name"] == "rob avf"
        # Timestamped at the interval's end, not the emission cycle.
        assert out["ts"] == 2000.0
        assert out["args"] == {"oracle": 0.2, "online": 0.18}

    def test_validate_accepts_counters(self):
        doc = build_trace(recorded=[_interval_event()])
        counts = validate_trace(doc)
        assert counts["C"] == 3

    def test_counters_toggle_off(self):
        doc = build_trace(recorded=[_interval_event()], counters=False)
        assert not any(e["ph"] == "C" for e in doc["traceEvents"])

    def test_validate_rejects_counter_without_args(self):
        doc = {"traceEvents": [
            {"name": "c", "ph": "C", "ts": 0, "pid": 1, "tid": 6, "args": {}},
        ]}
        with pytest.raises(ValueError, match="non-empty"):
            validate_trace(doc)

    def test_validate_rejects_counter_missing_args_key(self):
        doc = {"traceEvents": [{"name": "c", "ph": "C", "ts": 0, "pid": 1}]}
        with pytest.raises(ValueError, match="missing 'args'"):
            validate_trace(doc)

    def test_validate_rejects_non_numeric_series(self):
        doc = {"traceEvents": [
            {"name": "c", "ph": "C", "ts": 0, "pid": 1, "tid": 6,
             "args": {"iq": "high"}},
        ]}
        with pytest.raises(ValueError, match="non-numeric"):
            validate_trace(doc)

    def test_validate_rejects_bool_series(self):
        # bool is an int subclass; a counter series of True/False is a
        # schema bug, not a numeric sample.
        doc = {"traceEvents": [
            {"name": "c", "ph": "C", "ts": 0, "pid": 1, "tid": 6,
             "args": {"armed": True}},
        ]}
        with pytest.raises(ValueError, match="non-numeric"):
            validate_trace(doc)

    def test_counters_exempt_from_nesting(self):
        # Counter samples overlap interval slices on the time axis; the
        # nesting check must only look at "X" slices.
        doc = build_trace(
            recorded=[_interval_event(0, 1000), _interval_event(1, 2000)]
        )
        counts = validate_trace(doc)
        assert counts["X"] == 2 and counts["C"] == 6

    def test_counter_trace_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), recorded=[_interval_event()])
        counts = validate_trace(read_trace(str(path)))
        assert counts.get("C", 0) > 0


# ----------------------------------------------------------------------
# History
# ----------------------------------------------------------------------
class TestHistory:
    def test_missing_file_is_empty_history(self, tmp_path):
        doc = load_history(str(tmp_path / "nope.json"))
        assert doc == empty_history()

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_history(str(path))

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"entries": 7}')
        with pytest.raises(ValueError, match="not a BENCH_perf history"):
            load_history(str(path))

    def test_append_creates_stamps_and_trims(self, tmp_path):
        path = str(tmp_path / "BENCH_perf.json")
        for i in range(4):
            append_entry(
                path,
                {"case": BenchResult("case", 0.1 + i, 1)},
                context={"i": i},
                max_entries=3,
            )
        doc = load_history(path)
        assert len(doc["entries"]) == 3
        assert [e["context"]["i"] for e in doc["entries"]] == [1, 2, 3]
        entry = doc["entries"][-1]
        assert entry["kind"] == KIND_PERF_SUITE
        assert entry["results"]["case"] == {"best_s": pytest.approx(3.1), "repeats": 1}
        # Provenance stamp: the manifest identifies the producing tree.
        assert "python" in entry["manifest"]
        assert entry["created_utc"]

    def test_entries_of_kind_filters(self, tmp_path):
        path = str(tmp_path / "BENCH_perf.json")
        append_entry(path, {"a": 0.1}, kind=KIND_PERF_SUITE)
        append_entry(path, {"b": 0.2}, kind=KIND_TELEMETRY_OVERHEAD)
        doc = load_history(path)
        assert len(entries_of_kind(doc, KIND_PERF_SUITE)) == 1
        assert len(entries_of_kind(doc, KIND_TELEMETRY_OVERHEAD)) == 1

    def test_make_entry_accepts_bare_seconds(self):
        entry = make_entry({"x": 0.5})
        assert entry["results"]["x"] == {"best_s": 0.5}


# ----------------------------------------------------------------------
# Comparator
# ----------------------------------------------------------------------
def _history_with(values, name="case"):
    """A history whose suite entries carry ``values`` for one case."""
    doc = empty_history()
    for v in values:
        doc["entries"].append(
            {"kind": KIND_PERF_SUITE, "results": {name: {"best_s": v}}}
        )
    return doc


class TestComparator:
    def test_empty_history_is_new_and_passes(self):
        report = compare_results(empty_history(), {"case": 0.1})
        (c,) = report.cases
        assert c.status == STATUS_NEW and c.baseline_s is None
        assert report.ok

    def test_single_entry_baseline(self):
        report = compare_results(_history_with([0.1]), {"case": 0.105})
        (c,) = report.cases
        assert c.status == STATUS_OK and c.baseline_s == pytest.approx(0.1)

    def test_injected_slowdown_fails(self):
        report = compare_results(
            _history_with([0.1, 0.11]), {"case": 0.2}, tolerance=0.25
        )
        (c,) = report.cases
        assert c.status == STATUS_REGRESSION
        assert not report.ok
        assert "FAIL" in report.format()

    def test_improvement_direction(self):
        report = compare_results(_history_with([0.1]), {"case": 0.05}, tolerance=0.25)
        assert report.cases[0].status == STATUS_IMPROVEMENT
        assert report.ok  # improvements never fail the gate

    def test_window_limits_baseline(self):
        # The fast old entry falls outside the window, so the recent
        # slower values set the bar.
        history = _history_with([0.01] + [0.1] * 5)
        assert baseline_seconds(history, "case", window=5) == pytest.approx(0.1)
        report = compare_results(history, {"case": 0.11}, window=5)
        assert report.cases[0].status == STATUS_OK

    def test_nan_and_zero_baselines_skipped(self):
        history = _history_with([math.nan, 0.0, -1.0])
        assert baseline_seconds(history, "case") is None
        report = compare_results(history, {"case": 0.1})
        assert report.cases[0].status == STATUS_NEW

    def test_nan_current_is_invalid_and_fails(self):
        report = compare_results(_history_with([0.1]), {"case": math.nan})
        (c,) = report.cases
        assert c.status == STATUS_INVALID
        assert not report.ok

    def test_missing_case_in_history_is_new(self):
        report = compare_results(_history_with([0.1], name="other"), {"case": 0.1})
        assert report.cases[0].status == STATUS_NEW

    def test_overhead_entries_do_not_pollute_suite_baseline(self):
        doc = empty_history()
        doc["entries"].append(
            {"kind": KIND_TELEMETRY_OVERHEAD, "results": {"case": {"best_s": 0.001}}}
        )
        assert baseline_seconds(doc, "case") is None

    def test_accepts_bench_result_objects(self):
        report = compare_results(
            _history_with([0.1]), {"case": BenchResult("case", 0.1, 3)}
        )
        assert report.cases[0].status == STATUS_OK

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            compare_results(empty_history(), {}, tolerance=-0.1)
        with pytest.raises(ValueError):
            baseline_seconds(empty_history(), "case", window=0)


# ----------------------------------------------------------------------
# Benchmark suite
# ----------------------------------------------------------------------
class TestBenchSuite:
    def test_registry_names_match_issue_spec(self):
        assert BENCH_NAMES == tuple(c.name for c in BENCH_CASES)
        assert set(BENCH_NAMES) == {
            "pipeline_cycle_loop",
            "fast_cycle_loop",
            "mem_cycle_loop",
            "fast_mem_cycle_loop",
            "issue_select",
            "dvm_interval",
            "resource_alloc",
            "lint_warm",
            "contract_extract",
            "parallel_sweep",
            "relay_roundtrip",
        }
        assert all(c.description for c in BENCH_CASES)

    def test_unknown_case_raises(self):
        with pytest.raises(KeyError):
            get_cases(["no_such_bench"])

    def test_pinned_scale(self):
        # Changing PERF_SCALE resets history comparability; the tests
        # pin it so that is a deliberate, visible decision.
        assert PERF_SCALE.max_cycles == 2_500
        assert PERF_SCALE.warmup_cycles == 500

    def test_run_fast_cases_with_tracer(self):
        tracer = SpanTracer()
        scale = BenchScale(max_cycles=400, warmup_cycles=100)
        results = run_benchmarks(
            ["dvm_interval", "resource_alloc"], scale=scale, repeats=1, tracer=tracer
        )
        assert sorted(results) == ["dvm_interval", "resource_alloc"]
        assert all(r.best_s > 0 and r.repeats == 1 for r in results.values())
        bench_spans = [s for s in tracer.spans if s.cat == "bench"]
        assert len(bench_spans) >= 2
        text = format_results(results)
        assert "dvm_interval" in text

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError):
            run_benchmarks(["dvm_interval"], scale=PERF_SCALE, repeats=0)
