"""Property-style IQ counter-invariant tests.

Random interleavings of ``insert`` / ``wakeup`` / ``remove_issued`` /
``squash_thread`` must keep the three running counters —
``pred_ace_bits``, ``ready_pred_ace``, ``per_thread`` — reconciled with
the actual entry sets after every single operation.  These counters
feed the online AVF estimate DVM steers by (Section 5.1), so a drift
is a silent reliability-measurement bug, not a crash.

Also covers the descriptive invariant errors that replaced bare
``KeyError``/silent underflow in the deallocation paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.issue_queue import IQInvariantError, IssueQueue
from repro.isa.instruction import DynInst, DynState, OpClass, StaticInst

NUM_THREADS = 3
CAPACITY = 12

ACE_BITS = 96
UNACE_BITS = 12


def bits_of(inst):
    return ACE_BITS if inst.ace_pred else UNACE_BITS


def make_inst(tag, thread, src_tags, ace_pred):
    st_inst = StaticInst(pc=0x1000 + tag * 4, opclass=OpClass.IALU, dest=1, srcs=(2,))
    d = DynInst(tag=tag, thread=thread, static=st_inst, stream_pos=tag)
    d.src_tags = list(src_tags)
    d.ace_pred = ace_pred
    return d


def reconcile(iq):
    """Assert every counter matches the ground truth of the entry sets."""
    resident = list(iq.waiting.values()) + list(iq.ready.values())
    assert iq.pred_ace_bits == sum(bits_of(i) for i in resident)
    assert iq.ready_pred_ace == sum(1 for i in iq.ready.values() if i.ace_pred)
    for tid in range(NUM_THREADS):
        expect = sum(1 for i in resident if i.thread == tid)
        assert iq.per_thread[tid] == expect
        assert iq.per_thread[tid] >= 0
    assert len(iq) == len(resident)
    assert 0 <= len(iq) <= iq.capacity


#: One scripted operation: (kind, payload...) chosen by hypothesis.
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, NUM_THREADS - 1),  # thread
            st.booleans(),  # ace_pred
            st.integers(0, 2),  # number of pending producers
        ),
        st.tuples(st.just("wakeup"), st.integers(0, 200)),
        st.tuples(st.just("issue"), st.integers(0, 200)),
        st.tuples(
            st.just("squash"),
            st.integers(0, NUM_THREADS - 1),
            st.integers(0, 200),
        ),
    ),
    min_size=1,
    max_size=60,
)


class TestCounterInvariants:
    @settings(max_examples=200, deadline=None)
    @given(ops=_ops)
    def test_counters_reconcile_under_random_interleavings(self, ops):
        iq = IssueQueue(CAPACITY, NUM_THREADS, bits_of=bits_of)
        next_tag = 1
        cycle = 0
        pending_producers = []  # tags inserted as dependencies, not yet woken
        for op in ops:
            cycle += 1
            kind = op[0]
            if kind == "insert":
                _, thread, ace_pred, n_srcs = op
                if iq.free_entries <= 0:
                    continue
                srcs = []
                for _ in range(n_srcs):
                    src = 1000 + next_tag  # producer outside the IQ
                    srcs.append(src)
                    pending_producers.append(src)
                iq.insert(make_inst(next_tag, thread, srcs, ace_pred), cycle)
                next_tag += 1
            elif kind == "wakeup":
                if not pending_producers:
                    continue
                tag = pending_producers.pop(op[1] % len(pending_producers))
                iq.wakeup(tag, cycle)
            elif kind == "issue":
                ready = iq.ready_ages()
                if not ready:
                    continue
                inst = ready[op[1] % len(ready)]
                iq.remove_issued(inst)
                inst.state = DynState.ISSUED
            elif kind == "squash":
                _, thread, pick = op
                resident = sorted(
                    list(iq.waiting) + list(iq.ready)
                )
                after_tag = resident[pick % len(resident)] if resident else 0
                for inst in iq.squash_thread(thread, after_tag):
                    inst.state = DynState.SQUASHED
            reconcile(iq)
        # Drain: issue everything that can still be woken and issued.
        for tag in list(pending_producers):
            iq.wakeup(tag, cycle)
        for inst in iq.ready_ages():
            iq.remove_issued(inst)
        reconcile(iq)

    @settings(max_examples=50, deadline=None)
    @given(ops=_ops)
    def test_full_squash_always_zeroes_counters(self, ops):
        """After squashing every thread from tag 0, all counters are 0."""
        iq = IssueQueue(CAPACITY, NUM_THREADS, bits_of=bits_of)
        next_tag = 1
        for op in ops:
            if op[0] == "insert" and iq.free_entries > 0:
                _, thread, ace_pred, n_srcs = op
                iq.insert(make_inst(next_tag, thread, [2000 + next_tag] * (n_srcs > 0), ace_pred), 0)
                next_tag += 1
        for tid in range(NUM_THREADS):
            iq.squash_thread(tid, after_tag=0)
        assert len(iq) == 0
        assert iq.pred_ace_bits == 0
        assert iq.ready_pred_ace == 0
        assert iq.per_thread == [0] * NUM_THREADS


class TestInvariantErrors:
    def test_remove_issued_of_absent_instruction_is_descriptive(self):
        iq = IssueQueue(CAPACITY, NUM_THREADS, bits_of=bits_of)
        ghost = make_inst(7, 1, [], True)
        with pytest.raises(IQInvariantError, match=r"tag=7.*thread=1.*absent"):
            iq.remove_issued(ghost)

    def test_remove_issued_of_waiting_instruction_names_waiting(self):
        iq = IssueQueue(CAPACITY, NUM_THREADS, bits_of=bits_of)
        waiting = make_inst(3, 0, [99], True)
        iq.insert(waiting, cycle=0)
        with pytest.raises(IQInvariantError, match="waiting"):
            iq.remove_issued(waiting)

    def test_double_remove_raises_not_keyerror(self):
        iq = IssueQueue(CAPACITY, NUM_THREADS, bits_of=bits_of)
        d = make_inst(1, 0, [], True)
        iq.insert(d, cycle=0)
        iq.remove_issued(d)
        with pytest.raises(IQInvariantError):
            iq.remove_issued(d)

    def test_error_is_a_runtime_error(self):
        assert issubclass(IQInvariantError, RuntimeError)

    def test_counters_untouched_on_failed_remove(self):
        iq = IssueQueue(CAPACITY, NUM_THREADS, bits_of=bits_of)
        d = make_inst(1, 0, [], True)
        iq.insert(d, cycle=0)
        ghost = make_inst(9, 0, [], True)
        with pytest.raises(IQInvariantError):
            iq.remove_issued(ghost)
        reconcile(iq)


class TestConsumerListHygiene:
    @settings(max_examples=150, deadline=None)
    @given(ops=_ops)
    def test_consumers_only_reference_waiting_entries(self, ops):
        """Every instruction on any ``_consumers`` list is a *waiting*
        resident of the queue.  ``squash_thread`` must prune squashed
        waiting entries out of their surviving producers' consumer
        lists; before it did, dead references accumulated there until
        the producer completed (or forever, if it never did)."""
        iq = IssueQueue(CAPACITY, NUM_THREADS, bits_of=bits_of)
        next_tag = 1
        cycle = 0
        pending_producers = []
        for op in ops:
            cycle += 1
            kind = op[0]
            if kind == "insert":
                _, thread, ace_pred, n_srcs = op
                if iq.free_entries <= 0:
                    continue
                srcs = []
                for _ in range(n_srcs):
                    src = 1000 + next_tag
                    srcs.append(src)
                    pending_producers.append(src)
                iq.insert(make_inst(next_tag, thread, srcs, ace_pred), cycle)
                next_tag += 1
            elif kind == "wakeup":
                if not pending_producers:
                    continue
                tag = pending_producers.pop(op[1] % len(pending_producers))
                iq.wakeup(tag, cycle)
            elif kind == "issue":
                ready = iq.ready_ages()
                if not ready:
                    continue
                inst = ready[op[1] % len(ready)]
                iq.remove_issued(inst)
                inst.state = DynState.ISSUED
            elif kind == "squash":
                _, thread, pick = op
                resident = sorted(list(iq.waiting) + list(iq.ready))
                after_tag = resident[pick % len(resident)] if resident else 0
                for inst in iq.squash_thread(thread, after_tag):
                    inst.state = DynState.SQUASHED
            for producer_tag, consumers in iq._consumers.items():
                assert consumers, f"empty consumer list kept for {producer_tag}"
                for c in consumers:
                    assert c.tag in iq.waiting and iq.waiting[c.tag] is c, (
                        f"consumer list of producer {producer_tag} references "
                        f"tag={c.tag} state={c.state.name}, which is not a "
                        "waiting IQ resident"
                    )
