"""SMT pipeline integration: correctness invariants on short runs."""

import pytest

from repro.config import MachineConfig, ReliabilityConfig, SimulationConfig
from repro.core.pipeline import SMTPipeline
from repro.isa.generator import generate_program
from repro.isa.instruction import DynState
from repro.reliability.dvm import DVMController
from repro.reliability.resource_alloc import DynamicIQAllocation
from repro.workloads import get_mix


def short_sim(cycles=3_000, warmup=500, **rel):
    rel_cfg = ReliabilityConfig(
        interval_cycles=500, ace_window=1_000,
        **rel,
    )
    return SimulationConfig(
        max_cycles=cycles, warmup_cycles=warmup, seed=3,
        bp_warmup_instructions=5_000, reliability=rel_cfg,
    )


@pytest.fixture(scope="module")
def cpu_result():
    programs = get_mix("CPU-A").programs(seed=3)
    return SMTPipeline(programs, sim=short_sim()).run()


class TestBasicExecution:
    def test_commits_instructions(self, cpu_result):
        assert cpu_result.committed > 1_000

    def test_every_thread_progresses(self, cpu_result):
        assert all(c > 0 for c in cpu_result.per_thread_committed)

    def test_ipc_positive_and_bounded(self, cpu_result):
        assert 0 < cpu_result.ipc <= 8.0  # commit width bound

    def test_avf_in_unit_interval(self, cpu_result):
        assert 0.0 <= cpu_result.iq_avf <= 1.0
        for s, v in cpu_result.overall_avf.items():
            assert 0.0 <= v <= 1.0, s

    def test_interval_records_cover_run(self, cpu_result):
        assert len(cpu_result.intervals) == 3_000 // 500

    def test_bp_accuracy_sane(self, cpu_result):
        assert 0.5 < cpu_result.bp_accuracy <= 1.0

    def test_ace_fraction_sane(self, cpu_result):
        assert 0.3 < cpu_result.ace_fraction < 0.95


class TestDeterminism:
    def test_same_seed_identical_results(self):
        programs1 = get_mix("MEM-A").programs(seed=5)
        programs2 = get_mix("MEM-A").programs(seed=5)
        r1 = SMTPipeline(programs1, sim=short_sim(cycles=1_500)).run()
        r2 = SMTPipeline(programs2, sim=short_sim(cycles=1_500)).run()
        assert r1.committed == r2.committed
        assert r1.per_thread_committed == r2.per_thread_committed
        assert r1.iq_avf == r2.iq_avf
        assert r1.squashed == r2.squashed

    def test_different_seed_differs(self):
        r1 = SMTPipeline(get_mix("MEM-A").programs(seed=5), sim=short_sim(cycles=1_500)).run()
        sim2 = short_sim(cycles=1_500)
        sim2.seed = 4
        r2 = SMTPipeline(get_mix("MEM-A").programs(seed=5), sim=sim2).run()
        assert r1.committed != r2.committed


class TestStructuralInvariants:
    def test_iq_capacity_never_exceeded(self):
        programs = get_mix("CPU-A").programs(seed=3)
        pipe = SMTPipeline(programs, sim=short_sim(cycles=1_200))
        orig = pipe._tick_stats
        violations = []

        def checked():
            if len(pipe.iq) > pipe.machine.iq_size:
                violations.append(pipe.cycle)
            for t in range(pipe.num_threads):
                if len(pipe.robs[t]) > pipe.machine.rob_size_per_thread:
                    violations.append(("rob", pipe.cycle))
                if len(pipe.lsqs[t]) > pipe.machine.lsq_size_per_thread:
                    violations.append(("lsq", pipe.cycle))
            orig()

        pipe._tick_stats = checked
        pipe.run()
        assert violations == []

    def test_outstanding_counters_never_negative(self):
        programs = get_mix("MEM-A").programs(seed=3)
        pipe = SMTPipeline(programs, sim=short_sim(cycles=1_500))
        orig = pipe._tick_stats
        bad = []

        def checked():
            if any(v < 0 for v in pipe._outstanding_l2):
                bad.append(("l2", pipe.cycle))
            if any(v < 0 for v in pipe._outstanding_l1d):
                bad.append(("l1d", pipe.cycle))
            orig()

        pipe._tick_stats = checked
        pipe.run()
        assert bad == []

    def test_committed_plus_squashed_le_fetched(self):
        programs = get_mix("MIX-A").programs(seed=3)
        pipe = SMTPipeline(programs, sim=short_sim(cycles=1_500))
        res = pipe.run()
        fetched = pipe._next_tag - 1
        assert res.committed + res.squashed <= fetched

    def test_rob_heads_commit_in_tag_order(self):
        programs = get_mix("CPU-A").programs(seed=3)
        pipe = SMTPipeline(programs, sim=short_sim(cycles=1_200))
        last_tag = [0] * pipe.num_threads
        bad = []
        orig = pipe.analyzer.commit

        def checked(dyn, cycle):
            if dyn.tag <= last_tag[dyn.thread]:
                bad.append(dyn.tag)
            last_tag[dyn.thread] = dyn.tag
            orig(dyn, cycle)

        pipe.analyzer.commit = checked
        pipe.run()
        assert bad == []

    def test_max_instructions_stops_early(self):
        programs = get_mix("CPU-A").programs(seed=3)
        sim = short_sim(cycles=50_000)
        sim.max_instructions = 2_000
        res = SMTPipeline(programs, sim=sim).run()
        assert res.committed >= 2_000
        assert res.cycles < 50_000


class TestSchedulersAndPolicies:
    def test_visa_runs_and_commits(self):
        programs = get_mix("CPU-A").programs(seed=3)
        res = SMTPipeline(programs, sim=short_sim(cycles=1_500), scheduler="visa").run()
        assert res.committed > 500

    @pytest.mark.parametrize("policy", ["icount", "stall", "flush", "dg", "pdg", "rr"])
    def test_all_fetch_policies_run(self, policy):
        programs = get_mix("MEM-A").programs(seed=3)
        res = SMTPipeline(
            programs, sim=short_sim(cycles=1_200), fetch_policy=policy
        ).run()
        assert res.committed > 100

    def test_flush_policy_actually_flushes(self):
        programs = get_mix("MEM-A").programs(seed=3)
        res = SMTPipeline(
            programs, sim=short_sim(cycles=2_500), fetch_policy="flush"
        ).run()
        assert res.flushes > 0

    def test_dispatch_cap_respected(self):
        programs = get_mix("CPU-A").programs(seed=3)
        pipe = SMTPipeline(
            programs, sim=short_sim(cycles=1_500),
            dispatch_policy=DynamicIQAllocation(96, min_limit=16),
        )
        orig = pipe._tick_stats
        over = []

        def checked():
            # Dispatch may never push occupancy above the current cap
            # by more than the decode width in the same cycle.
            if len(pipe.iq) > pipe.dispatch_policy.iq_limit + pipe.machine.decode_width:
                over.append(pipe.cycle)
            orig()

        pipe._tick_stats = checked
        pipe.run()
        assert over == []

    def test_single_thread_run(self):
        program = generate_program("gcc", seed=3)
        res = SMTPipeline([program], sim=short_sim(cycles=1_500)).run()
        assert res.committed > 300

    def test_two_thread_run(self):
        programs = [generate_program("gcc", seed=3), generate_program("mcf", seed=4)]
        res = SMTPipeline(programs, sim=short_sim(cycles=1_500)).run()
        assert len(res.per_thread_committed) == 2


class TestDVMIntegration:
    def test_dvm_run_completes(self):
        programs = get_mix("MEM-A").programs(seed=3)
        dvm = DVMController(0.1, config=short_sim().reliability)
        res = SMTPipeline(programs, sim=short_sim(cycles=2_000), dvm=dvm).run()
        assert res.committed > 100
        assert dvm.stats.samples > 0
        assert res.dvm_mean_ratio is not None

    def test_dvm_reduces_interval_avf_vs_baseline(self):
        programs = get_mix("MEM-A").programs(seed=3)
        base = SMTPipeline(programs, sim=short_sim(cycles=2_500)).run()
        target = 0.5 * base.max_online_estimate
        dvm = DVMController(max(target, 1e-3), config=short_sim().reliability)
        controlled = SMTPipeline(programs, sim=short_sim(cycles=2_500), dvm=dvm).run()
        assert controlled.iq_avf <= base.iq_avf


class TestResultProperties:
    def test_warm_cycles(self, cpu_result):
        assert cpu_result.warm_cycles == cpu_result.cycles - cpu_result.warmup_cycles

    def test_pve_monotone_in_target(self, cpu_result):
        # Tighter targets can only increase the emergency fraction.
        targets = [0.9, 0.5, 0.1, 0.01]
        pves = [cpu_result.pve(t * max(cpu_result.max_iq_avf, 1e-9)) for t in targets]
        assert pves == sorted(pves)

    def test_max_avf_bounds_intervals(self, cpu_result):
        assert all(a <= cpu_result.max_iq_avf + 1e-12 for a in cpu_result.warm_iq_interval_avf)

    def test_per_thread_ipc_sums_to_ipc(self, cpu_result):
        assert sum(cpu_result.per_thread_ipc) == pytest.approx(cpu_result.ipc)
