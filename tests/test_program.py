"""Program representation, deterministic behaviour hashing, and the
thread context (checkpoint/rollback)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.generator import generate_program
from repro.isa.instruction import (
    BranchBehavior,
    MemBehavior,
    MemPattern,
    OpClass,
    StaticInst,
)
from repro.isa.program import BasicBlock, SyntheticProgram, ThreadContext, mix64, u01


class TestMix64:
    def test_deterministic(self):
        assert mix64(1, 2, 3) == mix64(1, 2, 3)

    def test_inputs_matter(self):
        assert mix64(1, 2, 3) != mix64(1, 2, 4)
        assert mix64(1, 2, 3) != mix64(2, 1, 3)

    def test_u01_in_range(self):
        for i in range(500):
            v = u01(i, i * 7, 42)
            assert 0.0 <= v < 1.0

    def test_u01_roughly_uniform(self):
        vals = [u01(i, 13, 7) for i in range(2000)]
        assert 0.45 < sum(vals) / len(vals) < 0.55

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 1 << 40), st.integers(0, 1 << 40), st.integers(0, 1 << 30))
    def test_property_64bit_range(self, a, b, s):
        assert 0 <= mix64(a, b, s) < (1 << 64)


def _tiny_program():
    """Two blocks: b0 (alu, branch) -> b1/b0."""
    b0 = BasicBlock(bid=0)
    b0.insts.append(StaticInst(pc=0x0, opclass=OpClass.IALU, dest=1, srcs=(1,)))
    b0.insts.append(
        StaticInst(
            pc=0x4, opclass=OpClass.BRANCH, srcs=(1,),
            branch=BranchBehavior(taken_bias=1.0, predictability=1.0),
            taken_block=1, fall_block=1,
        )
    )
    b1 = BasicBlock(bid=1)
    b1.insts.append(
        StaticInst(
            pc=0x8, opclass=OpClass.LOAD, dest=2, srcs=(1,),
            mem=MemBehavior(MemPattern.HOT, base=0x1000, footprint=1 << 16, hot_size=4096),
        )
    )
    b1.insts.append(StaticInst(pc=0xC, opclass=OpClass.JUMP, taken_block=0))
    return SyntheticProgram(name="tiny", blocks=[b0, b1])


class TestValidation:
    def test_tiny_program_valid(self):
        _tiny_program().validate()

    def test_duplicate_pc_rejected(self):
        b = BasicBlock(bid=0, fall_block=0)
        b.insts = [
            StaticInst(pc=0x0, opclass=OpClass.IALU, dest=1),
            StaticInst(pc=0x0, opclass=OpClass.IALU, dest=2),
        ]
        with pytest.raises(ValueError):
            SyntheticProgram(name="dup", blocks=[b])

    def test_control_mid_block_rejected(self):
        b = BasicBlock(bid=0, fall_block=0)
        b.insts = [
            StaticInst(pc=0x0, opclass=OpClass.JUMP, taken_block=0),
            StaticInst(pc=0x4, opclass=OpClass.IALU, dest=1),
        ]
        with pytest.raises(ValueError):
            SyntheticProgram(name="bad", blocks=[b]).validate()

    def test_dangling_successor_rejected(self):
        b = BasicBlock(bid=0)
        b.insts = [StaticInst(pc=0x0, opclass=OpClass.JUMP, taken_block=7)]
        with pytest.raises(ValueError):
            SyntheticProgram(name="bad", blocks=[b]).validate()

    def test_block_without_exit_rejected(self):
        b = BasicBlock(bid=0)  # no terminator, no fall_block
        b.insts = [StaticInst(pc=0x0, opclass=OpClass.IALU, dest=1)]
        with pytest.raises(ValueError):
            SyntheticProgram(name="bad", blocks=[b]).validate()

    def test_inst_at(self):
        p = _tiny_program()
        assert p.inst_at(0x8).opclass == OpClass.LOAD

    def test_num_static_insts(self):
        assert _tiny_program().num_static_insts == 4


class TestThreadContext:
    def test_walk_follows_control(self):
        ctx = ThreadContext(_tiny_program(), seed=1)
        assert ctx.peek().pc == 0x0
        ctx.advance()
        st = ctx.peek()
        assert st.pc == 0x4
        taken, target = ctx.resolve_control(st)
        assert taken and target == 1
        ctx.advance_control(st, taken, target)
        assert ctx.peek().pc == 0x8

    def test_stream_pos_increments(self):
        ctx = ThreadContext(_tiny_program(), seed=1)
        for i in range(10):
            st = ctx.peek()
            assert ctx.stream_pos == i
            if st.opclass.is_control:
                t, tg = ctx.resolve_control(st)
                ctx.advance_control(st, t, tg)
            else:
                ctx.advance()

    def test_checkpoint_restore_roundtrip(self):
        ctx = ThreadContext(_tiny_program(), seed=1)
        ctx.advance()
        cp = ctx.checkpoint()
        st = ctx.peek()
        ctx.advance_control(st, True, 1)
        ctx.advance()
        ctx.restore(cp)
        assert ctx.peek().pc == 0x4
        assert ctx.stream_pos == 1

    def test_wrong_path_replay_identical(self):
        """After a wrong-path excursion and restore, the correct path
        produces identical addresses/outcomes (pure-function contract)."""
        prog = generate_program("gcc", seed=3)
        ctx = ThreadContext(prog, seed=9)
        # Advance a bit.
        for _ in range(50):
            st = ctx.peek()
            if st.opclass.is_control:
                t, tg = ctx.resolve_control(st)
                ctx.advance_control(st, t, tg)
            else:
                ctx.advance()
        cp = ctx.checkpoint()
        reference = self._collect(ctx, 30)
        ctx.restore(cp)
        # Wrong-path excursion: force the wrong direction once.
        st = ctx.peek()
        if st.opclass.is_control:
            t, tg = ctx.resolve_control(st)
            wrong = st.fall_block if (t and st.fall_block >= 0) else st.taken_block
            if wrong >= 0:
                ctx.advance_control(st, not t, wrong)
                ctx.advance()
        ctx.restore(cp)
        assert self._collect(ctx, 30) == reference

    @staticmethod
    def _collect(ctx, n):
        out = []
        for _ in range(n):
            st = ctx.peek()
            if st.opclass.is_mem:
                out.append(("m", ctx.mem_address(st, ctx.stream_pos)))
            if st.opclass.is_control:
                t, tg = ctx.resolve_control(st)
                out.append(("c", t, tg))
                ctx.advance_control(st, t, tg)
            else:
                ctx.advance()
        return out

    def test_call_stack_push_pop(self):
        prog = generate_program("gcc", seed=3)
        ctx = ThreadContext(prog, seed=9)
        depth0 = len(ctx.call_stack)
        for _ in range(5000):
            st = ctx.peek()
            if st.opclass == OpClass.CALL:
                t, tg = ctx.resolve_control(st)
                ctx.advance_control(st, t, tg)
                assert len(ctx.call_stack) == depth0 + 1
                break
            if st.opclass.is_control:
                t, tg = ctx.resolve_control(st)
                ctx.advance_control(st, t, tg)
            else:
                ctx.advance()
        else:
            pytest.skip("program executed no CALL in 5000 instructions")

    def test_ret_underflow_restarts_at_entry(self):
        prog = _tiny_program()
        # Build a direct RET context.
        b = BasicBlock(bid=0, fall_block=0)
        b.insts = [StaticInst(pc=0x0, opclass=OpClass.RET)]
        p = SyntheticProgram(name="ret", blocks=[b])
        ctx = ThreadContext(p, seed=0)
        taken, target = ctx.resolve_control(ctx.peek())
        assert taken and target == p.entry


class TestBranchOutcomes:
    def test_loop_branch_exits_every_trip(self):
        bb = BranchBehavior(taken_bias=0.9, loop_period=10, loop_trip=4)
        st = StaticInst(
            pc=0x0, opclass=OpClass.BRANCH, srcs=(1,), branch=bb,
            taken_block=0, fall_block=0,
        )
        b = BasicBlock(bid=0, fall_block=0, insts=[st])
        ctx = ThreadContext(SyntheticProgram(name="loop", blocks=[b]), seed=5)
        outcomes = [ctx.branch_taken(st, pos) for pos in range(0, 200, 10)]
        exits = [i for i, t in enumerate(outcomes) if not t]
        assert exits == [3, 7, 11, 15, 19]

    def test_deterministic_branch_constant(self):
        bb = BranchBehavior(taken_bias=1.0, predictability=1.0)
        st = StaticInst(
            pc=0x0, opclass=OpClass.BRANCH, srcs=(1,), branch=bb,
            taken_block=0, fall_block=0,
        )
        b = BasicBlock(bid=0, fall_block=0, insts=[st])
        ctx = ThreadContext(SyntheticProgram(name="det", blocks=[b]), seed=5)
        assert all(ctx.branch_taken(st, p) for p in range(100))

    def test_biased_coin_respects_bias(self):
        bb = BranchBehavior(taken_bias=0.2, predictability=0.0)
        st = StaticInst(
            pc=0x0, opclass=OpClass.BRANCH, srcs=(1,), branch=bb,
            taken_block=0, fall_block=0,
        )
        b = BasicBlock(bid=0, fall_block=0, insts=[st])
        ctx = ThreadContext(SyntheticProgram(name="coin", blocks=[b]), seed=5)
        rate = sum(ctx.branch_taken(st, p) for p in range(3000)) / 3000
        assert 0.15 < rate < 0.25


class TestMemAddresses:
    def _ctx_with(self, mb):
        st = StaticInst(pc=0x0, opclass=OpClass.LOAD, dest=1, srcs=(2,), mem=mb)
        b = BasicBlock(bid=0, fall_block=0, insts=[st])
        return ThreadContext(SyntheticProgram(name="mem", blocks=[b]), seed=5), st

    def test_hot_within_window(self):
        ctx, st = self._ctx_with(
            MemBehavior(MemPattern.HOT, base=0x1000, footprint=1 << 20, hot_size=8192)
        )
        for p in range(200):
            a = ctx.mem_address(st, p)
            assert 0x1000 <= a < 0x1000 + 8192

    def test_sequential_strides(self):
        ctx, st = self._ctx_with(
            MemBehavior(MemPattern.SEQUENTIAL, base=0x1000, footprint=1 << 16, stride=8)
        )
        a0 = ctx.mem_address(st, 0)
        a1 = ctx.mem_address(st, 32)  # one stream "block" later
        assert a1 - a0 == 8

    def test_sequential_wraps_at_footprint(self):
        ctx, st = self._ctx_with(
            MemBehavior(MemPattern.SEQUENTIAL, base=0x1000, footprint=1 << 12, stride=8)
        )
        for p in range(0, 100_000, 1000):
            a = ctx.mem_address(st, p)
            assert 0x1000 <= a < 0x1000 + (1 << 12)

    def test_random_within_footprint(self):
        ctx, st = self._ctx_with(
            MemBehavior(MemPattern.RANDOM, base=0x1000, footprint=1 << 20, page_local_16=12)
        )
        for p in range(500):
            a = ctx.mem_address(st, p)
            assert 0x1000 <= a < 0x1000 + (1 << 20)

    def test_random_page_locality(self):
        ctx, st = self._ctx_with(
            MemBehavior(MemPattern.RANDOM, base=0x1000, footprint=1 << 26, page_local_16=12)
        )
        local = sum(ctx.mem_address(st, p) < 0x1000 + 65536 for p in range(2000))
        assert 0.65 < local / 2000 < 0.85  # ~12/16 expected

    def test_addresses_deterministic(self):
        mb = MemBehavior(MemPattern.RANDOM, base=0, footprint=1 << 20)
        ctx1, st1 = self._ctx_with(mb)
        ctx2, st2 = self._ctx_with(mb)
        assert [ctx1.mem_address(st1, p) for p in range(50)] == [
            ctx2.mem_address(st2, p) for p in range(50)
        ]
