"""Instruction model: opclasses, static/dynamic instructions."""

import pytest

from repro.isa.instruction import (
    BranchBehavior,
    DynInst,
    DynState,
    MemBehavior,
    MemPattern,
    OpClass,
    StaticInst,
)


class TestOpClass:
    def test_mem_classes(self):
        assert OpClass.LOAD.is_mem and OpClass.STORE.is_mem and OpClass.PREFETCH.is_mem
        assert not OpClass.IALU.is_mem

    def test_control_classes(self):
        for op in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET):
            assert op.is_control
        assert not OpClass.LOAD.is_control

    def test_fp_classes(self):
        for op in (OpClass.FALU, OpClass.FMULT, OpClass.FDIV, OpClass.FSQRT):
            assert op.is_fp
        assert not OpClass.IALU.is_fp

    def test_classes_disjoint(self):
        for op in OpClass:
            assert not (op.is_mem and op.is_control)


class TestStaticInst:
    def test_memory_inst_requires_behavior(self):
        with pytest.raises(ValueError):
            StaticInst(pc=4, opclass=OpClass.LOAD, dest=1, srcs=(2,))

    def test_branch_requires_behavior(self):
        with pytest.raises(ValueError):
            StaticInst(pc=4, opclass=OpClass.BRANCH, srcs=(1,))

    def test_plain_alu_ok(self):
        st = StaticInst(pc=4, opclass=OpClass.IALU, dest=3, srcs=(1, 2))
        assert st.writes_reg

    def test_store_has_no_dest(self):
        st = StaticInst(
            pc=4, opclass=OpClass.STORE, srcs=(1, 2),
            mem=MemBehavior(MemPattern.HOT, base=0, footprint=4096),
        )
        assert not st.writes_reg

    def test_ace_hint_defaults_true(self):
        st = StaticInst(pc=4, opclass=OpClass.IALU, dest=1)
        assert st.ace_hint is True  # conservative default


class TestDynInst:
    def _dyn(self):
        st = StaticInst(pc=0x10, opclass=OpClass.IALU, dest=1, srcs=(2,))
        return DynInst(tag=5, thread=1, static=st, stream_pos=7)

    def test_initial_state(self):
        d = self._dyn()
        assert d.state == DynState.FETCHED
        assert d.ace is None
        assert d.is_ready  # no pending producer tags

    def test_pc_and_opclass_delegate(self):
        d = self._dyn()
        assert d.pc == 0x10
        assert d.opclass == OpClass.IALU

    def test_pending_tags_block_readiness(self):
        d = self._dyn()
        d.src_tags = [3]
        assert not d.is_ready

    def test_repr_mentions_tag_and_state(self):
        text = repr(self._dyn())
        assert "tag=5" in text and "FETCHED" in text


class TestBranchBehavior:
    def test_loop_fields_default_off(self):
        bb = BranchBehavior(taken_bias=0.5)
        assert bb.loop_period == 0
        assert bb.loop_trip == 0
