"""Functional unit pools and latencies (Table 2)."""

import pytest

from repro.config import MachineConfig
from repro.core.functional_units import FunctionalUnitPool, op_latency
from repro.isa.instruction import OpClass


@pytest.fixture()
def pool():
    return FunctionalUnitPool(MachineConfig())


class TestPools:
    def test_ialu_pool_limit(self, pool):
        for _ in range(8):
            assert pool.try_issue(OpClass.IALU)
        assert not pool.try_issue(OpClass.IALU)

    def test_branch_shares_ialu(self, pool):
        for _ in range(8):
            assert pool.try_issue(OpClass.BRANCH)
        assert not pool.try_issue(OpClass.IALU)

    def test_loadstore_pool_limit(self, pool):
        for _ in range(4):
            assert pool.try_issue(OpClass.LOAD)
        assert not pool.try_issue(OpClass.STORE)

    def test_fp_pools_independent_of_int(self, pool):
        for _ in range(8):
            pool.try_issue(OpClass.IALU)
        assert pool.try_issue(OpClass.FALU)

    def test_mult_div_shared_pool(self, pool):
        for _ in range(4):
            assert pool.try_issue(OpClass.IMULT)
        assert not pool.try_issue(OpClass.IDIV)

    def test_fp_mult_div_sqrt_shared(self, pool):
        for _ in range(4):
            assert pool.try_issue(OpClass.FDIV)
        assert not pool.try_issue(OpClass.FSQRT)

    def test_new_cycle_releases(self, pool):
        for _ in range(8):
            pool.try_issue(OpClass.IALU)
        pool.new_cycle()
        assert pool.try_issue(OpClass.IALU)

    def test_available(self, pool):
        assert pool.available(OpClass.LOAD) == 4
        pool.try_issue(OpClass.LOAD)
        assert pool.available(OpClass.PREFETCH) == 3

    def test_total_units(self, pool):
        assert pool.total_units == 8 + 4 + 4 + 8 + 4

    def test_busy_integral(self, pool):
        pool.try_issue(OpClass.IALU)
        pool.try_issue(OpClass.FALU)
        assert pool.busy_integral == 2


class TestLatencies:
    def setup_method(self):
        self.m = MachineConfig()

    @pytest.mark.parametrize("op,attr", [
        (OpClass.IALU, "lat_int_alu"),
        (OpClass.IMULT, "lat_int_mult"),
        (OpClass.IDIV, "lat_int_div"),
        (OpClass.FALU, "lat_fp_alu"),
        (OpClass.FMULT, "lat_fp_mult"),
        (OpClass.FDIV, "lat_fp_div"),
        (OpClass.FSQRT, "lat_fp_sqrt"),
    ])
    def test_latency_mapping(self, op, attr):
        assert op_latency(self.m, op) == getattr(self.m, attr)

    def test_control_is_single_cycle(self):
        assert op_latency(self.m, OpClass.BRANCH) == 1
        assert op_latency(self.m, OpClass.NOP) == 1

    def test_latency_ordering(self):
        # divides are slower than multiplies which are slower than adds
        assert (
            op_latency(self.m, OpClass.IALU)
            < op_latency(self.m, OpClass.IMULT)
            < op_latency(self.m, OpClass.IDIV)
        )
