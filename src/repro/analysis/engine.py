"""Lint engine: file discovery, parsing, checker dispatch, suppression.

The engine is deliberately single-pass and stateless per file: every
checker receives a :class:`FileContext` (path, source, parsed AST) and
yields :class:`Diagnostic` records; the engine filters them through the
file's suppression table and returns the sorted survivors.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity, sort_key
from repro.analysis.registry import BaseChecker, make_checkers
from repro.analysis.suppress import SuppressionTable, parse_suppressions

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "build", "dist", ".mypy_cache"})


@dataclass
class FileContext:
    """Everything a checker may inspect about one module."""

    path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionTable

    @property
    def basename(self) -> str:
        return os.path.basename(self.path)

    def relpath(self, root: str | None = None) -> str:
        try:
            return os.path.relpath(self.path, root or os.getcwd())
        except ValueError:  # different drive (Windows); keep absolute
            return self.path


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic .py file list."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


class LintEngine:
    """Run a set of checkers over files and collect diagnostics."""

    def __init__(self, rules: Iterable[str] | None = None):
        self.checkers: list[BaseChecker] = make_checkers(rules)

    def check_source(self, source: str, path: str = "<string>") -> list[Diagnostic]:
        """Lint one module given as text (unit-test/fixture entry)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Diagnostic(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="syntax",
                    message=f"syntax error: {exc.msg}",
                    severity=Severity.ERROR,
                )
            ]
        ctx = FileContext(
            path=path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )
        found: list[Diagnostic] = []
        for checker in self.checkers:
            if not checker.applies_to(ctx):
                continue
            for diag in checker.check(ctx):
                if not ctx.suppressions.is_suppressed(diag.rule, diag.line):
                    found.append(diag)
        return sorted(found, key=sort_key)

    def check_file(self, path: str) -> list[Diagnostic]:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        return self.check_source(source, path=path)

    def run(self, paths: Sequence[str]) -> list[Diagnostic]:
        """Lint every .py file reachable from ``paths``."""
        found: list[Diagnostic] = []
        for path in iter_python_files(paths):
            found.extend(self.check_file(path))
        return sorted(found, key=sort_key)
