"""Lint engine: file discovery, parsing, checker dispatch, suppression.

Two layers share one parse per file:

* the **per-file layer** (PR 1) hands every checker a
  :class:`FileContext` (path, source, parsed AST) and collects
  :class:`Diagnostic` records, now behind a file-hash-keyed incremental
  cache (:mod:`repro.analysis.flow.cache`) and an optional ``jobs``
  process pool;
* the **project layer** builds one
  :class:`~repro.analysis.flow.project.ProjectContext` from the same
  ``FileContext`` objects and runs every registered
  :class:`~repro.analysis.registry.ProjectChecker` (call-graph and
  CFG/dataflow passes) once per run.

Both layers filter through the per-file suppression tables; suppression
comments naming a rule the registry has never heard of earn a
``suppress`` warning so typos cannot silently disable nothing.
"""

from __future__ import annotations

import ast
import os
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, ContextManager, Iterable, Iterator, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity, sort_key
from repro.analysis.flow.cache import CacheStats, DiagnosticCache, source_digest
from repro.analysis.registry import BaseChecker, ProjectChecker, all_rules, make_checkers
from repro.analysis.suppress import WILDCARD, SuppressionTable, parse_suppressions

#: Directory names never descended into.  ``lint_fixtures`` holds the
#: intentionally-broken counterexamples the test suite feeds the
#: checkers file-by-file; discovery must not trip over them.
_SKIP_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".venv",
        "venv",
        "build",
        "dist",
        ".mypy_cache",
        ".pytest_cache",
        ".repro-lint-cache",
        ".hypothesis",
        "node_modules",
        "lint_fixtures",
    }
)

#: Roots linted when the CLI is invoked with no paths: everything that
#: executes — the package, its tests, the benchmark figures and the
#: examples — not just ``src/``.
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples")


def _span_factory(tracer: Any) -> Callable[..., ContextManager[Any]]:
    """Phase-span helper: a no-op without a tracer.

    The tracer is duck-typed (anything with ``span(name, cat, **args)``)
    so this module keeps no dependency on :mod:`repro.perf`.
    """
    if tracer is None:
        return lambda name, **args: nullcontext()
    return lambda name, **args: tracer.span(name, cat="lint", **args)


@dataclass
class FileContext:
    """Everything a checker may inspect about one module."""

    path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionTable

    @property
    def basename(self) -> str:
        return os.path.basename(self.path)

    def relpath(self, root: str | None = None) -> str:
        try:
            return os.path.relpath(self.path, root or os.getcwd())
        except ValueError:  # different drive (Windows); keep absolute
            return self.path


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic .py file list."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def default_roots(cwd: str | None = None) -> list[str]:
    """The :data:`DEFAULT_ROOTS` that exist under ``cwd``."""
    base = cwd or os.getcwd()
    return [os.path.join(base, r) if cwd else r for r in DEFAULT_ROOTS
            if os.path.isdir(os.path.join(base, r))]


def _syntax_diagnostic(path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        rule="syntax",
        message=f"syntax error: {exc.msg}",
        severity=Severity.ERROR,
    )


def _unknown_suppression_diags(ctx: FileContext) -> list[Diagnostic]:
    """``suppress`` warnings for directives naming unregistered rules."""
    known = set(all_rules()) | {WILDCARD, "syntax", "suppress"}
    diags: list[Diagnostic] = []
    for rule, line in ctx.suppressions.mentions:
        if rule not in known:
            diags.append(
                Diagnostic(
                    path=ctx.path,
                    line=line,
                    col=0,
                    rule="suppress",
                    message=(
                        f"suppression names unknown rule {rule!r}; it silences "
                        "nothing (registered rules: --list-rules)"
                    ),
                    severity=Severity.WARNING,
                    symbol=rule,
                )
            )
    return diags


# -- process-pool worker (module-level so fork/spawn can import it) -----
_WORKER_ENGINE: "LintEngine | None" = None
_WORKER_RULES: list[str] | None = None


def _pool_check_file(args: tuple[str, list[str]]) -> list[Diagnostic]:
    global _WORKER_ENGINE, _WORKER_RULES
    path, rules = args
    if _WORKER_ENGINE is None or _WORKER_RULES != rules:
        # Deliberate per-process memo: each pool worker keeps one warm
        # engine; the parent never reads these globals back.
        _WORKER_ENGINE = LintEngine(rules)  # lint: disable=fork-safety
        _WORKER_RULES = rules  # lint: disable=fork-safety
    return _WORKER_ENGINE.check_file(path)


class LintEngine:
    """Run per-file checkers and project passes over files."""

    def __init__(
        self,
        rules: Iterable[str] | None = None,
        *,
        cache_dir: str | None = None,
    ):
        self.checkers: list[BaseChecker] = make_checkers(rules)
        self.file_checkers = [c for c in self.checkers if not isinstance(c, ProjectChecker)]
        self.project_checkers = [c for c in self.checkers if isinstance(c, ProjectChecker)]
        self.cache = DiagnosticCache(cache_dir) if cache_dir else None

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats if self.cache else CacheStats()

    # -- per-file layer ------------------------------------------------
    def check_source(self, source: str, path: str = "<string>") -> list[Diagnostic]:
        """Lint one module given as text (unit-test/fixture entry)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [_syntax_diagnostic(path, exc)]
        ctx = FileContext(
            path=path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )
        return sorted(self._check_context(ctx), key=sort_key)

    def _check_context(self, ctx: FileContext) -> list[Diagnostic]:
        found = _unknown_suppression_diags(ctx)
        for checker in self.file_checkers:
            if not checker.applies_to(ctx):
                continue
            for diag in checker.check(ctx):
                found.append(diag)
        return [
            d for d in found if not ctx.suppressions.is_suppressed(d.rule, d.line)
        ]

    def check_file(self, path: str) -> list[Diagnostic]:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        return self.check_source(source, path=path)

    # -- full runs -----------------------------------------------------
    def run(
        self,
        paths: Sequence[str],
        *,
        jobs: int = 1,
        file_phase: bool = True,
        project_phase: bool = True,
        tracer: "object | None" = None,
    ) -> list[Diagnostic]:
        """Lint every .py file reachable from ``paths``.

        ``jobs > 1`` fans the per-file phase out over a process pool;
        the project passes always run in-process (they need the shared
        :class:`ProjectContext`).  With a cache attached, files whose
        content hash is unchanged replay their recorded diagnostics.
        ``tracer`` may be a :class:`repro.perf.spans.SpanTracer`; the
        scan / per-file / project phases then record ``lint`` spans
        for Chrome-trace export (``repro.lint --trace-out``).
        """
        span = _span_factory(tracer)
        files = list(iter_python_files(paths))
        found: list[Diagnostic] = []
        contexts: list[FileContext] = []
        need_project = project_phase and bool(self.project_checkers)

        if self.cache is not None:
            self.cache.open(
                sorted(c.rule for c in self.file_checkers),
                sorted(c.rule for c in self.project_checkers),
            )

        digests: dict[str, str] = {}
        raws: dict[str, bytes] = {}
        pending: list[tuple[str, str, bytes]] = []  # (path, digest, raw)
        with span("lint.scan", files=len(files)):
            for path in files:
                with open(path, "rb") as fh:
                    raw = fh.read()
                digests[path] = source_digest(raw)
                raws[path] = raw

        # A project snapshot whose whole path->digest map matches skips
        # the ProjectContext build entirely; one changed file discards
        # it, re-running every project pass (transitive invalidation).
        # Project checkers may declare non-Python inputs (e.g. the
        # committed backend contract) via ``fingerprint_files``; their
        # digests join the snapshot key so editing one invalidates it.
        project_cached: list[Diagnostic] | None = None
        project_digests = dict(digests)
        if need_project:
            for checker in self.project_checkers:
                for extra in getattr(checker, "fingerprint_files", ()):
                    try:
                        with open(extra, "rb") as fh:
                            project_digests[extra] = source_digest(fh.read())
                    except OSError:
                        project_digests[extra] = "<missing>"
        if need_project and self.cache is not None:
            project_cached = self.cache.lookup_project(project_digests)
        build_project = need_project and project_cached is None

        for path in files:
            cached = (
                self.cache.lookup(path, digests[path])
                if self.cache is not None and file_phase
                else None
            )
            if cached is not None:
                found.extend(cached)
                if build_project:
                    ctx = self._parse_context(path, raws[path])
                    if ctx is not None:
                        contexts.append(ctx)
            else:
                pending.append((path, digests[path], raws[path]))

        with span("lint.file-checks", pending=len(pending), jobs=jobs):
            if pending and file_phase and jobs > 1:
                found.extend(self._run_pool(pending, jobs, build_project, contexts))
            else:
                for path, digest, raw in pending:
                    ctx = self._parse_context(path, raw)
                    if ctx is None:
                        diags = [self._syntax_for(path, raw)]
                    else:
                        if build_project:
                            contexts.append(ctx)
                        diags = self._check_context(ctx) if file_phase else []
                    if file_phase:
                        found.extend(diags)
                        if self.cache is not None:
                            self.cache.store(path, digest, diags)

        if need_project:
            with span("lint.project", modules=len(contexts)):
                if project_cached is not None:
                    found.extend(project_cached)
                else:
                    project_diags = self._run_project(contexts)
                    found.extend(project_diags)
                    if self.cache is not None:
                        self.cache.store_project(project_digests, project_diags)
        if self.cache is not None:
            self.cache.flush()
        return sorted(found, key=sort_key)

    def _run_pool(
        self,
        pending: list[tuple[str, str, bytes]],
        jobs: int,
        build_project: bool,
        contexts: list[FileContext],
    ) -> list[Diagnostic]:
        """Check ``pending`` files on a process pool; fall back serially."""
        rules = sorted(c.rule for c in self.file_checkers)
        found: list[Diagnostic] = []
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(
                    pool.map(_pool_check_file, [(p, rules) for p, _, _ in pending])
                )
        except (ImportError, OSError, NotImplementedError):
            results = [self.check_file(p) for p, _, _ in pending]
        for (path, digest, raw), diags in zip(pending, results):
            found.extend(diags)
            if self.cache is not None:
                self.cache.store(path, digest, diags)
            if build_project:
                ctx = self._parse_context(path, raw)
                if ctx is not None:
                    contexts.append(ctx)
        return found

    def _parse_context(self, path: str, raw: bytes) -> FileContext | None:
        try:
            source = raw.decode("utf-8")
            tree = ast.parse(source, filename=path)
        except (SyntaxError, UnicodeDecodeError):
            return None
        return FileContext(
            path=path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )

    def _syntax_for(self, path: str, raw: bytes) -> Diagnostic:
        try:
            ast.parse(raw.decode("utf-8", errors="replace"), filename=path)
        except SyntaxError as exc:
            return _syntax_diagnostic(path, exc)
        return Diagnostic(
            path=path,
            line=1,
            col=0,
            rule="syntax",
            message="file is not valid UTF-8 Python",
            severity=Severity.ERROR,
        )

    def _run_project(self, contexts: list[FileContext]) -> list[Diagnostic]:
        """Build the shared ProjectContext and run every project pass."""
        from repro.analysis.flow.project import ProjectContext

        project = ProjectContext(sorted(contexts, key=lambda c: c.path))
        if self.cache is not None:
            self.cache.store_deps(_import_deps(project))
        tables = {ctx.path: ctx.suppressions for ctx in contexts}
        found: list[Diagnostic] = []
        for checker in self.project_checkers:
            for diag in checker.check_project(project):
                table = tables.get(diag.path)
                if table is not None and table.is_suppressed(diag.rule, diag.line):
                    continue
                found.append(diag)
        return found


def _import_deps(project: "Any") -> dict[str, list[str]]:
    """Project-internal import edges as a ``path -> [dep paths]`` map.

    An import of ``m.C`` depends on module ``m``; targets outside the
    scanned file set contribute no edge.  ``repro.lint --changed``
    inverts this map to find the reverse-dependent closure of a diff.
    """
    deps: dict[str, list[str]] = {}
    for _, mod in sorted(project.modules.items()):
        targets: set[str] = set()
        for dotted in mod.imports.values():
            dep = project.modules_by_name.get(dotted)
            if dep is None and "." in dotted:
                dep = project.modules_by_name.get(dotted.rsplit(".", 1)[0])
            if dep is not None and dep.path != mod.path:
                targets.add(dep.path)
        deps[mod.path] = sorted(targets)
    return deps
