"""Per-method local effect extraction.

One pass over a method body produces its :class:`LocalEffects`: the
architectural state paths it reads and writes *directly*, plus the
call sites whose effects the interprocedural fold resolves later.

Paths are dotted attribute chains rooted at the enclosing object
(``robs[*].entries``); ``[*]`` marks a container-element access — the
analysis never distinguishes individual indices.  A simple alias
environment tracks locals bound to self-rooted paths (``rob =
self.robs[t]``) so writes and calls through them attribute to the
right state.  Everything unresolvable (parameters, call results,
globals) contributes nothing: the summaries are a conservative
*under*-approximation, which is the right polarity for a contract
that lists what the loop is known to touch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Builtin container methods that mutate their receiver.  A call
#: ``path.append(x)`` that does not resolve to a project method is a
#: write to ``path[*]``.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "add",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Segment cap keeping folded paths finite through call cycles.
MAX_PATH_SEGMENTS = 4


@dataclass(frozen=True)
class Location:
    """Source anchor of one access (AST convention: 0-based column)."""

    line: int
    col: int
    end_line: int = 0
    end_col: int = 0


@dataclass(frozen=True)
class CallSite:
    """A method call whose effects the interprocedural fold resolves.

    ``receiver`` is the self-rooted path of the object the method is
    invoked on — ``""`` for ``self.method()``, ``"robs[*]"`` for
    ``self.robs[t].method()`` or an alias to it.
    """

    receiver: str
    method: str
    location: Location


@dataclass
class LocalEffects:
    """Directly-observable effects of one method body."""

    qualname: str
    #: path -> first access location.
    reads: dict[str, Location] = field(default_factory=dict)
    writes: dict[str, Location] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)


def truncate_path(path: str) -> str:
    """Cap a path at :data:`MAX_PATH_SEGMENTS` dotted segments."""
    parts = path.split(".")
    if len(parts) <= MAX_PATH_SEGMENTS:
        return path
    return ".".join(parts[:MAX_PATH_SEGMENTS])


def join_path(prefix: str, path: str) -> str:
    """``robs[*]`` + ``entries[*]`` -> ``robs[*].entries[*]``."""
    if not prefix:
        return truncate_path(path)
    if not path:
        return truncate_path(prefix)
    return truncate_path(f"{prefix}.{path}")


def path_root(path: str) -> str:
    """First attribute segment, without any ``[*]`` marker."""
    return path.split(".", 1)[0].replace("[*]", "")


def paths_overlap(a: str, b: str) -> bool:
    """Whether two paths may refer to overlapping state (one is a
    segment-prefix of the other)."""
    if a == b:
        return True
    shorter, longer = (a, b) if len(a) < len(b) else (b, a)
    if not longer.startswith(shorter):
        return False
    return longer[len(shorter)] in ".["


def _loc(node: ast.AST) -> Location:
    return Location(
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        end_line=getattr(node, "end_lineno", None) or 0,
        end_col=getattr(node, "end_col_offset", None) or 0,
    )


class _EffectVisitor(ast.NodeVisitor):
    """Single forward pass; the alias environment is flow-insensitive
    within one body (rebinding a local to a non-path kills the alias)."""

    def __init__(self, effects: LocalEffects, self_name: str):
        self.effects = effects
        self.self_name = self_name
        self.aliases: dict[str, str] = {}

    # -- path resolution ----------------------------------------------
    def resolve(self, node: ast.expr) -> str | None:
        """Self-rooted path of ``node``, or None when unresolvable.
        Returns ``""`` for the root object itself."""
        if isinstance(node, ast.Name):
            if node.id == self.self_name:
                return ""
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return join_path(base, node.attr)
        if isinstance(node, ast.Subscript):
            base = self.resolve(node.value)
            if base in (None, ""):
                return None
            return truncate_path(f"{base}[*]")
        return None

    # -- recording -----------------------------------------------------
    def _read(self, path: str, node: ast.AST) -> None:
        if path:
            self.effects.reads.setdefault(path, _loc(node))

    def _write(self, path: str, node: ast.AST) -> None:
        if path:
            self.effects.writes.setdefault(path, _loc(node))

    def _visit_read(self, node: ast.expr) -> None:
        """Record the outermost resolvable path; descend only into the
        parts that are not on the resolved chain (subscript indices)."""
        path = self.resolve(node)
        if path:
            self._read(path, node)
            current: ast.expr = node
            while isinstance(current, (ast.Attribute, ast.Subscript)):
                if isinstance(current, ast.Subscript):
                    self.visit(current.slice)
                current = current.value
            return
        self.generic_visit_expr(node)

    def generic_visit_expr(self, node: ast.expr) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    # -- statements ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        value_path = self.resolve(node.value)
        for target in node.targets:
            self._handle_target(target, value_path)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._handle_target(node.target, self.resolve(node.value))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        path = self.resolve(node.target)
        if path:
            self._read(path, node.target)
            self._write(path, node.target)
        elif isinstance(node.target, ast.Name):
            self.aliases.pop(node.target.id, None)

    def _handle_target(self, target: ast.expr, value_path: str | None) -> None:
        if isinstance(target, ast.Name):
            # Rebinding a local: it aliases the value's path or nothing.
            if value_path:
                self.aliases[target.id] = value_path
                self._read(value_path, target)
            else:
                self.aliases.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_target(
                    elt.value if isinstance(elt, ast.Starred) else elt, None
                )
            return
        path = self.resolve(target)
        if path:
            self._write(path, target)
            return
        # Unresolvable attribute/subscript target: visit the base for
        # the reads it performs.
        for child in ast.iter_child_nodes(target):
            self.visit(child)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        iter_path = self.resolve(node.iter)
        if isinstance(node.target, ast.Name):
            if iter_path:
                # ``for rob in self.robs`` aliases the element.
                self.aliases[node.target.id] = truncate_path(f"{iter_path}[*]")
            else:
                self.aliases.pop(node.target.id, None)
        else:
            self._handle_target(node.target, None)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            path = self.resolve(target)
            if path:
                self._write(path, target)
            if isinstance(target, ast.Name):
                self.aliases.pop(target.id, None)

    # -- expressions ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = self.resolve(func.value)
            if receiver is not None:
                self.effects.calls.append(
                    CallSite(receiver=receiver, method=func.attr, location=_loc(node))
                )
                if receiver:
                    self._read(receiver, func.value)
            else:
                self.visit(func.value)
        for arg in node.args:
            self.visit(arg.value if isinstance(arg, ast.Starred) else arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            path = self.aliases.get(node.id)
            if path:
                self._read(path, node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self._visit_read(node)
        else:
            self.generic_visit_expr(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load):
            self._visit_read(node)
        else:
            self.generic_visit_expr(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Lambda bodies read state at call time, not definition time —
        # but the common ``key=lambda i: i.tag`` touches no self state;
        # visiting the body with the current env is a fair approximation.
        self.visit(node.body)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested defs have their own self

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return


def _self_name(func: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    args = func.args.posonlyargs + func.args.args
    return args[0].arg if args else None


def extract_local_effects(
    func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
) -> LocalEffects:
    """The directly-observable effects of one method body."""
    effects = LocalEffects(qualname=qualname)
    self_name = _self_name(func)
    if self_name is None:
        return effects
    visitor = _EffectVisitor(effects, self_name)
    for stmt in func.body:
        visitor.visit(stmt)
    return effects
