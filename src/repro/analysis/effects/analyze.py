"""Interprocedural effect fold, stage discovery and SoA verdicts.

:class:`EffectAnalysis` wraps a :class:`~repro.analysis.flow.project.
ProjectContext` and answers, for any method, the transitively folded
read/write sets over the *pipeline's* state: callee effects on their
own ``self`` are re-rooted through the receiver path at each call site
(``rob.commit_head()`` with ``rob = self.robs[t]`` folds the ROB's
``entries[*]`` writes in as ``robs[*].entries[*]``).  Receiver types
come from a constructor-typed-attribute pass over each class's
``__init__`` (``self.iq = IssueQueue(...)``, ``self.robs =
[ReorderBuffer(...) for t in range(n)]``).

:class:`PipelineContract` runs the fold from the pipeline's ``run``
entry: stage methods (discovered from the ``bus.stage = "..."`` labels
in the run loop, falling back to the direct ``self._stage()`` call
sequence), per-stage effect sets, inferred stage-ordering
dependencies, per-thread vs shared state partitioning, and an
SoA-feasibility verdict per architectural structure extending
:mod:`repro.analysis.perfmodel.vectorize`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.effects.model import (
    MUTATOR_METHODS,
    CallSite,
    LocalEffects,
    Location,
    extract_local_effects,
    join_path,
    path_root,
    paths_overlap,
    truncate_path,
)
from repro.analysis.flow.project import ProjectContext
from repro.analysis.flow.symbols import ClassInfo, ModuleInfo
from repro.analysis.perfmodel.vectorize import classify_function

#: Architectural structures that get an SoA-feasibility verdict; the
#: key is the conventional short name used in the contract document.
STRUCTURE_CLASSES = {
    "IssueQueue": "iq",
    "ReorderBuffer": "rob",
    "LoadStoreQueue": "lsq",
    "RenameTable": "rename",
    "FunctionalUnitPool": "fu",
}

#: Constructors of growable (pointer-chasing) containers — the
#: antithesis of a fixed-slot struct-of-arrays layout.
_GROWABLE_CONSTRUCTORS = frozenset({"deque", "dict", "set", "defaultdict", "list"})


def _iter_self_assigns(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[ast.stmt, str, ast.expr]]:
    """Every ``self.<attr> = value`` binding in ``func``, covering both
    plain and annotated assignments (``self.x: dict[int, T] = {}``)."""
    out: list[tuple[ast.stmt, str, ast.expr]] = []
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                out.append((stmt, target.attr, value))
    return out


@dataclass(frozen=True)
class Access:
    """One folded state access, anchored where this frame caused it."""

    path: str
    location: Location


@dataclass
class EffectSummary:
    """Folded (transitive) read/write sets of one method."""

    qualname: str
    reads: dict[str, Location] = field(default_factory=dict)
    writes: dict[str, Location] = field(default_factory=dict)
    #: resolved callee qualnames, for reachability queries.
    callees: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class SoABlocker:
    """One reason a structure resists struct-of-arrays translation."""

    kind: str
    qualname: str
    line: int
    detail: str

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "qualname": self.qualname,
            "line": self.line,
            "detail": self.detail,
        }


@dataclass
class StructureVerdict:
    """SoA-feasibility verdict for one architectural structure."""

    name: str
    class_qualname: str
    blockers: list[SoABlocker]

    @property
    def vectorizable(self) -> bool:
        return not self.blockers

    def to_dict(self) -> dict[str, object]:
        return {
            "class": self.class_qualname,
            "vectorizable": self.vectorizable,
            "blockers": [b.to_dict() for b in self.blockers],
        }


class EffectAnalysis:
    """Interprocedural effect queries over one project."""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.graph = project.call_graph
        self._local: dict[str, LocalEffects] = {}
        self._summaries: dict[str, EffectSummary] = {}
        self._attr_types: dict[str, dict[str, str]] = {}
        self._visiting: set[str] = set()

    # -- constructor-typed attributes ----------------------------------
    def attr_types(self, cls_qualname: str) -> dict[str, str]:
        """``attr -> class qualname`` for attributes whose ``__init__``
        value is a project-class constructor (directly, or as the
        element of a list comprehension / list-multiply)."""
        cached = self._attr_types.get(cls_qualname)
        if cached is not None:
            return cached
        types: dict[str, str] = {}
        self._attr_types[cls_qualname] = types
        resolved = self.graph.resolve_class(cls_qualname)
        if resolved is None:
            return types
        mod, cls = resolved
        init = cls.methods.get("__init__")
        if init is None:
            return types
        for _stmt, attr, value in _iter_self_assigns(init):
            ctor = self._constructed_class(mod, value)
            if ctor is not None:
                types.setdefault(attr, ctor)
        return types

    def _constructed_class(self, mod: ModuleInfo, value: ast.expr) -> str | None:
        if isinstance(value, ast.ListComp) and isinstance(value.elt, ast.Call):
            value = value.elt
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult):
            if isinstance(value.left, ast.List) and len(value.left.elts) == 1:
                elt = value.left.elts[0]
                if isinstance(elt, ast.Call):
                    value = elt
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            # module.Class(...) through a plain import.
            base = mod.imports.get(func.value.id)
            if base is not None:
                name = f"{base}.{func.attr}"
        if name is None:
            return None
        if name in mod.classes:
            return f"{mod.name}.{name}"
        target = mod.imports.get(name, name)
        resolved = self.graph.resolve_class(target)
        if resolved is not None:
            return resolved[1].qualname
        return None

    def _receiver_class(self, owner_qualname: str, receiver: str) -> str | None:
        """Class of the object at ``receiver`` (a path on ``owner``)."""
        current = owner_qualname
        for segment in receiver.split("."):
            attr = segment.replace("[*]", "")
            current = self.attr_types(current).get(attr) if current else None
            if current is None:
                return None
        return current

    # -- local + folded summaries --------------------------------------
    def local(self, qualname: str) -> LocalEffects | None:
        cached = self._local.get(qualname)
        if cached is not None:
            return cached
        node = self.graph.functions.get(qualname)
        if node is None:
            return None
        effects = extract_local_effects(node.node, qualname)
        self._local[qualname] = effects
        return effects

    def summary(self, qualname: str) -> EffectSummary:
        """Transitively folded effects of ``qualname`` on its own
        ``self`` state.  Cycles contribute their already-folded part."""
        cached = self._summaries.get(qualname)
        if cached is not None:
            return cached
        summary = EffectSummary(qualname=qualname)
        if qualname in self._visiting:
            return summary  # cycle cut: the caller merges the fixpoint
        local = self.local(qualname)
        if local is None:
            return summary
        self._visiting.add(qualname)
        try:
            for path, loc in local.reads.items():
                summary.reads.setdefault(path, loc)
            for path, loc in local.writes.items():
                summary.writes.setdefault(path, loc)
            node = self.graph.functions[qualname]
            owner = f"{node.module}.{node.cls}" if node.cls else None
            for call in local.calls:
                self._fold_call(summary, owner, call)
        finally:
            self._visiting.discard(qualname)
        self._summaries[qualname] = summary
        return summary

    def _fold_call(
        self, summary: EffectSummary, owner: str | None, call: CallSite
    ) -> None:
        callee = self._resolve_callsite(owner, call)
        if callee is None:
            # A builtin mutator on a state path is a container write.
            if call.receiver and call.method in MUTATOR_METHODS:
                summary.writes.setdefault(
                    truncate_path(f"{call.receiver}[*]"), call.location
                )
            return
        summary.callees.add(callee)
        sub = self.summary(callee)
        summary.callees.update(sub.callees)
        for path in sub.reads:
            summary.reads.setdefault(join_path(call.receiver, path), call.location)
        for path in sub.writes:
            summary.writes.setdefault(join_path(call.receiver, path), call.location)

    def _resolve_callsite(self, owner: str | None, call: CallSite) -> str | None:
        if call.receiver == "":
            if owner is None:
                return None
            resolved = self.graph.resolve_class(owner)
            if resolved is None:
                return None
            return self.graph.resolve_method(resolved[0], resolved[1], call.method)
        if owner is None:
            return None
        receiver_cls = self._receiver_class(owner, call.receiver)
        if receiver_cls is None:
            return None
        resolved = self.graph.resolve_class(receiver_cls)
        if resolved is None:
            return None
        return self.graph.resolve_method(resolved[0], resolved[1], call.method)

    # -- reachability ---------------------------------------------------
    def reachable_from(self, entry: str) -> set[str]:
        """Every method whose effects fold into ``entry`` (inclusive)."""
        seen: set[str] = set()
        work = [entry]
        while work:
            current = work.pop()
            if current in seen or current not in self.graph.functions:
                continue
            seen.add(current)
            work.extend(self.summary(current).callees)
        return seen


# ----------------------------------------------------------------------
# Pipeline-level contract extraction
# ----------------------------------------------------------------------
@dataclass
class Stage:
    """One pipeline stage: its label and folded effect sets."""

    name: str
    method: str
    reads: list[str]
    writes: list[str]


@dataclass
class StageDependency:
    """Stage ``reader`` consumes state ``writer`` produced this cycle."""

    writer: str
    reader: str
    paths: list[str]


class PipelineContract:
    """The extracted backend contract of one pipeline class."""

    #: Preferred entry when the real simulator is in the scanned set.
    CANONICAL_PIPELINE = "repro.core.pipeline.SMTPipeline"

    def __init__(self, project: ProjectContext, pipeline: str | None = None):
        self.project = project
        self.analysis = EffectAnalysis(project)
        self.pipeline = pipeline or self._discover_pipeline()
        if self.pipeline is None:
            raise LookupError(
                "no pipeline class found: need a class with a run() method "
                "whose name ends in 'Pipeline'"
            )
        self.entry = f"{self.pipeline}.run"
        self.stages = self._extract_stages()
        self.dependencies = self._infer_dependencies()
        self.per_thread, self.shared = self._partition_state()
        self.structures = self._structure_verdicts()

    # -- discovery ------------------------------------------------------
    def _discover_pipeline(self) -> str | None:
        graph = self.project.call_graph
        if f"{self.CANONICAL_PIPELINE}.run" in graph.functions:
            return self.CANONICAL_PIPELINE
        candidates = [
            cls.qualname
            for _, cls in self.project.iter_classes()
            if cls.name.endswith("Pipeline") and "run" in cls.methods
        ]
        return sorted(candidates)[0] if candidates else None

    def _pipeline_class(self) -> tuple[ModuleInfo, ClassInfo]:
        resolved = self.project.call_graph.resolve_class(self.pipeline)
        assert resolved is not None  # _discover_pipeline found it
        return resolved

    # -- stages ---------------------------------------------------------
    def _extract_stages(self) -> list[Stage]:
        mod, cls = self._pipeline_class()
        run = cls.methods.get("run")
        if run is None:
            return []
        labeled: list[tuple[str, str]] = []
        bare: list[str] = []
        state = {"label": None}

        def walk(stmts: list[ast.stmt]) -> None:
            # Source-order traversal: ast.walk is breadth-first and
            # would shuffle the label -> call pairing across branches.
            for node in stmts:
                if isinstance(node, ast.Assign):
                    if (
                        len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Attribute)
                        and node.targets[0].attr == "stage"
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)
                        and node.value.value
                    ):
                        state["label"] = node.value.value
                elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                    call = node.value
                    if (
                        isinstance(call.func, ast.Attribute)
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id == "self"
                    ):
                        method = call.func.attr
                        if state["label"] is not None:
                            labeled.append((state["label"], method))
                            state["label"] = None
                        else:
                            bare.append(method)
                for body in ("body", "orelse", "finalbody"):
                    walk(getattr(node, body, []) or [])
                for handler in getattr(node, "handlers", []) or []:
                    walk(handler.body)

        walk(run.body)
        pairs: list[tuple[str, str]] = []
        seen: set[str] = set()
        source = labeled if labeled else [(m.strip("_"), m) for m in bare]
        for name, method in source:
            if name not in seen:
                seen.add(name)
                pairs.append((name, method))
        stages: list[Stage] = []
        for name, method in pairs:
            qual = f"{self.pipeline}.{method}"
            summary = self.analysis.summary(qual)
            stages.append(
                Stage(
                    name=name,
                    method=qual,
                    reads=sorted(summary.reads),
                    writes=sorted(summary.writes),
                )
            )
        return stages

    # -- stage-ordering dependencies ------------------------------------
    def _infer_dependencies(self) -> list[StageDependency]:
        deps: list[StageDependency] = []
        for i, writer in enumerate(self.stages):
            for reader in self.stages[i + 1 :]:
                paths = sorted(
                    {
                        max(w, r, key=len)
                        for w in writer.writes
                        for r in reader.reads
                        if paths_overlap(w, r)
                    }
                )
                if paths:
                    deps.append(
                        StageDependency(
                            writer=writer.name, reader=reader.name, paths=paths
                        )
                    )
        return deps

    # -- per-thread vs shared partitioning ------------------------------
    def _partition_state(self) -> tuple[list[str], list[str]]:
        """Attributes built in ``__init__`` as length-``num_threads``
        lists are per-thread replicated; every other attribute the
        stage closure touches is shared."""
        mod, cls = self._pipeline_class()
        init = cls.methods.get("__init__")
        per_thread: set[str] = set()
        assigned: set[str] = set()
        if init is not None:
            thread_counts = self._thread_count_names(init)
            for _stmt, attr, value in _iter_self_assigns(init):
                assigned.add(attr)
                if self._is_per_thread_value(value, thread_counts):
                    per_thread.add(attr)
        touched: set[str] = set()
        for stage in self.stages:
            for path in stage.reads + stage.writes:
                touched.add(path_root(path))
        shared = (touched & assigned) - per_thread
        return sorted(per_thread & touched), sorted(shared)

    @staticmethod
    def _thread_count_names(init: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Locals bound to the thread count (``n = ....num_threads``)."""
        names = {"num_threads"}
        for stmt in ast.walk(init):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                value = stmt.value
                if (
                    isinstance(value, ast.Attribute) and value.attr == "num_threads"
                ) or (isinstance(value, ast.Name) and value.id in names):
                    names.add(stmt.targets[0].id)
        return names

    @staticmethod
    def _is_per_thread_value(value: ast.expr, counts: set[str]) -> bool:
        def is_count(node: ast.expr) -> bool:
            if isinstance(node, ast.Name) and node.id in counts:
                return True
            return isinstance(node, ast.Attribute) and node.attr == "num_threads"

        if isinstance(value, ast.ListComp) and len(value.generators) == 1:
            gen_iter = value.generators[0].iter
            return (
                isinstance(gen_iter, ast.Call)
                and isinstance(gen_iter.func, ast.Name)
                and gen_iter.func.id == "range"
                and len(gen_iter.args) == 1
                and is_count(gen_iter.args[0])
            )
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult):
            return (isinstance(value.left, ast.List) and is_count(value.right)) or (
                isinstance(value.right, ast.List) and is_count(value.left)
            )
        return False

    # -- SoA verdicts ----------------------------------------------------
    def _structure_verdicts(self) -> dict[str, StructureVerdict]:
        """Per-structure SoA feasibility: growable containers, escaping
        internal state, external writes, and per-entry dynamic dispatch
        each block the fixed-slot array translation, with the blocking
        source locations listed."""
        verdicts: dict[str, StructureVerdict] = {}
        pipeline_attrs = self.analysis.attr_types(self.pipeline)
        reachable = self.analysis.reachable_from(self.entry)
        for attr in sorted(pipeline_attrs):
            cls_qualname = pipeline_attrs[attr]
            short = STRUCTURE_CLASSES.get(cls_qualname.rsplit(".", 1)[1])
            if short is None or short in verdicts:
                continue
            blockers = self._class_blockers(cls_qualname)
            blockers.extend(
                SoABlocker(
                    kind="external-write",
                    qualname=qual,
                    line=loc.line,
                    detail=f"write into {path} from outside {cls_qualname}",
                )
                for qual, path, loc in external_state_writes(
                    self.analysis, reachable, cls_qualname
                )
            )
            blockers.sort(key=lambda b: (b.kind, b.qualname, b.line, b.detail))
            verdicts[short] = StructureVerdict(
                name=short, class_qualname=cls_qualname, blockers=blockers
            )
        return verdicts

    def _class_blockers(self, cls_qualname: str) -> list[SoABlocker]:
        resolved = self.project.call_graph.resolve_class(cls_qualname)
        if resolved is None:
            return []
        _, cls = resolved
        blockers: list[SoABlocker] = []
        growable: set[str] = set()
        init = cls.methods.get("__init__")
        if init is not None:
            for stmt, attr, value in _iter_self_assigns(init):
                kind = self._growable_kind(value)
                if kind is not None:
                    growable.add(attr)
                    blockers.append(
                        SoABlocker(
                            kind="dynamic-container",
                            qualname=f"{cls.qualname}.__init__",
                            line=stmt.lineno,
                            detail=f"self.{attr} is a growable {kind}",
                        )
                    )
        container_attrs = growable | self._container_attrs(cls)
        for mname in sorted(cls.methods):
            method = cls.methods[mname]
            qual = f"{cls.qualname}.{mname}"
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"
                    and node.value.attr in container_attrs
                ):
                    blockers.append(
                        SoABlocker(
                            kind="escape",
                            qualname=qual,
                            line=node.lineno,
                            detail=f"returns internal container self.{node.value.attr}",
                        )
                    )
            for blk in classify_function(method, qual).blockers:
                if blk.kind == "dynamic-dispatch":
                    blockers.append(
                        SoABlocker(
                            kind=blk.kind, qualname=qual, line=blk.line, detail=blk.detail
                        )
                    )
        return blockers

    @staticmethod
    def _growable_kind(value: ast.expr) -> str | None:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in _GROWABLE_CONSTRUCTORS and not value.args:
                return value.func.id
        if isinstance(value, (ast.Dict, ast.Set)):
            return "dict" if isinstance(value, ast.Dict) else "set"
        if isinstance(value, ast.List) and not value.elts:
            return "list"
        return None

    @staticmethod
    def _container_attrs(cls: ClassInfo) -> set[str]:
        """Attributes ``__init__`` binds to any list/dict/set/deque
        expression — fixed-slot ``[None] * size`` lists included (a
        returned reference escapes either way)."""
        attrs: set[str] = set()
        init = cls.methods.get("__init__")
        if init is None:
            return attrs
        for _stmt, attr, value in _iter_self_assigns(init):
            is_container = isinstance(
                value, (ast.List, ast.ListComp, ast.Dict, ast.DictComp, ast.Set, ast.SetComp)
            )
            if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult):
                is_container = isinstance(value.left, ast.List) or isinstance(
                    value.right, ast.List
                )
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                is_container = is_container or value.func.id in _GROWABLE_CONSTRUCTORS
            if is_container:
                attrs.add(attr)
        return attrs


def external_state_writes(
    analysis: EffectAnalysis, reachable: set[str], structure_cls: str
) -> list[tuple[str, str, Location]]:
    """Direct syntactic writes into ``structure_cls``-typed state from
    methods of *other* classes in the reachable closure.

    Returns ``(method_qualname, path, location)`` per write — a write
    through a held reference (``self.iq.attr = ...`` from the pipeline)
    breaks the structure's encapsulation and blocks any backend that
    relocates its storage.
    """
    out: list[tuple[str, str, Location]] = []
    for qual in sorted(reachable):
        node = analysis.graph.functions.get(qual)
        if node is None or node.cls is None:
            continue
        owner = f"{node.module}.{node.cls}"
        owner_cls = analysis.graph.resolve_class(owner)
        if owner_cls is not None and owner_cls[1].qualname == structure_cls:
            continue  # the structure's own methods may write freely
        local = analysis.local(qual)
        if local is None:
            continue
        for path, loc in local.writes.items():
            if "." not in path:
                continue  # rebinding the attribute itself, not reaching in
            root, rest = path.split(".", 1)
            root_cls = analysis._receiver_class(owner, root)
            if root_cls == structure_cls:
                out.append((qual, path, loc))
    return sorted(out, key=lambda t: (t[0], t[1], t[2].line, t[2].col))
