"""Canonical backend-contract document: build, serialize, diff.

The contract is the normative statement of what the cycle loop touches
— the document every backend port (ROADMAP item 1) is reviewed
against.  Serialization is canonical (sorted keys, two-space indent,
trailing newline) so ``repro lint contract --write-contract`` is
byte-reproducible and CI can demand an empty ``git diff``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.effects.analyze import PipelineContract

CONTRACT_VERSION = 1

#: Conventional file name at the repository root.
CONTRACT_FILENAME = "backend-contract.json"


def build_contract(contract: PipelineContract) -> dict[str, Any]:
    """The JSON-ready contract document for one extracted pipeline."""
    return {
        "version": CONTRACT_VERSION,
        "pipeline": contract.pipeline,
        "entry": contract.entry,
        "stages": [
            {
                "name": s.name,
                "method": s.method,
                "reads": list(s.reads),
                "writes": list(s.writes),
            }
            for s in contract.stages
        ],
        "dependencies": [
            {"writer": d.writer, "reader": d.reader, "paths": list(d.paths)}
            for d in contract.dependencies
        ],
        "state": {
            "per_thread": list(contract.per_thread),
            "shared": list(contract.shared),
        },
        "structures": {
            name: verdict.to_dict() for name, verdict in contract.structures.items()
        },
    }


def render_contract(doc: dict[str, Any]) -> str:
    """Canonical serialization (byte-stable across runs and hosts)."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _flatten(value: Any, prefix: str) -> dict[str, Any]:
    """Leaf map ``dotted.path -> value`` for structural comparison."""
    out: dict[str, Any] = {}
    if isinstance(value, dict):
        if not value:
            out[prefix] = {}
        for key in sorted(value):
            out.update(_flatten(value[key], f"{prefix}.{key}" if prefix else str(key)))
    elif isinstance(value, list):
        if not value:
            out[prefix] = []
        for i, item in enumerate(value):
            out.update(_flatten(item, f"{prefix}[{i}]"))
    else:
        out[prefix] = value
    return out


def diff_contracts(committed: dict[str, Any], extracted: dict[str, Any]) -> list[str]:
    """Human-readable differences, empty when the contract holds.

    Each line names the diverging leaf: what the committed contract
    records vs. what the current tree extracts to.
    """
    old = _flatten(committed, "")
    new = _flatten(extracted, "")
    lines: list[str] = []
    for key in sorted(set(old) | set(new)):
        if key in old and key not in new:
            lines.append(f"{key}: removed (was {old[key]!r})")
        elif key not in old and key in new:
            lines.append(f"{key}: added ({new[key]!r})")
        elif old[key] != new[key]:
            lines.append(f"{key}: {old[key]!r} -> {new[key]!r}")
    return lines


def summarize_drift(diffs: list[str], limit: int = 5) -> str:
    """Compact one-line drift summary for diagnostics."""
    shown = "; ".join(diffs[:limit])
    extra = len(diffs) - limit
    if extra > 0:
        shown += f"; … {extra} more"
    return shown
