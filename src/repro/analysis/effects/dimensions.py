"""Cycle / bit / bit-cycle dimension inference for the AVF math.

The paper's central quantity is AVF = ACE bit-cycles / (bits × cycles)
(PAPER.md §3).  Mixing those dimensions silently — adding a cycle count
to a bit-cycle accumulator, or normalizing by ``cycles`` where ``bits ×
cycles`` was meant — produces plausible-looking numbers that are wrong
by a capacity factor.  This module seeds dimensions from naming
conventions at known sources, propagates them through assignments and
arithmetic, and reports the two statically-decidable failure modes:

* a ``+``/``-`` whose operands carry *different known* dimensions;
* an assignment (or call keyword) whose target name declares one
  dimension while the expression evaluates to another — the shape a
  dropped ``/ (bits * cycles)`` normalization takes.

The lattice: ``cycles``, ``bits``, ``bit_cycles``, ``fraction`` (any
dimensionless ratio: AVF, rates, fractions), ``per_cycle`` (an inverse
rate — what ``bits / bit_cycles`` leaves behind, i.e. exactly the
residue of the dropped-normalization bug), ``any`` (literals —
compatible with everything) and ``unknown`` (no opinion, flags
nothing).  Multiplication combines (bits × cycles = bit-cycles),
division cancels (bit-cycles / cycles = bits, X / X = fraction),
addition and subtraction require equal dimensions (cycle − cycle is a
duration, still ``cycles``).  Everything unseeded stays ``unknown`` —
the checker only speaks when both sides are known, so it is quiet on
code that never names these quantities.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

CYCLES = "cycles"
BITS = "bits"
BIT_CYCLES = "bit_cycles"
FRACTION = "fraction"
PER_CYCLE = "per_cycle"  # 1/cycles: the residue of bits / bit-cycles
ANY = "any"  # numeric literals: compatible with every dimension
UNKNOWN = "unknown"

#: Dimensions that participate in mismatch checks.
_KNOWN = frozenset({CYCLES, BITS, BIT_CYCLES, FRACTION, PER_CYCLE})


def dimension_of_name(name: str) -> str:
    """Seed dimension of an identifier, from naming conventions."""
    lowered = name.lower().lstrip("_")
    if "bit_cycles" in lowered or "bitcycles" in lowered:
        return BIT_CYCLES
    if lowered == "bits" or lowered.endswith("_bits"):
        return BITS
    if lowered in ("cycle", "cycles") or lowered.endswith(("_cycle", "_cycles")):
        return CYCLES
    if "avf" in lowered or "fraction" in lowered:
        return FRACTION
    return UNKNOWN


def _mul(a: str, b: str) -> str:
    if ANY in (a, b):
        return b if a == ANY else a
    if UNKNOWN in (a, b):
        return UNKNOWN
    if {a, b} == {BITS, CYCLES}:
        return BIT_CYCLES
    if {a, b} == {PER_CYCLE, CYCLES}:
        return FRACTION
    if FRACTION in (a, b):
        return b if a == FRACTION else a  # scaling by a ratio keeps units
    return UNKNOWN


def _div(a: str, b: str) -> str:
    if b == ANY:
        return a
    if a == ANY or UNKNOWN in (a, b):
        return UNKNOWN
    if a == b:
        return FRACTION
    if a == BIT_CYCLES and b == CYCLES:
        return BITS
    if a == BIT_CYCLES and b == BITS:
        return CYCLES
    if a == BITS and b == BIT_CYCLES:
        # bits / (bits × cycles) = 1/cycles: the dropped-normalization
        # shape — a *known* dim so assigning it where a fraction is
        # declared gets flagged.
        return PER_CYCLE
    if a == FRACTION and b == CYCLES:
        return PER_CYCLE
    if b == FRACTION:
        return a
    return UNKNOWN


@dataclass(frozen=True)
class DimensionFinding:
    """One statically-decided dimension violation."""

    line: int
    col: int
    end_line: int
    end_col: int
    message: str


class _FunctionDimensions:
    """Straight-line dimension propagation over one function body."""

    def __init__(self) -> None:
        self.env: dict[str, str] = {}
        self.findings: list[DimensionFinding] = []

    # -- inference ------------------------------------------------------
    def infer(self, node: ast.expr) -> str:
        if isinstance(node, ast.Constant):
            return ANY if isinstance(node.value, (int, float)) else UNKNOWN
        if isinstance(node, ast.Name):
            local = self.env.get(node.id)
            return local if local is not None else dimension_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return dimension_of_name(node.attr)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.IfExp):
            a, b = self.infer(node.body), self.infer(node.orelse)
            return a if a == b else UNKNOWN
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.Subscript):
            # Element of a dimension-named container carries its dim.
            return self.infer(node.value)
        return UNKNOWN

    def _infer_call(self, node: ast.Call) -> str:
        func = node.func
        # sum()/max()/min()/abs() of one dimensioned argument keep it.
        if isinstance(func, ast.Name) and func.id in ("sum", "max", "min", "abs", "float", "int"):
            if node.args:
                dims = {self.infer(arg) for arg in node.args}
                dims.discard(ANY)
                if len(dims) == 1:
                    return dims.pop()
            return UNKNOWN
        # A method named like a quantity (``self.avf.capacity_bits(...)``).
        if isinstance(func, ast.Attribute):
            return dimension_of_name(func.attr)
        return UNKNOWN

    def _infer_binop(self, node: ast.BinOp) -> str:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, ast.Mult):
            return _mul(left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return _div(left, right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left in _KNOWN and right in _KNOWN and left != right:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                self.findings.append(
                    _finding(
                        node,
                        f"mixed dimensions in '{op}': left is {left}, "
                        f"right is {right}",
                    )
                )
                return UNKNOWN
            if left == ANY:
                return right
            if right == ANY:
                return left
            return left if left == right else UNKNOWN
        if isinstance(node.op, ast.Mod):
            return left
        return UNKNOWN

    # -- checks ---------------------------------------------------------
    def check_assign(self, target_name: str, target: ast.expr, value: ast.expr) -> None:
        declared = dimension_of_name(target_name)
        inferred = self.infer(value)
        if (
            declared in _KNOWN
            and inferred in _KNOWN
            and declared != inferred
        ):
            self.findings.append(
                _finding(
                    value,
                    f"assigning a {inferred} expression to "
                    f"{target_name!r} which is named as {declared}",
                )
            )
        if isinstance(target, ast.Name):
            self.env[target.id] = inferred if inferred != ANY else UNKNOWN

    def check_keyword(self, kw: ast.keyword) -> None:
        if kw.arg is None:
            return
        declared = dimension_of_name(kw.arg)
        inferred = self.infer(kw.value)
        if declared in _KNOWN and inferred in _KNOWN and declared != inferred:
            self.findings.append(
                _finding(
                    kw.value,
                    f"passing a {inferred} expression as keyword "
                    f"{kw.arg!r} which is named as {declared}",
                )
            )

    # -- traversal ------------------------------------------------------
    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes have their own environments
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value)
            for target in stmt.targets:
                name = _target_name(target)
                if name is not None:
                    self.check_assign(name, target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._visit_expr(stmt.value)
            name = _target_name(stmt.target)
            if name is not None:
                self.check_assign(name, stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            name = _target_name(stmt.target)
            if name is None:
                return
            declared = dimension_of_name(name)
            if isinstance(stmt.op, (ast.Add, ast.Sub)) and declared in _KNOWN:
                inferred = self.infer(stmt.value)
                if declared == BIT_CYCLES and inferred == BITS:
                    # Per-cycle integration: ``acc_bit_cycles += resident
                    # bits`` once per simulated cycle is the canonical
                    # ACE accumulation (bits × 1 cycle) — not a mixup.
                    return
                if inferred in _KNOWN and inferred != declared:
                    op = "+=" if isinstance(stmt.op, ast.Add) else "-="
                    self.findings.append(
                        _finding(
                            stmt.value,
                            f"accumulating a {inferred} expression into "
                            f"{name!r} which is named as {declared} ({op})",
                        )
                    )
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._visit_expr(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._visit_expr(stmt.value)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._visit_stmt(child)
                elif isinstance(child, ast.expr):
                    self._visit_expr(child)
            for body_field in ("body", "orelse", "finalbody"):
                for sub in getattr(stmt, body_field, []) or []:
                    if isinstance(sub, ast.stmt):
                        self._visit_stmt(sub)

    def _visit_expr(self, expr: ast.expr) -> None:
        """Surface mixed-dimension adds and keyword mismatches anywhere
        inside the expression (inference runs on demand; this walk makes
        sure every BinOp/keyword gets looked at exactly once)."""
        for node in ast.walk(expr):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                self._infer_binop(node)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    self.check_keyword(kw)


def _target_name(target: ast.expr) -> str | None:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _finding(node: ast.AST, message: str) -> DimensionFinding:
    return DimensionFinding(
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        end_line=getattr(node, "end_lineno", None) or 0,
        end_col=getattr(node, "end_col_offset", None) or 0,
        message=message,
    )


def check_function(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[DimensionFinding]:
    """Dimension violations in one function body."""
    dims = _FunctionDimensions()
    dims.run(func.body)
    # A BinOp reachable from several checks (assign + expression walk)
    # may be inferred twice; findings are value-frozen, so dedupe.
    seen: set[DimensionFinding] = set()
    out: list[DimensionFinding] = []
    for finding in dims.findings:
        if finding not in seen:
            seen.add(finding)
            out.append(finding)
    return sorted(out, key=lambda f: (f.line, f.col, f.message))
