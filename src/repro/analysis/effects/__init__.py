"""Stage-effect and state-contract analysis over the flow layer.

For every method reachable from the pipeline's ``run`` loop this
package computes the architectural state it reads and writes —
``self.*`` attribute paths, container element operations, and writes
through held references into the IQ/ROB/LSQ/rename/FU objects — folds
the effects per pipeline stage, and serializes the result as the
machine-checked ``backend-contract.json`` every backend port is
reviewed against (ROADMAP item 1).  The same machinery seeds the
cycle / bit / bit-cycle dimension checker for the paper's AVF math
(AVF = ACE bit-cycles / (bits × cycles)).

Modules:

* :mod:`~repro.analysis.effects.model` — per-method local effect
  extraction (alias tracking, container mutators, access locations);
* :mod:`~repro.analysis.effects.analyze` — interprocedural fold from
  the ``run`` entry, stage discovery, per-thread partitioning, and
  SoA-feasibility verdicts per structure;
* :mod:`~repro.analysis.effects.contract` — canonical contract
  document build / serialize / diff;
* :mod:`~repro.analysis.effects.dimensions` — the dimension lattice
  and per-function propagation behind ``dimension-mismatch``;
* :mod:`~repro.analysis.effects.cli` — ``repro lint contract``.
"""

from repro.analysis.effects.analyze import EffectAnalysis, PipelineContract
from repro.analysis.effects.contract import (
    build_contract,
    diff_contracts,
    render_contract,
)
from repro.analysis.effects.model import LocalEffects, extract_local_effects

__all__ = [
    "EffectAnalysis",
    "PipelineContract",
    "LocalEffects",
    "extract_local_effects",
    "build_contract",
    "diff_contracts",
    "render_contract",
]
