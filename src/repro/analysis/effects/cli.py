"""``repro lint contract`` — extract, write, and diff the backend contract.

Default mode prints the extracted contract (text summary or the
canonical JSON document).  ``--write-contract`` persists the canonical
bytes to ``backend-contract.json`` (or a given path) — rerunning on an
unchanged tree is byte-identical, so CI pairs it with
``git diff --exit-code``.  ``--diff`` compares the extraction against a
committed contract and exits 1 on drift, listing every diverging leaf.

Exit codes match the lint front end: 0 clean, 1 drift, 2 usage /
extraction errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.effects.analyze import PipelineContract
from repro.analysis.effects.contract import (
    CONTRACT_FILENAME,
    build_contract,
    diff_contracts,
    render_contract,
)
from repro.analysis.engine import default_roots
from repro.analysis.perfmodel.cli import build_project

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint contract",
        description="Extract the backend state contract (per-stage "
        "read/write sets, stage dependencies, state partitioning, SoA "
        "verdicts) from the pipeline's run loop.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the src/tests/"
        "benchmarks/examples roots that exist here)",
    )
    parser.add_argument(
        "--pipeline",
        default=None,
        metavar="QUALNAME",
        help="pipeline class to extract (default: repro.core.pipeline."
        "SMTPipeline when present, else the first *Pipeline class with "
        "a run() method)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text; json prints the canonical "
        "contract document)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--write-contract",
        nargs="?",
        const=CONTRACT_FILENAME,
        default=None,
        metavar="FILE",
        help=f"write the canonical contract JSON to FILE "
        f"(default: {CONTRACT_FILENAME})",
    )
    parser.add_argument(
        "--diff",
        nargs="?",
        const=CONTRACT_FILENAME,
        default=None,
        metavar="FILE",
        help=f"diff the extraction against a committed contract "
        f"(default: {CONTRACT_FILENAME}); exit 1 on drift",
    )
    return parser


def _text_summary(doc: dict) -> str:
    lines: list[str] = []
    lines.append(f"backend contract v{doc['version']}: {doc['pipeline']}")
    lines.append(f"entry: {doc['entry']}")
    lines.append("")
    lines.append("stages (in run-loop order):")
    for stage in doc["stages"]:
        lines.append(
            f"  {stage['name']:<10s} {stage['method'].rsplit('.', 1)[1]:<14s}"
            f" reads={len(stage['reads']):3d} writes={len(stage['writes']):3d}"
        )
    lines.append("")
    lines.append("stage-ordering dependencies (writer -> reader):")
    for dep in doc["dependencies"]:
        lines.append(
            f"  {dep['writer']} -> {dep['reader']}  ({len(dep['paths'])} paths)"
        )
    lines.append("")
    state = doc["state"]
    lines.append(f"per-thread state ({len(state['per_thread'])}):")
    lines.append("  " + (", ".join(state["per_thread"]) or "(none)"))
    lines.append(f"shared state ({len(state['shared'])}):")
    lines.append("  " + (", ".join(state["shared"]) or "(none)"))
    lines.append("")
    lines.append("SoA-feasibility verdicts:")
    for name in sorted(doc["structures"]):
        verdict = doc["structures"][name]
        flag = "vectorizable" if verdict["vectorizable"] else "blocked"
        lines.append(f"  {name:<8s} {verdict['class']}: {flag}")
        for blocker in verdict["blockers"]:
            lines.append(
                f"           [{blocker['kind']}] {blocker['qualname']}"
                f":{blocker['line']} — {blocker['detail']}"
            )
    return "\n".join(lines) + "\n"


def contract_main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    paths = list(args.paths) or default_roots()
    if not paths:
        print("repro.lint contract: no Python roots found here", file=sys.stderr)
        return EXIT_USAGE

    project = build_project(paths)
    try:
        contract = PipelineContract(project, pipeline=args.pipeline)
    except LookupError as exc:
        print(f"repro.lint contract: {exc}", file=sys.stderr)
        return EXIT_USAGE
    doc = build_contract(contract)

    if args.write_contract is not None:
        with open(args.write_contract, "w", encoding="utf-8") as fh:
            fh.write(render_contract(doc))
        print(f"wrote {args.write_contract}")

    if args.diff is not None:
        try:
            with open(args.diff, encoding="utf-8") as fh:
                committed = json.load(fh)
        except FileNotFoundError:
            print(
                f"repro.lint contract: no committed contract at {args.diff} "
                f"(generate one with --write-contract)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        except json.JSONDecodeError as exc:
            print(
                f"repro.lint contract: {args.diff} is not valid JSON: {exc}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        diffs = diff_contracts(committed, doc)
        if diffs:
            print(f"contract drift against {args.diff} ({len(diffs)} leaves):")
            for line in diffs:
                print(f"  {line}")
            return EXIT_FINDINGS
        print(f"contract matches {args.diff}")
        return EXIT_CLEAN

    if args.write_contract is not None and args.format == "text" and args.output is None:
        return EXIT_CLEAN  # --write-contract alone: the file is the output

    report = render_contract(doc) if args.format == "json" else _text_summary(doc)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
    else:
        sys.stdout.write(report)
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(contract_main())
