"""Intra-procedural control-flow graphs with dataflow solvers.

:func:`build_flow` turns one function body into a statement-level CFG:
every simple statement and every compound-statement *header* (the
``if``/``while``/``for``/``try``/``with`` line) is a node; edges follow
Python's control flow including loop back-edges, ``break``/``continue``,
``return``/``raise`` termination, and a conservative approximation of
exception edges into ``except`` handlers.

Two classic forward/backward solvers run over the graph on demand:

* **reaching definitions** — for a statement and a local name, the set
  of definition statements whose binding may still be live there;
* **liveness** — the set of local names whose current value may still
  be read on some path leaving a statement.

Both are may-analyses solved to a fixed point with a worklist; bodies
of nested ``def``/``class`` statements are opaque (they neither define
nor use names in the enclosing frame for our purposes — closures are
out of scope for lint-grade analysis).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

_LOOPS = (ast.While, ast.For, ast.AsyncFor)
_TERMINATORS = (ast.Return, ast.Raise)


def bound_names(target: ast.expr) -> set[str]:
    """Local names bound by an assignment target (unpacking included)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for elt in target.elts:
            names |= bound_names(elt)
        return names
    if isinstance(target, ast.Starred):
        return bound_names(target.value)
    return set()  # attribute/subscript targets bind no local name


def stmt_defs(stmt: ast.stmt) -> set[str]:
    """Local names (re)bound by the statement's header."""
    if isinstance(stmt, ast.Assign):
        names: set[str] = set()
        for tgt in stmt.targets:
            names |= bound_names(tgt)
        return names
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return bound_names(stmt.target)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return bound_names(stmt.target)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        names = set()
        for item in stmt.items:
            if item.optional_vars is not None:
                names |= bound_names(item.optional_vars)
        return names
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        return {a.asname or a.name.split(".")[0] for a in stmt.names}
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return {stmt.name}
    return set()


def _header_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The expressions evaluated by the statement's own line."""
    if isinstance(stmt, ast.Assign):
        yield stmt.value
        yield from stmt.targets  # subscript/attribute bases are reads
    elif isinstance(stmt, ast.AugAssign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            yield stmt.value
        yield stmt.target
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
    elif isinstance(stmt, (ast.While, ast.If)):
        yield stmt.test
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            yield stmt.exc
    elif isinstance(stmt, (ast.Expr, ast.Assert, ast.Delete)):
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield child
    # Nested def/class headers: decorator/default expressions are reads,
    # but they don't matter for lint-grade liveness; skip.


def stmt_uses(stmt: ast.stmt) -> set[str]:
    """Local names read by the statement's header."""
    uses: set[str] = set()
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                uses.add(node.id)
    # An unpacking target is a pure store; Name stores were never added.
    return uses


@dataclass
class FunctionFlow:
    """CFG plus lazily-solved dataflow facts for one function."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: list[ast.stmt] = field(default_factory=list)
    succ: dict[int, list[ast.stmt]] = field(default_factory=dict)
    pred: dict[int, list[ast.stmt]] = field(default_factory=dict)
    entry: list[ast.stmt] = field(default_factory=list)
    _reach_in: dict[int, dict[str, set[int]]] | None = None
    _live_in: dict[int, set[str]] | None = None
    _by_id: dict[int, ast.stmt] = field(default_factory=dict)

    # -- reaching definitions ------------------------------------------
    def reaching_in(self, stmt: ast.stmt) -> dict[str, list[ast.stmt]]:
        """name -> definition statements that may reach ``stmt``.

        Parameter bindings are represented by the function node itself.
        """
        if self._reach_in is None:
            self._solve_reaching()
        assert self._reach_in is not None
        table = self._reach_in.get(id(stmt), {})
        return {
            name: [self._by_id[d] for d in sorted(defs, key=lambda i: self._order[i])]
            for name, defs in table.items()
        }

    def _solve_reaching(self) -> None:
        self._order = {id(n): i for i, n in enumerate(self.nodes)}
        self._order[id(self.func)] = -1
        self._by_id[id(self.func)] = self.func
        params = self._param_names()
        entry_out: dict[str, set[int]] = {p: {id(self.func)} for p in params}

        reach_in: dict[int, dict[str, set[int]]] = {id(n): {} for n in self.nodes}
        out: dict[int, dict[str, set[int]]] = {id(n): {} for n in self.nodes}
        entry_ids = {id(n) for n in self.entry}
        work = list(self.nodes)
        while work:
            node = work.pop(0)
            nid = id(node)
            new_in: dict[str, set[int]] = {}
            if nid in entry_ids:
                for name, defs in entry_out.items():
                    new_in.setdefault(name, set()).update(defs)
            for p in self.pred.get(nid, ()):  # merge predecessor OUTs
                for name, defs in out[id(p)].items():
                    new_in.setdefault(name, set()).update(defs)
            killed = stmt_defs(node)
            new_out = {n: set(d) for n, d in new_in.items() if n not in killed}
            for name in killed:
                new_out[name] = {nid}
            if new_in != reach_in[nid] or new_out != out[nid]:
                reach_in[nid] = new_in
                out[nid] = new_out
                for s in self.succ.get(nid, ()):
                    if s not in work:
                        work.append(s)
        self._reach_in = reach_in

    def _param_names(self) -> set[str]:
        args = self.func.args
        names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        return names

    # -- liveness ------------------------------------------------------
    def live_out(self, stmt: ast.stmt) -> set[str]:
        """Names whose value may still be read after ``stmt``."""
        if self._live_in is None:
            self._solve_liveness()
        assert self._live_in is not None
        live: set[str] = set()
        for s in self.succ.get(id(stmt), ()):
            live |= self._live_in.get(id(s), set())
        return live

    def live_in(self, stmt: ast.stmt) -> set[str]:
        if self._live_in is None:
            self._solve_liveness()
        assert self._live_in is not None
        return set(self._live_in.get(id(stmt), set()))

    def _solve_liveness(self) -> None:
        live_in: dict[int, set[str]] = {id(n): set() for n in self.nodes}
        work = list(self.nodes)
        while work:
            node = work.pop()
            nid = id(node)
            out: set[str] = set()
            for s in self.succ.get(nid, ()):
                out |= live_in[id(s)]
            new_in = stmt_uses(node) | (out - stmt_defs(node))
            if new_in != live_in[nid]:
                live_in[nid] = new_in
                for p in self.pred.get(nid, ()):
                    if p not in work:
                        work.append(p)
        self._live_in = live_in

    # -- convenience ---------------------------------------------------
    def assigned_value(self, def_stmt: ast.stmt, name: str) -> ast.expr | None:
        """The expression a reaching definition binds to ``name``.

        Only plain ``name = <expr>`` / ``name: T = <expr>`` forms have a
        recoverable value; loop targets, ``with`` aliases and parameter
        bindings return None.
        """
        if isinstance(def_stmt, ast.Assign):
            for tgt in def_stmt.targets:
                if isinstance(tgt, ast.Name) and tgt.id == name:
                    return def_stmt.value
        elif isinstance(def_stmt, ast.AnnAssign):
            if isinstance(def_stmt.target, ast.Name) and def_stmt.target.id == name:
                return def_stmt.value
        return None


class _Builder:
    def __init__(self) -> None:
        self.nodes: list[ast.stmt] = []
        self.succ: dict[int, list[ast.stmt]] = {}
        self.pred: dict[int, list[ast.stmt]] = {}
        self.by_id: dict[int, ast.stmt] = {}
        self.loops: list[tuple[ast.stmt, list[ast.stmt]]] = []

    def edge(self, src: ast.stmt, dst: ast.stmt) -> None:
        self.succ.setdefault(id(src), []).append(dst)
        self.pred.setdefault(id(dst), []).append(src)

    def seq(self, stmts: Iterable[ast.stmt], frontier: list[ast.stmt]) -> list[ast.stmt]:
        for stmt in stmts:
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, s: ast.stmt, frontier: list[ast.stmt]) -> list[ast.stmt]:
        self.nodes.append(s)
        self.by_id[id(s)] = s
        for f in frontier:
            self.edge(f, s)
        if isinstance(s, ast.If):
            body_exit = self.seq(s.body, [s])
            orelse_exit = self.seq(s.orelse, [s]) if s.orelse else [s]
            return body_exit + orelse_exit
        if isinstance(s, _LOOPS):
            breaks: list[ast.stmt] = []
            self.loops.append((s, breaks))
            body_exit = self.seq(s.body, [s])
            self.loops.pop()
            for e in body_exit:  # back edge to the loop header
                self.edge(e, s)
            orelse_exit = self.seq(s.orelse, [s]) if s.orelse else [s]
            return orelse_exit + breaks
        if isinstance(s, (ast.With, ast.AsyncWith)):
            return self.seq(s.body, [s])
        if isinstance(s, ast.Try) or (hasattr(ast, "TryStar") and isinstance(s, ast.TryStar)):
            body_exit = self.seq(s.body, [s])
            # Any point in the try body may raise; approximating the
            # raise sources as {header} ∪ body-exits keeps handler
            # entry reachable without quadratic edges.
            handler_entry = [s] + body_exit
            handler_exits: list[ast.stmt] = []
            for handler in s.handlers:
                handler_exits += self.seq(handler.body, list(handler_entry))
            orelse_exit = self.seq(s.orelse, body_exit) if s.orelse else body_exit
            merged = orelse_exit + handler_exits
            if s.finalbody:
                return self.seq(s.finalbody, merged)
            return merged
        if isinstance(s, _TERMINATORS):
            return []
        if isinstance(s, ast.Break):
            if self.loops:
                self.loops[-1][1].append(s)
            return []
        if isinstance(s, ast.Continue):
            if self.loops:
                self.edge(s, self.loops[-1][0])
            return []
        return [s]


def build_flow(func: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionFlow:
    """Build the CFG for one function; dataflow solves lazily."""
    builder = _Builder()
    builder.seq(func.body, [])
    flow = FunctionFlow(
        func=func,
        nodes=builder.nodes,
        succ=builder.succ,
        pred=builder.pred,
        entry=builder.nodes[:1],
        _by_id=builder.by_id,
    )
    return flow
