"""Per-module symbol tables for the project-wide analysis layer.

:func:`build_module_info` digests one parsed module into the facts the
call-graph builder and the project passes need: its dotted module name
(derived from the package layout on disk), its top-level classes with
their methods and base-class names, its top-level functions, and a map
from local names to the dotted targets they import.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field


@dataclass
class ClassInfo:
    """One class definition and the facts passes ask about it."""

    name: str
    node: ast.ClassDef
    module: str
    #: method name -> def node (later defs win, matching runtime).
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(default_factory=dict)
    #: base-class expressions as dotted strings ("FetchPolicy",
    #: "resource_alloc.DispatchPolicy"); unresolvable bases are omitted.
    bases: list[str] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """Symbol table of one scanned module."""

    path: str
    name: str  # dotted module name ("repro.reliability.dvm")
    tree: ast.Module
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(default_factory=dict)
    #: local name -> dotted import target.  ``import repro.config as c``
    #: maps ``c -> repro.config``; ``from repro.config import Machine``
    #: maps ``Machine -> repro.config.Machine``.
    imports: dict[str, str] = field(default_factory=dict)

    @property
    def basename(self) -> str:
        return os.path.basename(self.path)


def module_name_for(path: str) -> str:
    """Dotted module name from the package layout around ``path``.

    Walks parent directories while they contain ``__init__.py`` —
    ``src/repro/reliability/dvm.py`` becomes ``repro.reliability.dvm``
    regardless of where the source root sits.  A file outside any
    package keeps its bare stem.
    """
    stem = os.path.splitext(os.path.basename(path))[0]
    parts: list[str] = [] if stem == "__init__" else [stem]
    directory = os.path.dirname(os.path.abspath(path))
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.insert(0, os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else stem


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute/name chain as a dotted string, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def build_module_info(path: str, tree: ast.Module, name: str | None = None) -> ModuleInfo:
    """Digest one parsed module into a :class:`ModuleInfo`."""
    info = ModuleInfo(path=path, name=name or module_name_for(path), tree=tree)
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            cls = ClassInfo(name=node.name, node=node, module=info.name)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[stmt.name] = stmt
            for base in node.bases:
                dotted = _dotted(base)
                if dotted is not None:
                    cls.bases.append(dotted)
            info.classes[node.name] = cls
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = node
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                info.imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return info
