""":class:`ProjectContext` — the shared whole-project view.

The engine builds one per :meth:`LintEngine.run`, from the same
:class:`~repro.analysis.engine.FileContext` objects the per-file
checkers saw (one parse per file, shared by both layers), and hands it
to every registered :class:`~repro.analysis.registry.ProjectChecker`.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.cfg import FunctionFlow, build_flow
from repro.analysis.flow.symbols import ClassInfo, ModuleInfo, build_module_info

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import FileContext


class ProjectContext:
    """Symbol tables, call graph and CFG access for a set of modules."""

    def __init__(self, files: "list[FileContext]"):
        #: path -> FileContext (parse + suppression table reused).
        self.files: dict[str, FileContext] = {f.path: f for f in files}
        #: path -> ModuleInfo, and dotted module name -> ModuleInfo.
        self.modules: dict[str, ModuleInfo] = {}
        by_name: dict[str, ModuleInfo] = {}
        for ctx in files:
            info = build_module_info(ctx.path, ctx.tree)
            self.modules[ctx.path] = info
            by_name[info.name] = info
        self.modules_by_name = by_name
        self.call_graph = CallGraph(by_name)
        self._flows: dict[int, FunctionFlow] = {}

    # -- iteration helpers ---------------------------------------------
    def iter_modules(self) -> Iterator[ModuleInfo]:
        """Modules in deterministic (path) order."""
        for path in sorted(self.modules):
            yield self.modules[path]

    def iter_classes(self) -> Iterator[tuple[ModuleInfo, ClassInfo]]:
        for mod in self.iter_modules():
            for name in sorted(mod.classes):
                yield mod, mod.classes[name]

    def iter_functions(
        self,
    ) -> Iterator[tuple[ModuleInfo, ClassInfo | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
        """Every function/method with its module (and class, if any)."""
        for mod in self.iter_modules():
            for name in sorted(mod.functions):
                yield mod, None, mod.functions[name]
            for cls_name in sorted(mod.classes):
                cls = mod.classes[cls_name]
                for mname in sorted(cls.methods):
                    yield mod, cls, cls.methods[mname]

    # -- dataflow ------------------------------------------------------
    def flow(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionFlow:
        """The (memoized) CFG + dataflow facts for one function."""
        key = id(func)
        if key not in self._flows:
            self._flows[key] = build_flow(func)
        return self._flows[key]

    def file_for(self, module: ModuleInfo) -> "FileContext":
        return self.files[module.path]
