"""Import-resolved, inheritance-aware call graph over scanned modules.

Nodes are fully-qualified function names (``repro.reliability.dvm.
DVMController.on_sample``); edges are the statically-resolvable calls:

* bare names resolved through module-level functions and ``from x
  import y`` bindings;
* ``self.method(...)`` resolved through the enclosing class and then
  its method-resolution order (base classes are looked up through the
  importing module's bindings, across module boundaries);
* ``super().method(...)`` resolved to the nearest base defining it;
* ``Class.method(...)`` and ``module.func(...)`` attribute chains
  resolved through the symbol tables.

Names bound by package ``__init__`` re-exports (``from repro.core
import IssueQueue``) are followed through the import chain to the
defining module, so subclasses of re-exported classes keep their
``super()``/MRO edges.

Receiver types of arbitrary expressions are not inferred — a call that
cannot be resolved simply contributes no edge, keeping the graph a
conservative *under*-approximation suitable for "no path to X" rules
only when combined with per-node syntactic facts (each node also
records whether its own body contains an ``.emit(...)`` call, so
reachability questions degrade gracefully).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.symbols import ClassInfo, ModuleInfo


@dataclass
class FunctionNode:
    """One function/method in the call graph."""

    qualname: str  # module.Class.method or module.func
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: str
    cls: str | None = None  # enclosing class name, if a method
    calls: list[str] = field(default_factory=list)  # resolved callee qualnames
    contains_emit: bool = False
    writes_self_attrs: set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        return not self.node.name.startswith("_")


class CallGraph:
    """Project call graph with reachability queries."""

    def __init__(self, modules: dict[str, ModuleInfo]):
        #: dotted module name -> ModuleInfo
        self.modules = modules
        self.functions: dict[str, FunctionNode] = {}
        self._emit_reach: dict[str, bool] | None = None
        # Two phases: register every node first, then resolve edges —
        # resolution consults self.functions, so a single interleaved
        # pass would drop edges into modules not yet scanned.
        owners: list[tuple[ModuleInfo, ClassInfo | None, FunctionNode]] = []
        for mod in modules.values():
            for func in mod.functions.values():
                owners.append((mod, None, self._add_function(mod, None, func)))
            for cls in mod.classes.values():
                for method in cls.methods.values():
                    owners.append((mod, cls, self._add_function(mod, cls, method)))
        for mod, cls, node in owners:
            self._resolve_edges(mod, cls, node)

    # -- construction --------------------------------------------------
    def _add_function(
        self,
        mod: ModuleInfo,
        cls: ClassInfo | None,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> FunctionNode:
        qual = f"{mod.name}.{cls.name}.{func.name}" if cls else f"{mod.name}.{func.name}"
        node = FunctionNode(qualname=qual, node=func, module=mod.name, cls=cls.name if cls else None)
        for stmt in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for tgt in targets:
                tgt = tgt if not isinstance(tgt, ast.Starred) else tgt.value
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    node.writes_self_attrs.add(tgt.attr)
        self.functions[qual] = node
        return node

    def _resolve_edges(
        self, mod: ModuleInfo, cls: ClassInfo | None, node: FunctionNode
    ) -> None:
        for call in ast.walk(node.node):
            if not isinstance(call, ast.Call):
                continue
            fn = call.func
            if isinstance(fn, ast.Attribute) and fn.attr == "emit":
                node.contains_emit = True
            callee = self._resolve_call(mod, cls, fn)
            if callee is not None:
                node.calls.append(callee)

    def _resolve_call(
        self, mod: ModuleInfo, cls: ClassInfo | None, fn: ast.expr
    ) -> str | None:
        # name(...) — local function or from-imported function.
        if isinstance(fn, ast.Name):
            if fn.id in mod.functions:
                return f"{mod.name}.{fn.id}"
            target = mod.imports.get(fn.id)
            if target is not None:
                node = self._lookup_qual(target)
                if node is not None:
                    return node.qualname
            return None
        if not isinstance(fn, ast.Attribute):
            return None
        base = fn.value
        # self.method(...) — resolve through the MRO.
        if isinstance(base, ast.Name) and base.id == "self" and cls is not None:
            owner = self.resolve_method(mod, cls, fn.attr)
            return owner
        # super().method(...)
        if (
            isinstance(base, ast.Call)
            and isinstance(base.func, ast.Name)
            and base.func.id == "super"
            and cls is not None
        ):
            for parent in self._bases_of(mod, cls):
                pmod, pcls = parent
                owner = self.resolve_method(pmod, pcls, fn.attr)
                if owner is not None:
                    return owner
            return None
        # Class.method(...) / module.func(...) dotted chains.
        dotted = _dotted_chain(fn)
        if dotted is None:
            return None
        head, rest = dotted[0], dotted[1:]
        target = mod.imports.get(head)
        if target is None and head in mod.classes:
            target = f"{mod.name}.{head}"
        if target is None:
            return None
        qual = ".".join([target] + rest)
        node = self._lookup_qual(qual)
        return node.qualname if node is not None else None

    def _lookup_qual(self, qual: str) -> FunctionNode | None:
        node = self.functions.get(qual)
        if node is not None:
            return node
        # Not a directly-defined function: the prefix may be an alias
        # bound by a package ``__init__`` re-export (``from repro.core
        # import IssueQueue``), or the method may be inherited.  Follow
        # the import chain to the defining module, then the MRO.
        if "." not in qual:
            return None
        prefix, leaf = qual.rsplit(".", 1)
        resolved = self.resolve_class(prefix)
        if resolved is not None:
            owner = self.resolve_method(resolved[0], resolved[1], leaf)
            return self.functions.get(owner) if owner is not None else None
        chained = self._follow_exports(qual)
        if chained is not None and chained != qual:
            return self._lookup_qual(chained)
        return None

    def _follow_exports(self, dotted: str) -> str | None:
        """One step through a ``from x import y`` re-export chain."""
        if "." not in dotted:
            return None
        mod_name, leaf = dotted.rsplit(".", 1)
        owner = self.modules.get(mod_name)
        if owner is None:
            return None
        return owner.imports.get(leaf)

    def resolve_class(self, dotted: str) -> tuple[ModuleInfo, ClassInfo] | None:
        """Resolve a dotted name to a project class, following re-export
        chains through package ``__init__`` modules (``repro.core.
        IssueQueue`` -> ``repro.core.issue_queue.IssueQueue``)."""
        seen: set[str] = set()
        while dotted and dotted not in seen:
            seen.add(dotted)
            if "." not in dotted:
                return None
            mod_name, leaf = dotted.rsplit(".", 1)
            owner = self.modules.get(mod_name)
            if owner is None:
                return None
            cls = owner.classes.get(leaf)
            if cls is not None:
                return owner, cls
            nxt = owner.imports.get(leaf)
            if nxt is None:
                return None
            dotted = nxt
        return None

    def _bases_of(self, mod: ModuleInfo, cls: ClassInfo) -> list[tuple[ModuleInfo, ClassInfo]]:
        """Direct base classes resolvable inside the project."""
        found: list[tuple[ModuleInfo, ClassInfo]] = []
        for base in cls.bases:
            parts = base.split(".")
            if base in mod.classes:  # same module, bare name
                found.append((mod, mod.classes[base]))
                continue
            target = mod.imports.get(parts[0])
            if target is None:
                continue
            # "from m import C" -> target == m.C; "import m" -> m with
            # parts[1:] == [C]; either way resolve_class follows any
            # package-__init__ re-exports down to the defining module.
            resolved = self.resolve_class(".".join([target] + parts[1:]))
            if resolved is not None:
                found.append(resolved)
        return found

    def mro(self, mod: ModuleInfo, cls: ClassInfo) -> list[tuple[ModuleInfo, ClassInfo]]:
        """Linearized ancestry (C3 is overkill: left-to-right DFS, deduped)."""
        seen: set[str] = set()
        order: list[tuple[ModuleInfo, ClassInfo]] = []

        def visit(m: ModuleInfo, c: ClassInfo) -> None:
            if c.qualname in seen:
                return
            seen.add(c.qualname)
            order.append((m, c))
            for pm, pc in self._bases_of(m, c):
                visit(pm, pc)

        visit(mod, cls)
        return order

    def resolve_method(self, mod: ModuleInfo, cls: ClassInfo, name: str) -> str | None:
        """Qualname of ``name`` looked up on ``cls`` through its MRO."""
        for m, c in self.mro(mod, cls):
            if name in c.methods:
                return f"{m.name}.{c.name}.{name}"
        return None

    # -- queries -------------------------------------------------------
    def callees(self, qual: str) -> list[str]:
        node = self.functions.get(qual)
        return list(node.calls) if node else []

    def reaches_emit(self, qual: str) -> bool:
        """May any call path from ``qual`` execute an ``.emit(...)``?"""
        if self._emit_reach is None:
            self._emit_reach = {}
        cached = self._emit_reach.get(qual)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = [qual]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            node = self.functions.get(current)
            if node is None:
                continue
            if node.contains_emit:
                self._emit_reach[qual] = True
                return True
            stack.extend(node.calls)
        self._emit_reach[qual] = False
        return False


def _dotted_chain(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return list(reversed(parts))
