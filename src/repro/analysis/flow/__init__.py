"""Project-wide dataflow analysis: symbol tables, CFGs, call graph.

The per-file engine of PR 1 sees one module at a time, which caps it at
syntax: it cannot know that a helper called three frames away emits a
telemetry event, that an attribute is reset in a base class, or that a
``set`` built in one statement leaks its iteration order into simulator
state five lines later.  This package adds the project layer:

* :mod:`repro.analysis.flow.symbols` — per-module symbol tables
  (classes, functions, import bindings) with dotted-module naming;
* :mod:`repro.analysis.flow.cfg` — intra-procedural control-flow
  graphs with reaching-definitions and liveness solvers;
* :mod:`repro.analysis.flow.callgraph` — an import-resolved,
  inheritance-aware call graph over every scanned module;
* :mod:`repro.analysis.flow.project` — :class:`ProjectContext`, the
  facade the engine builds once per run and hands to every
  :class:`~repro.analysis.registry.ProjectChecker`;
* :mod:`repro.analysis.flow.cache` — the file-hash-keyed incremental
  diagnostic cache under ``.repro-lint-cache/``.
"""

from repro.analysis.flow.cache import DiagnosticCache
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.cfg import FunctionFlow, build_flow
from repro.analysis.flow.project import ProjectContext
from repro.analysis.flow.symbols import ClassInfo, ModuleInfo, build_module_info

__all__ = [
    "CallGraph",
    "ClassInfo",
    "DiagnosticCache",
    "FunctionFlow",
    "ModuleInfo",
    "ProjectContext",
    "build_flow",
    "build_module_info",
]
