"""File-hash-keyed incremental diagnostic cache.

Whole-project analysis made the linter do strictly more work per run,
so the per-file layer earns it back: a file whose content hash and rule
fingerprint both match the previous run replays its recorded
diagnostics without being parsed or checked.  The cache is one JSON
document under ``.repro-lint-cache/`` (CI restores the directory keyed
on the source-tree hash); a version stamp and a fingerprint of the
active per-file rules invalidate it wholesale when the engine or the
rule set changes.

Two more sections ride the same document:

* a **project snapshot** — the full ``path -> digest`` map of the last
  project-phase run plus its (post-suppression) diagnostics.  A run
  whose file set and every digest match replays the project passes
  without building a :class:`ProjectContext`; *any* changed file
  invalidates the whole snapshot, which is exactly the transitive
  semantics project passes need (editing a callee must re-lint its
  callers).
* a **dependency map** — per file, the project-internal files its
  imports resolve to, recorded while the project context is live.
  ``repro.lint --changed`` inverts it to find the reverse-dependent
  closure of a git diff.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, Severity

#: Bump when the cache layout (or any checker semantics) changes.
CACHE_VERSION = 2

_CACHE_FILE = "file-diagnostics.json"


def source_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def rules_fingerprint(rules: list[str]) -> str:
    return hashlib.sha256(",".join(sorted(rules)).encode()).hexdigest()[:16]


def _decode_diags(records: list[dict]) -> list[Diagnostic]:
    return [
        Diagnostic(
            path=record["path"],
            line=int(record["line"]),
            col=int(record["col"]),
            rule=record["rule"],
            message=record["message"],
            severity=Severity[record["severity"].upper()],
            symbol=record.get("symbol", ""),
        )
        for record in records
    ]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    #: Project-phase snapshot outcomes (at most one per run).
    project_hits: int = 0
    project_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class DiagnosticCache:
    """Per-file diagnostic memo keyed on (content hash, rule set)."""

    directory: str
    _entries: dict[str, dict] = field(default_factory=dict)
    _project: dict | None = None
    _deps: dict[str, list[str]] = field(default_factory=dict)
    _fingerprint: str = ""
    _project_fingerprint: str = ""
    _dirty: bool = False
    stats: CacheStats = field(default_factory=CacheStats)

    def open(self, rules: list[str], project_rules: list[str] | None = None) -> None:
        """Load the cache file, discarding sections on any mismatch."""
        self._fingerprint = rules_fingerprint(rules)
        self._project_fingerprint = rules_fingerprint(project_rules or [])
        self._entries = {}
        self._project = None
        self._deps = {}
        path = os.path.join(self.directory, _CACHE_FILE)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return
        if payload.get("version") != CACHE_VERSION:
            return
        if payload.get("rules_fingerprint") == self._fingerprint:
            entries = payload.get("files")
            if isinstance(entries, dict):
                self._entries = entries
        project = payload.get("project")
        if (
            isinstance(project, dict)
            and project.get("rules_fingerprint") == self._project_fingerprint
        ):
            self._project = project
        deps = payload.get("deps")
        if isinstance(deps, dict):
            self._deps = {str(k): list(v) for k, v in deps.items()}

    # -- per-file section ----------------------------------------------
    def lookup(self, path: str, digest: str) -> list[Diagnostic] | None:
        """Cached diagnostics for ``path`` at ``digest``, else None."""
        entry = self._entries.get(path)
        if entry is None or entry.get("sha256") != digest:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return _decode_diags(entry.get("diagnostics", []))

    def store(self, path: str, digest: str, diags: list[Diagnostic]) -> None:
        self._entries[path] = {
            "sha256": digest,
            "diagnostics": [d.to_json() for d in diags],
        }
        self._dirty = True

    # -- project snapshot ----------------------------------------------
    def lookup_project(self, digests: dict[str, str]) -> list[Diagnostic] | None:
        """Project-pass diagnostics if the *entire* file set is unchanged.

        The key is the full ``path -> digest`` map: one edited, added or
        removed file invalidates the snapshot, so a stale callee can
        never keep its callers' project findings alive.
        """
        snap = self._project
        if snap is None or snap.get("files") != digests:
            self.stats.project_misses += 1
            return None
        self.stats.project_hits += 1
        return _decode_diags(snap.get("diagnostics", []))

    def store_project(
        self, digests: dict[str, str], diags: list[Diagnostic]
    ) -> None:
        self._project = {
            "rules_fingerprint": self._project_fingerprint,
            "files": dict(digests),
            "diagnostics": [d.to_json() for d in diags],
        }
        self._dirty = True

    # -- dependency map ------------------------------------------------
    def store_deps(self, deps: dict[str, list[str]]) -> None:
        """Record the project-internal import edges (path -> dep paths)."""
        self._deps = {path: sorted(set(targets)) for path, targets in deps.items()}
        self._dirty = True

    def deps_map(self) -> dict[str, list[str]]:
        """The recorded import edges (empty when the cache is cold)."""
        return {path: list(targets) for path, targets in self._deps.items()}

    def reverse_dependents(self, paths: set[str]) -> set[str]:
        """Transitive closure of files importing anything in ``paths``."""
        importers: dict[str, set[str]] = {}
        for src, targets in self._deps.items():
            for target in targets:
                importers.setdefault(target, set()).add(src)
        out: set[str] = set()
        work = sorted(paths)
        while work:
            current = work.pop()
            for dep in sorted(importers.get(current, ())):
                if dep not in out and dep not in paths:
                    out.add(dep)
                    work.append(dep)
        return out

    def flush(self) -> None:
        """Persist to disk (best-effort: a read-only FS never fails a run)."""
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "rules_fingerprint": self._fingerprint,
            "files": self._entries,
            "project": self._project,
            "deps": self._deps,
        }
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = os.path.join(self.directory, _CACHE_FILE + ".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, os.path.join(self.directory, _CACHE_FILE))
            self._dirty = False
        except OSError:
            pass
