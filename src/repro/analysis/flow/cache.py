"""File-hash-keyed incremental diagnostic cache.

Whole-project analysis made the linter do strictly more work per run,
so the per-file layer earns it back: a file whose content hash and rule
fingerprint both match the previous run replays its recorded
diagnostics without being parsed or checked.  The cache is one JSON
document under ``.repro-lint-cache/`` (CI restores the directory keyed
on the source-tree hash); a version stamp and a fingerprint of the
active per-file rules invalidate it wholesale when the engine or the
rule set changes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, Severity

#: Bump when the cache layout (or any checker semantics) changes.
CACHE_VERSION = 1

_CACHE_FILE = "file-diagnostics.json"


def source_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def rules_fingerprint(rules: list[str]) -> str:
    return hashlib.sha256(",".join(sorted(rules)).encode()).hexdigest()[:16]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class DiagnosticCache:
    """Per-file diagnostic memo keyed on (content hash, rule set)."""

    directory: str
    _entries: dict[str, dict] = field(default_factory=dict)
    _fingerprint: str = ""
    _dirty: bool = False
    stats: CacheStats = field(default_factory=CacheStats)

    def open(self, rules: list[str]) -> None:
        """Load the cache file, discarding it on any mismatch."""
        self._fingerprint = rules_fingerprint(rules)
        self._entries = {}
        path = os.path.join(self.directory, _CACHE_FILE)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return
        if (
            payload.get("version") != CACHE_VERSION
            or payload.get("rules_fingerprint") != self._fingerprint
        ):
            return
        entries = payload.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def lookup(self, path: str, digest: str) -> list[Diagnostic] | None:
        """Cached diagnostics for ``path`` at ``digest``, else None."""
        entry = self._entries.get(path)
        if entry is None or entry.get("sha256") != digest:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        diags: list[Diagnostic] = []
        for record in entry.get("diagnostics", []):
            diags.append(
                Diagnostic(
                    path=record["path"],
                    line=int(record["line"]),
                    col=int(record["col"]),
                    rule=record["rule"],
                    message=record["message"],
                    severity=Severity[record["severity"].upper()],
                    symbol=record.get("symbol", ""),
                )
            )
        return diags

    def store(self, path: str, digest: str, diags: list[Diagnostic]) -> None:
        self._entries[path] = {
            "sha256": digest,
            "diagnostics": [d.to_json() for d in diags],
        }
        self._dirty = True

    def flush(self) -> None:
        """Persist to disk (best-effort: a read-only FS never fails a run)."""
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "rules_fingerprint": self._fingerprint,
            "files": self._entries,
        }
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = os.path.join(self.directory, _CACHE_FILE + ".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, os.path.join(self.directory, _CACHE_FILE))
            self._dirty = False
        except OSError:
            pass
