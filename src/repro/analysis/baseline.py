"""Baseline files: gate CI on *new* diagnostics only.

A baseline is a JSON list of diagnostic fingerprints — ``(path, rule,
symbol, message)``, deliberately excluding line/column so pure code
motion does not resurrect an accepted finding.  ``--write-baseline``
records the current findings; ``--baseline`` filters any finding whose
fingerprint appears in the file (each entry absorbs at most as many
findings as it has ``count``, so a *second* identical regression still
fails).  Paths are stored relative to the baseline file's directory
with forward slashes, so the file is stable across checkouts.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Sequence

from repro.analysis.diagnostics import Diagnostic

BASELINE_VERSION = 1


def _fingerprint(diag: Diagnostic, root: str) -> tuple[str, str, str, str]:
    path = diag.path
    try:
        path = os.path.relpath(os.path.abspath(path), root)
    except ValueError:
        pass
    return (path.replace(os.sep, "/"), diag.rule, diag.symbol, diag.message)


def write_baseline(path: str, diags: Sequence[Diagnostic]) -> None:
    root = os.path.dirname(os.path.abspath(path)) or "."
    counts = Counter(_fingerprint(d, root) for d in diags)
    entries = [
        {"path": p, "rule": r, "symbol": s, "message": m, "count": n}
        for (p, r, s, m), n in sorted(counts.items())
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": BASELINE_VERSION, "entries": entries}, fh, indent=2)
        fh.write("\n")


def load_baseline(path: str) -> Counter:
    """Fingerprint -> accepted count.  Raises FileNotFoundError/ValueError."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a v{BASELINE_VERSION} lint baseline")
    counts: Counter = Counter()
    for entry in payload.get("entries", []):
        key = (entry["path"], entry["rule"], entry.get("symbol", ""), entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def filter_new(
    diags: Sequence[Diagnostic], baseline: Counter, root: str | None = None
) -> list[Diagnostic]:
    """The diagnostics not absorbed by the baseline (stable order)."""
    budget = Counter(baseline)
    root = root or os.getcwd()
    fresh: list[Diagnostic] = []
    for diag in diags:
        key = _fingerprint(diag, root)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            fresh.append(diag)
    return fresh
