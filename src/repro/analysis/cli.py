"""Command-line front end for the static-analysis subsystem.

Invoked as ``python -m repro.lint <paths>``; exits 0 on a clean tree,
1 when diagnostics were found, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.engine import LintEngine
from repro.analysis.registry import all_rules, get_checker
from repro.analysis.reporters import render

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Simulator-aware static analysis for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RULE[,RULE...]",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule}: {get_checker(rule).description}")
        return EXIT_CLEAN

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro.lint: error: no paths given", file=sys.stderr)
        return EXIT_USAGE

    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        engine = LintEngine(rules)
        diags = engine.run(args.paths)
    except (KeyError, FileNotFoundError) as exc:
        # str(KeyError) repr-quotes its message; unwrap the original.
        msg = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"repro.lint: error: {msg}", file=sys.stderr)
        return EXIT_USAGE

    print(render(diags, args.format))
    return EXIT_FINDINGS if diags else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
