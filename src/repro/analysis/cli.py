"""Command-line front end for the static-analysis subsystem.

Invoked as ``python -m repro.lint [<paths>]``; with no paths it lints
the default roots (``src``, ``tests``, ``benchmarks``, ``examples`` —
whichever exist under the working directory).  Exits 0 on a clean
tree, 1 when diagnostics at or above ``--fail-on`` (default
``warning``) survive the baseline, 2 on usage errors.

``python -m repro.lint hotpaths`` dispatches to the static cost-model
report (:mod:`repro.analysis.perfmodel`): hot-function ranking,
vectorizability worklist, and — with ``--validate-spans trace.json`` —
rank-correlation of the static model against measured perf spans.

``python -m repro.lint contract`` dispatches to the backend-contract
extractor (:mod:`repro.analysis.effects`): per-stage read/write sets,
stage-ordering dependencies, per-thread vs shared state, and
SoA-feasibility verdicts — ``--write-contract`` persists the canonical
``backend-contract.json``, ``--diff`` gates on drift against it.

``--changed`` scopes the run to the files the git working tree touched
plus their reverse import-dependent closure from the incremental
cache — the fast pre-commit mode.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis.diagnostics import parse_severity
from repro.analysis.engine import DEFAULT_ROOTS, LintEngine, default_roots
from repro.analysis.flow.cache import DiagnosticCache
from repro.analysis.registry import all_rules, get_checker
from repro.analysis.reporters import render

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

DEFAULT_CACHE_DIR = ".repro-lint-cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Simulator-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the src/tests/"
        "benchmarks/examples roots that exist here)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RULE[,RULE...]",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--fail-on",
        choices=("note", "warning", "error"),
        default="warning",
        help="lowest severity that makes the exit code 1 (default: warning)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="process-pool workers for the per-file phase (0 = cpu count)",
    )
    phase = parser.add_mutually_exclusive_group()
    phase.add_argument(
        "--no-project",
        action="store_true",
        help="run only the fast per-file rules",
    )
    phase.add_argument(
        "--project-only",
        action="store_true",
        help="run only the project-wide dataflow passes",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress diagnostics recorded in this baseline file; only "
        "new findings affect the exit code",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"incremental-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental per-file cache",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache hit/miss statistics to stderr",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed in the git working tree plus their "
        "reverse import-dependents from the incremental cache",
    )
    return parser


def _git_changed_files() -> list[str] | None:
    """Changed + untracked .py files relative to the cwd, or None when
    not inside a git work tree."""
    names: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True, timeout=30
            )
        except (OSError, subprocess.SubprocessError):
            return None
        names.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    out: list[str] = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        path = os.path.relpath(os.path.join(top, name))
        if os.path.isfile(path):
            out.append(path)
    return out


def _changed_scope(args: argparse.Namespace) -> list[str] | None:
    """Resolve ``--changed`` into a path list, or None for a full run.

    The dependency map lives in the incremental cache; when it is cold
    (or git is unavailable) the scope silently widens to the default
    roots so ``--changed`` is never less safe than a full run.
    """
    changed = _git_changed_files()
    if changed is None:
        print(
            "repro.lint: --changed: not a git work tree; linting everything",
            file=sys.stderr,
        )
        return None
    if not changed:
        return []
    if args.no_cache:
        return None
    cache = DiagnosticCache(args.cache_dir)
    cache.open([], [])  # fingerprints don't matter for the deps map
    deps = cache.deps_map()
    if not deps:
        print(
            "repro.lint: --changed: cold cache (no dependency map); "
            "linting everything",
            file=sys.stderr,
        )
        return None
    known = {os.path.normpath(p) for p in deps}
    normalized = {os.path.normpath(p) for p in changed}
    scope = set(changed)
    dependents = cache.reverse_dependents(
        {p for p in deps if os.path.normpath(p) in normalized}
    )
    scope.update(dependents)
    # Changed files outside the scanned roots (e.g. a new script) still
    # lint individually even though the deps map has never seen them.
    scope.update(p for p in changed if os.path.normpath(p) not in known)
    return sorted(scope)


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "hotpaths":
        from repro.analysis.perfmodel.cli import hotpaths_main

        return hotpaths_main(argv[1:])
    if argv and argv[0] == "contract":
        from repro.analysis.effects.cli import contract_main

        return contract_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule}: {get_checker(rule).description}")
        return EXIT_CLEAN

    if args.changed and args.paths:
        print(
            "repro.lint: error: --changed and explicit paths are mutually "
            "exclusive",
            file=sys.stderr,
        )
        return EXIT_USAGE

    paths = args.paths or default_roots()
    if args.changed:
        scope = _changed_scope(args)
        if scope is not None:
            if not scope:
                print("no changed python files")
                return EXIT_CLEAN
            paths = scope
    if not paths:
        parser.print_usage(sys.stderr)
        print(
            "repro.lint: error: no paths given and no default roots "
            f"({'/'.join(DEFAULT_ROOTS)}) here",
            file=sys.stderr,
        )
        return EXIT_USAGE

    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    try:
        engine = LintEngine(
            rules,
            cache_dir=None if args.no_cache else args.cache_dir,
        )
        diags = engine.run(
            paths,
            jobs=jobs,
            file_phase=not args.project_only,
            project_phase=not args.no_project,
        )
        threshold = parse_severity(args.fail_on)
    except (KeyError, FileNotFoundError) as exc:
        # str(KeyError) repr-quotes its message; unwrap the original.
        msg = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"repro.lint: error: {msg}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline is not None:
        baseline_mod.write_baseline(args.write_baseline, diags)
        print(
            f"repro.lint: wrote baseline with {len(diags)} finding(s) to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    if args.baseline is not None:
        try:
            accepted = baseline_mod.load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro.lint: error: bad baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
        root = os.path.dirname(os.path.abspath(args.baseline)) or "."
        diags = baseline_mod.filter_new(diags, accepted, root=root)

    report = render(diags, args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    else:
        print(report)

    if args.stats:
        stats = engine.cache_stats
        print(
            f"repro.lint: cache {stats.hits} hit(s) / {stats.misses} miss(es) "
            f"({stats.hit_rate:.0%})",
            file=sys.stderr,
        )

    failing = [d for d in diags if d.severity >= threshold]
    return EXIT_FINDINGS if failing else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
