"""Command-line front end for the static-analysis subsystem.

Invoked as ``python -m repro.lint [<paths>]``; with no paths it lints
the default roots (``src``, ``tests``, ``benchmarks``, ``examples`` —
whichever exist under the working directory).  Exits 0 on a clean
tree, 1 when diagnostics at or above ``--fail-on`` (default
``warning``) survive the baseline, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis.diagnostics import parse_severity
from repro.analysis.engine import DEFAULT_ROOTS, LintEngine, default_roots
from repro.analysis.registry import all_rules, get_checker
from repro.analysis.reporters import render

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

DEFAULT_CACHE_DIR = ".repro-lint-cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Simulator-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the src/tests/"
        "benchmarks/examples roots that exist here)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RULE[,RULE...]",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--fail-on",
        choices=("note", "warning", "error"),
        default="warning",
        help="lowest severity that makes the exit code 1 (default: warning)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="process-pool workers for the per-file phase (0 = cpu count)",
    )
    phase = parser.add_mutually_exclusive_group()
    phase.add_argument(
        "--no-project",
        action="store_true",
        help="run only the fast per-file rules",
    )
    phase.add_argument(
        "--project-only",
        action="store_true",
        help="run only the project-wide dataflow passes",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress diagnostics recorded in this baseline file; only "
        "new findings affect the exit code",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"incremental-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental per-file cache",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache hit/miss statistics to stderr",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule}: {get_checker(rule).description}")
        return EXIT_CLEAN

    paths = args.paths or default_roots()
    if not paths:
        parser.print_usage(sys.stderr)
        print(
            "repro.lint: error: no paths given and no default roots "
            f"({'/'.join(DEFAULT_ROOTS)}) here",
            file=sys.stderr,
        )
        return EXIT_USAGE

    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    try:
        engine = LintEngine(
            rules,
            cache_dir=None if args.no_cache else args.cache_dir,
        )
        diags = engine.run(
            paths,
            jobs=jobs,
            file_phase=not args.project_only,
            project_phase=not args.no_project,
        )
        threshold = parse_severity(args.fail_on)
    except (KeyError, FileNotFoundError) as exc:
        # str(KeyError) repr-quotes its message; unwrap the original.
        msg = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"repro.lint: error: {msg}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline is not None:
        baseline_mod.write_baseline(args.write_baseline, diags)
        print(
            f"repro.lint: wrote baseline with {len(diags)} finding(s) to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    if args.baseline is not None:
        try:
            accepted = baseline_mod.load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro.lint: error: bad baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
        root = os.path.dirname(os.path.abspath(args.baseline)) or "."
        diags = baseline_mod.filter_new(diags, accepted, root=root)

    report = render(diags, args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    else:
        print(report)

    if args.stats:
        stats = engine.cache_stats
        print(
            f"repro.lint: cache {stats.hits} hit(s) / {stats.misses} miss(es) "
            f"({stats.hit_rate:.0%})",
            file=sys.stderr,
        )

    failing = [d for d in diags if d.severity >= threshold]
    return EXIT_FINDINGS if failing else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
