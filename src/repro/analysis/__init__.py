"""Simulator-aware static analysis (``python -m repro.lint``).

A pluggable lint framework that enforces the invariants the simulator's
correctness rests on but that no generic tool checks.  Per-file AST
rules:

* **determinism** — all nondeterminism must flow through seeded RNGs;
  wall-clock reads and set-iteration-order escapes are flagged.
* **counter-balance** — registered running counters
  (``pred_ace_bits``, ``ready_pred_ace``, ``per_thread``, …) must be
  decremented on a squash/remove path in every class that increments
  them.
* **slots** — attributes assigned on ``self`` in a ``__slots__`` class
  must be declared in ``__slots__``.
* **stage-purity** — pipeline-stage methods must not reach into another
  structure's ``_``-private state.
* **config-bounds** — numeric dataclass fields in ``config.py`` must be
  covered by the class's ``validate()``.
* **event-schema** — every ``bus.emit(...)`` call site must match a
  registered topic schema.

Project-wide dataflow passes (:mod:`repro.analysis.flow` — symbol
tables, import-resolved call graph, CFGs with reaching definitions and
liveness):

* **paper-fidelity** — catalogued paper constants (interval length,
  ``Tcache_miss``, DVM trigger fraction, IQL region caps, …) must flow
  from :mod:`repro.config`, never be re-hard-coded or silently drifted.
* **nondet-iteration** — set iteration order must not reach simulation
  state or an ``emit()`` payload, traced through reaching definitions.
* **emit-coverage** — state-mutating decision hooks in the DVM /
  resource-allocation / fetch-policy modules must have a call-graph
  path to a ``bus.emit``.
* **hidden-state** — attributes first bound outside ``__init__`` must
  be restored by ``reset()`` (checked across helper methods and base
  classes), and ``__slots__`` completeness is enforced across the MRO.

Performance-model passes (:mod:`repro.analysis.perfmodel` — a
loop-depth-weighted static cost model over the same call graph, plus
the ``repro lint hotpaths`` report that cross-validates it against
measured perf spans):

* **hot-loop-alloc** — no allocation/dispatch churn (comprehensions,
  displays, f-strings, ``isinstance``/``getattr`` dispatch) inside
  loops of functions the cost model ranks as hot.
* **pickle-safety** — pool-submitted callables must be module-level
  functions; lambdas, nested ``def``\\ s, bound methods and
  handle/lock arguments are flagged at the submission site.
* **fork-safety** — worker-reachable code must not mutate fork-shared
  state: ``global`` rebinding, module-level container mutation and
  process-global RNG draws diverge silently between parent and
  children.

Checkers register themselves in :mod:`repro.analysis.registry`; the
engine (:mod:`repro.analysis.engine`) walks files behind an incremental
file-hash cache (with a whole-project snapshot giving the project
passes transitive invalidation, and a dependency map powering
``--changed``), applies ``# lint: disable=<rule>`` suppressions, and
hands diagnostics to the text/JSON/SARIF reporters; ``--baseline``
(:mod:`repro.analysis.baseline`) gates CI on new findings only, and
:mod:`repro.analysis.sarif_schema` structurally validates the SARIF
output in CI.
"""

from repro.analysis.baseline import filter_new, load_baseline, write_baseline
from repro.analysis.diagnostics import Diagnostic, Severity, parse_severity
from repro.analysis.engine import FileContext, LintEngine
from repro.analysis.registry import (
    BaseChecker,
    ProjectChecker,
    all_rules,
    get_checker,
    register,
)

__all__ = [
    "BaseChecker",
    "Diagnostic",
    "FileContext",
    "LintEngine",
    "ProjectChecker",
    "Severity",
    "all_rules",
    "filter_new",
    "get_checker",
    "load_baseline",
    "parse_severity",
    "register",
    "write_baseline",
]
