"""Simulator-aware static analysis (``python -m repro.lint``).

A small, pluggable AST-lint framework that enforces the invariants the
simulator's correctness rests on but that no generic tool checks:

* **determinism** — all nondeterminism must flow through seeded RNGs;
  wall-clock reads and set-iteration-order escapes are flagged.
* **counter-balance** — registered running counters
  (``pred_ace_bits``, ``ready_pred_ace``, ``per_thread``, …) must be
  decremented on a squash/remove path in every class that increments
  them.
* **slots** — attributes assigned on ``self`` in a ``__slots__`` class
  must be declared in ``__slots__``.
* **stage-purity** — pipeline-stage methods must not reach into another
  structure's ``_``-private state.
* **config-bounds** — numeric dataclass fields in ``config.py`` must be
  covered by the class's ``validate()``.

Checkers register themselves in :mod:`repro.analysis.registry`; the
engine (:mod:`repro.analysis.engine`) walks files, applies
``# lint: disable=<rule>`` suppressions and hands diagnostics to the
text/JSON reporters.
"""

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import FileContext, LintEngine
from repro.analysis.registry import BaseChecker, all_rules, get_checker, register

__all__ = [
    "BaseChecker",
    "Diagnostic",
    "FileContext",
    "LintEngine",
    "Severity",
    "all_rules",
    "get_checker",
    "register",
]
