"""Structural validation of SARIF 2.1.0 documents — no external deps.

GitHub code scanning (and every other SARIF consumer) silently drops
malformed logs, so a reporter bug would otherwise surface as "the PR
annotations disappeared" weeks later.  This module checks the subset
of the SARIF 2.1.0 schema that :func:`repro.analysis.reporters.
render_sarif` emits and that consumers actually require:

* top level: ``version == "2.1.0"`` and a non-empty ``runs`` list;
* each run: ``tool.driver.name`` (non-empty string) and unique rule
  ``id``s in ``tool.driver.rules``;
* each result: non-empty ``message.text``, a known ``level``, a
  ``ruleIndex`` (when present) that indexes into the driver rules and
  agrees with ``ruleId``, and at least one location whose
  ``artifactLocation.uri`` is a non-empty relative URI with 1-based
  ``region`` bounds.

Run it from CI as ``python -m repro.analysis.sarif_schema FILE`` —
exit 0 when the document validates, 1 with one ``path: message`` line
per violation otherwise.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Sequence

#: SARIF 2.1.0 result levels (§3.27.10).
RESULT_LEVELS = frozenset({"none", "note", "warning", "error"})


def _is_nonempty_str(value: Any) -> bool:
    return isinstance(value, str) and bool(value.strip())


def _check_rules(driver: dict, at: str, errors: list[str]) -> list[str]:
    """Validate ``tool.driver.rules``; returns the ordered rule ids."""
    rules = driver.get("rules", [])
    if not isinstance(rules, list):
        errors.append(f"{at}.rules: expected a list")
        return []
    ids: list[str] = []
    seen: set[str] = set()
    for i, rule in enumerate(rules):
        where = f"{at}.rules[{i}]"
        if not isinstance(rule, dict):
            errors.append(f"{where}: expected an object")
            ids.append("")
            continue
        rule_id = rule.get("id")
        if not _is_nonempty_str(rule_id):
            errors.append(f"{where}.id: missing or empty")
            ids.append("")
            continue
        if rule_id in seen:
            errors.append(f"{where}.id: duplicate rule id {rule_id!r}")
        seen.add(rule_id)
        ids.append(rule_id)
    return ids


def _check_location(loc: Any, at: str, errors: list[str]) -> None:
    if not isinstance(loc, dict):
        errors.append(f"{at}: expected an object")
        return
    phys = loc.get("physicalLocation")
    if not isinstance(phys, dict):
        errors.append(f"{at}.physicalLocation: missing or not an object")
        return
    art = phys.get("artifactLocation")
    if not isinstance(art, dict) or not _is_nonempty_str(art.get("uri")):
        errors.append(f"{at}.physicalLocation.artifactLocation.uri: missing or empty")
    else:
        uri = art["uri"]
        if uri.startswith("/") or "\\" in uri:
            errors.append(
                f"{at}.physicalLocation.artifactLocation.uri: {uri!r} must be "
                "a relative, forward-slash URI"
            )
    region = phys.get("region")
    if region is None:
        return
    if not isinstance(region, dict):
        errors.append(f"{at}.physicalLocation.region: expected an object")
        return
    valid: dict[str, int] = {}
    for field in ("startLine", "startColumn", "endLine", "endColumn"):
        if field not in region:
            continue
        value = region[field]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            errors.append(
                f"{at}.physicalLocation.region.{field}: {value!r} must be an "
                "integer >= 1"
            )
        else:
            valid[field] = value
    # Region bounds must be ordered: a consumer rendering an inverted
    # region silently drops the annotation.
    if "endLine" in valid and "startLine" in valid and valid["endLine"] < valid["startLine"]:
        errors.append(
            f"{at}.physicalLocation.region: endLine {valid['endLine']} < "
            f"startLine {valid['startLine']}"
        )
    if (
        "endColumn" in valid
        and "startColumn" in valid
        and valid.get("endLine", valid.get("startLine")) == valid.get("startLine")
        and valid["endColumn"] < valid["startColumn"]
    ):
        errors.append(
            f"{at}.physicalLocation.region: endColumn {valid['endColumn']} < "
            f"startColumn {valid['startColumn']} on the same line"
        )


def _check_result(
    result: Any, at: str, rule_ids: Sequence[str], errors: list[str]
) -> None:
    if not isinstance(result, dict):
        errors.append(f"{at}: expected an object")
        return
    message = result.get("message")
    if not isinstance(message, dict) or not _is_nonempty_str(message.get("text")):
        errors.append(f"{at}.message.text: missing or empty")
    level = result.get("level")
    if level is not None and level not in RESULT_LEVELS:
        errors.append(
            f"{at}.level: {level!r} not one of {sorted(RESULT_LEVELS)}"
        )
    rule_id = result.get("ruleId")
    if rule_id is not None and not _is_nonempty_str(rule_id):
        errors.append(f"{at}.ruleId: empty")
    index = result.get("ruleIndex")
    if index is not None:
        if not isinstance(index, int) or isinstance(index, bool) or not (
            0 <= index < len(rule_ids)
        ):
            errors.append(
                f"{at}.ruleIndex: {index!r} out of range for "
                f"{len(rule_ids)} driver rule(s)"
            )
        elif rule_id is not None and rule_ids[index] != rule_id:
            errors.append(
                f"{at}.ruleIndex: points at {rule_ids[index]!r} but ruleId "
                f"is {rule_id!r}"
            )
    locations = result.get("locations")
    if not isinstance(locations, list) or not locations:
        errors.append(f"{at}.locations: missing or empty")
        return
    for i, loc in enumerate(locations):
        _check_location(loc, f"{at}.locations[{i}]", errors)


def validate_sarif(doc: Any) -> list[str]:
    """Structural violations in ``doc``; an empty list means valid."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["$: expected a JSON object"]
    if doc.get("version") != "2.1.0":
        errors.append(f"$.version: {doc.get('version')!r} != '2.1.0'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("$.runs: missing or empty")
        return errors
    for r, run in enumerate(runs):
        at = f"$.runs[{r}]"
        if not isinstance(run, dict):
            errors.append(f"{at}: expected an object")
            continue
        driver = run.get("tool", {})
        driver = driver.get("driver") if isinstance(driver, dict) else None
        if not isinstance(driver, dict):
            errors.append(f"{at}.tool.driver: missing or not an object")
            rule_ids: list[str] = []
        else:
            if not _is_nonempty_str(driver.get("name")):
                errors.append(f"{at}.tool.driver.name: missing or empty")
            rule_ids = _check_rules(driver, f"{at}.tool.driver", errors)
        results = run.get("results", [])
        if not isinstance(results, list):
            errors.append(f"{at}.results: expected a list")
            continue
        for i, result in enumerate(results):
            _check_result(result, f"{at}.results[{i}]", rule_ids, errors)
    return errors


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.analysis.sarif_schema FILE", file=sys.stderr)
        return 2
    path = argv[0]
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"{path}: unreadable SARIF: {exc}", file=sys.stderr)
        return 1
    errors = validate_sarif(doc)
    for err in errors:
        print(f"{path}: {err}", file=sys.stderr)
    if errors:
        print(f"{path}: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    runs = doc["runs"]
    results = sum(len(r.get("results", [])) for r in runs)
    print(f"{path}: valid SARIF 2.1.0 ({len(runs)} run(s), {results} result(s))")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
