"""``repro lint hotpaths`` — the static cost-model report.

Three sections, text or JSON:

* **ranking** — the top-N functions by loop-depth-weighted static cost,
  with call scores and inclusive costs
  (:mod:`repro.analysis.perfmodel.costmodel`);
* **vectorizability** — the struct-of-arrays worklist for the numpy
  backend: which ranked functions translate mechanically and which
  carry blockers (:mod:`repro.analysis.perfmodel.vectorize`);
* **validation** (``--validate-spans trace.json``) — Spearman rank
  correlation of the static ranking against measured span durations
  from a ``repro perf`` Chrome trace; ``--min-correlation`` turns the
  report into a gate.

Exit codes match the lint front end: 0 clean, 1 when a
``--min-correlation`` gate fails, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.engine import (
    DEFAULT_ROOTS,
    LintEngine,
    default_roots,
    iter_python_files,
)
from repro.analysis.flow.project import ProjectContext
from repro.analysis.perfmodel.costmodel import CostModel
from repro.analysis.perfmodel.spanvalidate import validate_against_trace
from repro.analysis.perfmodel.vectorize import classify_hot_functions

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint hotpaths",
        description="Static hot-path cost model: ranking, vectorizability, "
        "and cross-validation against measured perf spans.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the src/tests/"
        "benchmarks/examples roots that exist here)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="ranking length (default: 10)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--validate-spans",
        default=None,
        metavar="TRACE",
        help="Chrome trace JSON from `repro perf` to cross-validate the "
        "static ranking against",
    )
    parser.add_argument(
        "--min-correlation",
        type=float,
        default=None,
        metavar="R",
        help="fail (exit 1) when the measured-vs-static rank correlation "
        "drops below R",
    )
    return parser


def build_project(paths: Sequence[str]) -> ProjectContext:
    """Parse every .py under ``paths`` into one ProjectContext."""
    engine = LintEngine([])
    contexts = []
    for path in iter_python_files(paths):
        with open(path, "rb") as fh:
            raw = fh.read()
        ctx = engine._parse_context(path, raw)
        if ctx is not None:
            contexts.append(ctx)
    return ProjectContext(sorted(contexts, key=lambda c: c.path))


def _text_report(payload: dict) -> str:
    lines: list[str] = []
    lines.append(
        f"hot-path ranking (top {len(payload['ranking'])}, "
        f"loop weight {payload['loop_weight']:g}, entry points: "
        + (", ".join(payload["entry_points"]) or "none")
        + ")"
    )
    for i, cost in enumerate(payload["ranking"], 1):
        lines.append(
            f"{i:3d}. {cost['qualname']}  total={cost['total_cost']:.0f} "
            f"(score={cost['call_score']:.0f} local={cost['local_cost']:.0f} "
            f"inclusive={cost['inclusive_cost']:.0f})"
        )
    lines.append("")
    lines.append("vectorizability worklist:")
    for rep in payload["vectorizability"]:
        if rep["vectorizable"]:
            lines.append(f"  ready    {rep['qualname']}")
        else:
            lines.append(f"  blocked  {rep['qualname']}")
            for blk in rep["blockers"]:
                lines.append(
                    f"           line {blk['line']}: {blk['kind']} — {blk['detail']}"
                )
    validation = payload.get("validation")
    if validation is not None:
        lines.append("")
        lines.append(
            f"span validation: rank correlation {validation['correlation']:.3f} "
            f"over {len(validation['pairs'])} matched function(s)"
        )
        for pair in validation["pairs"]:
            lines.append(
                f"  measured #{pair['measured_rank']} / static "
                f"#{pair['static_rank']}  {pair['qualname']} "
                f"({pair['measured_us']:.0f} us vs cost "
                f"{pair['static_cost']:.0f})"
            )
        if validation["unmatched_spans"]:
            lines.append(
                "  unmatched spans: " + ", ".join(validation["unmatched_spans"])
            )
    return "\n".join(lines)


def hotpaths_main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    paths = args.paths or default_roots()
    if not paths:
        parser.print_usage(sys.stderr)
        print(
            "repro.lint hotpaths: error: no paths given and no default "
            f"roots ({'/'.join(DEFAULT_ROOTS)}) here",
            file=sys.stderr,
        )
        return EXIT_USAGE

    try:
        project = build_project(paths)
    except FileNotFoundError as exc:
        print(f"repro.lint hotpaths: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    model = CostModel(project)
    payload: dict = {
        "loop_weight": model.loop_weight,
        "entry_points": model.entry_points,
        "ranking": [c.to_dict() for c in model.ranking(args.top)],
        "vectorizability": [
            r.to_dict() for r in classify_hot_functions(project, model, args.top)
        ],
    }

    if args.validate_spans is not None:
        try:
            with open(args.validate_spans, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            print(
                f"repro.lint hotpaths: error: bad trace "
                f"{args.validate_spans!r}: {exc}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        report = validate_against_trace(project, doc, model=model)
        payload["validation"] = report.to_dict()

    out = (
        json.dumps(payload, indent=2, sort_keys=True)
        if args.format == "json"
        else _text_report(payload)
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(out + "\n")
    else:
        print(out)

    if args.min_correlation is not None:
        validation = payload.get("validation")
        if validation is None:
            print(
                "repro.lint hotpaths: error: --min-correlation needs "
                "--validate-spans",
                file=sys.stderr,
            )
            return EXIT_USAGE
        if validation["correlation"] < args.min_correlation:
            print(
                f"repro.lint hotpaths: correlation "
                f"{validation['correlation']:.3f} below the "
                f"--min-correlation gate {args.min_correlation:g}",
                file=sys.stderr,
            )
            return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(hotpaths_main())
