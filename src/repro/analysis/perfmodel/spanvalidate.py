"""Cross-validation of the static cost model against measured spans.

The cost model is only trustworthy if its ranking of hot functions
agrees with what the profiler actually measures.  This module closes
that loop: given a Chrome trace written by ``repro perf trace`` or
``repro perf run --trace``, it aggregates measured span durations per
span name, maps span names onto call-graph qualnames
(:data:`SPAN_FUNCTION_MAP`), and reports the Spearman rank correlation
between the static *inclusive cost* and the measured total time over
the functions both sides know about.

``repro lint hotpaths --validate-spans trace.json`` prints the paired
ranking and the correlation; a large disagreement is itself a finding —
either the model weights are off or the measured run exercised a path
the model does not weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.analysis.flow.project import ProjectContext
from repro.analysis.perfmodel.costmodel import CostModel

#: Span name -> call-graph qualname.  Stage spans come from
#: :class:`repro.perf.spans.TracingProfiler` (the pipeline's six
#: per-cycle laps); bench spans are named after their case and map to
#: the factory whose closure the harness times.
SPAN_FUNCTION_MAP: dict[str, str] = {
    "cycle": "repro.core.pipeline.SMTPipeline.run",
    "commit": "repro.core.pipeline.SMTPipeline._commit",
    "writeback": "repro.core.pipeline.SMTPipeline._writeback",
    "issue": "repro.core.pipeline.SMTPipeline._issue",
    "dispatch": "repro.core.pipeline.SMTPipeline._dispatch",
    "fetch": "repro.core.pipeline.SMTPipeline._fetch",
    "tick": "repro.core.pipeline.SMTPipeline._tick_stats",
    "pipeline_cycle_loop": "repro.perf.bench._make_pipeline_cycle_loop",
    "issue_select": "repro.perf.bench._make_issue_select",
    "dvm_interval": "repro.perf.bench._make_dvm_interval",
    "resource_alloc": "repro.perf.bench._make_resource_alloc",
    "lint_warm": "repro.perf.bench._make_lint_warm",
    "parallel_sweep": "repro.perf.bench._make_parallel_sweep",
}

#: Span categories that carry measured code durations (decision/instant
#: tracks are cycle-domain and excluded).
_MEASURED_CATS = frozenset({"cycle", "stage", "bench", "perf"})


@dataclass(frozen=True)
class RankedPair:
    """One function ranked by both the model and the measurement."""

    qualname: str
    span_name: str
    measured_us: float
    static_cost: float
    measured_rank: int
    static_rank: int

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "span_name": self.span_name,
            "measured_us": self.measured_us,
            "static_cost": self.static_cost,
            "measured_rank": self.measured_rank,
            "static_rank": self.static_rank,
        }


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one static-vs-measured comparison."""

    pairs: tuple[RankedPair, ...]
    correlation: float
    unmatched_spans: tuple[str, ...]

    def to_dict(self) -> dict[str, object]:
        return {
            "correlation": self.correlation,
            "pairs": [p.to_dict() for p in self.pairs],
            "unmatched_spans": list(self.unmatched_spans),
        }


def measured_durations(doc: Mapping[str, Any]) -> dict[str, float]:
    """Total measured microseconds per span name in a trace document.

    Only complete (``"X"``) events in a measured category count; the
    cycle-domain decision tracks say nothing about code cost.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document has no traceEvents list")
    totals: dict[str, float] = {}
    for ev in events:
        if not isinstance(ev, Mapping) or ev.get("ph") != "X":
            continue
        if ev.get("cat") not in _MEASURED_CATS:
            continue
        name = str(ev.get("name", ""))
        totals[name] = totals.get(name, 0.0) + float(ev.get("dur", 0.0))
    return totals


def _average_ranks(values: list[float]) -> list[float]:
    """Descending average ranks (1 = largest); ties share their mean."""
    order = sorted(range(len(values)), key=lambda i: (-values[i], i))
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean
        i = j + 1
    return ranks


def spearman(xs: list[float], ys: list[float]) -> float:
    """Spearman rank correlation (Pearson over average ranks).

    Fewer than two pairs, or a constant side, correlate perfectly by
    convention: there is no ordering left to disagree about.
    """
    if len(xs) != len(ys):
        raise ValueError("rank correlation needs paired samples")
    n = len(xs)
    if n < 2:
        return 1.0
    rx = _average_ranks(xs)
    ry = _average_ranks(ys)
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0.0 or vy == 0.0:
        return 1.0
    return cov / (vx * vy) ** 0.5


def validate_against_trace(
    project: ProjectContext,
    doc: Mapping[str, Any],
    *,
    model: CostModel | None = None,
    span_map: Mapping[str, str] | None = None,
) -> ValidationReport:
    """Compare the model's inclusive costs with a trace's measured spans."""
    if model is None:
        model = CostModel(project)
    mapping = dict(span_map if span_map is not None else SPAN_FUNCTION_MAP)
    totals = measured_durations(doc)

    matched: list[tuple[str, str, float, float]] = []
    unmatched: list[str] = []
    for name in sorted(totals):
        qual = mapping.get(name)
        cost = model.cost_of(qual) if qual is not None else None
        if qual is None or cost is None:
            unmatched.append(name)
            continue
        matched.append((qual, name, totals[name], cost.inclusive_cost))

    measured = [m[2] for m in matched]
    static = [m[3] for m in matched]
    m_ranks = _average_ranks(measured)
    s_ranks = _average_ranks(static)
    pairs = tuple(
        RankedPair(
            qualname=qual,
            span_name=name,
            measured_us=dur,
            static_cost=cost,
            measured_rank=int(round(m_ranks[i])),
            static_rank=int(round(s_ranks[i])),
        )
        for i, (qual, name, dur, cost) in enumerate(matched)
    )
    ordered = tuple(sorted(pairs, key=lambda p: (p.measured_rank, p.qualname)))
    return ValidationReport(
        pairs=ordered,
        correlation=spearman(measured, static),
        unmatched_spans=tuple(unmatched),
    )
