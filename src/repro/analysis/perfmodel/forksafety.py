"""``pickle-safety`` / ``fork-safety`` — code crossing the process pool.

``repro.harness.parallel`` (and the lint engine's own ``--jobs`` pool)
ship callables and arguments into worker processes.  Two pass families
check, statically, that what crosses the boundary survives it:

* **pickle-safety** inspects every pool submission site —
  ``pool.submit(f, ...)``, ``pool.map(f, ...)`` and
  ``Executor(initializer=f, ...)`` keywords — and requires the
  submitted callable to be a module-level function (lambdas and nested
  ``def``\\ s cannot be pickled under the ``spawn`` start method; bound
  methods drag their whole instance through the pickle).  Arguments
  whose reaching definition is an ``open(...)`` handle or a
  ``threading`` lock are flagged too: both are either unpicklable or
  silently duplicated across the fork.

* **fork-safety** computes the *worker-reachable* set — the call-graph
  closure of every submitted callable and initializer — and flags
  state that diverges between parent and children: ``global``
  declarations that are written, mutation of module-level containers
  (each worker mutates its own copy; the parent never sees it), and
  process-global RNG use (``random.random`` et al. — fork inherits the
  RNG state, so every worker draws the identical "random" stream).

Deliberate per-process memo caches (a worker warming its own
``run_sim`` cache) are the accepted exception: suppress at the mutation
site with ``# lint: disable=fork-safety`` and a reason comment, so
every exception stays visible in the file that owns it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.cfg import bound_names, stmt_defs
from repro.analysis.flow.project import ProjectContext
from repro.analysis.flow.symbols import ClassInfo, ModuleInfo
from repro.analysis.registry import ProjectChecker, register

#: Attribute names treated as pool submission methods.
_SUBMIT_ATTRS = frozenset({"submit", "map"})

#: Mutator method names on module-level containers.
_MUTATOR_ATTRS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
    }
)

#: Callables whose results must not cross the fork as arguments.
_HANDLE_FACTORIES = frozenset({"open", "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})


@dataclass(frozen=True)
class PoolSite:
    """One place a callable is handed to a process pool."""

    module: ModuleInfo
    cls: ClassInfo | None
    func: ast.FunctionDef | ast.AsyncFunctionDef
    call: ast.Call
    callable_expr: ast.expr
    kind: str  # "submit" | "map" | "initializer"


def iter_pool_sites(project: ProjectContext) -> Iterator[PoolSite]:
    """Every pool submission site in the project, in deterministic order."""
    for mod, cls, func in project.iter_functions():
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in _SUBMIT_ATTRS
                and node.args
            ):
                yield PoolSite(mod, cls, func, node, node.args[0], fn.attr)
            for kw in node.keywords:
                if kw.arg == "initializer":
                    yield PoolSite(mod, cls, func, node, kw.value, "initializer")


def _nested_def_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names of ``def``\\ s nested anywhere inside ``func``."""
    names: set[str] = set()
    for node in ast.walk(func):
        if node is not func and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


def resolve_submitted(project: ProjectContext, site: PoolSite) -> str | None:
    """Qualname of the submitted callable when it is a module-level
    project function, else None (lambdas/nested defs are diagnosed
    separately; foreign functions are out of analysis scope)."""
    expr = site.callable_expr
    if not isinstance(expr, ast.Name):
        return None
    mod = site.module
    if expr.id in mod.functions:
        return f"{mod.name}.{expr.id}"
    target = mod.imports.get(expr.id)
    if target is not None and target in project.call_graph.functions:
        return target
    return None


def _module_level_names(mod: ModuleInfo) -> set[str]:
    """Names bound by module-level assignments (the fork-shared state)."""
    names: set[str] = set()
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                names |= bound_names(tgt)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            names |= bound_names(stmt.target)
    return names


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound anywhere in ``func`` (params + assignments)."""
    args = func.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.stmt):
            names |= stmt_defs(node)
    return names


def worker_reachable(project: ProjectContext) -> dict[str, str]:
    """Worker-reachable qualname -> the root that reaches it."""
    graph = project.call_graph
    roots: list[str] = []
    for site in iter_pool_sites(project):
        qual = resolve_submitted(project, site)
        if qual is not None:
            roots.append(qual)
    reached: dict[str, str] = {}
    for root in sorted(set(roots)):
        stack = [root]
        while stack:
            qual = stack.pop()
            if qual in reached:
                continue
            reached[qual] = root
            stack.extend(sorted(graph.callees(qual)))
    return reached


@register
class PickleSafetyChecker(ProjectChecker):
    rule = "pickle-safety"
    description = "pool-submitted callables must be module-level and picklable"

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for site in iter_pool_sites(project):
            yield from self._check_site(project, site)

    def _check_site(
        self, project: ProjectContext, site: PoolSite
    ) -> Iterator[Diagnostic]:
        expr = site.callable_expr
        where = (
            f"{site.kind}= of" if site.kind == "initializer" else f".{site.kind}() in"
        )
        owner = f"{site.cls.name}.{site.func.name}" if site.cls else site.func.name
        if isinstance(expr, ast.Lambda):
            yield self._diag(
                site,
                expr,
                f"lambda passed to pool {where} {owner} cannot be pickled "
                "under the spawn start method; submit a module-level "
                "function instead",
                Severity.ERROR,
            )
        elif isinstance(expr, ast.Name):
            if expr.id in _nested_def_names(site.func):
                yield self._diag(
                    site,
                    expr,
                    f"nested function {expr.id!r} passed to pool {where} "
                    f"{owner} cannot be pickled (its closure does not cross "
                    "the process boundary); hoist it to module level",
                    Severity.ERROR,
                )
        elif isinstance(expr, ast.Attribute) and not (
            isinstance(expr.value, ast.Name)
            and expr.value.id in site.module.imports
        ):
            yield self._diag(
                site,
                expr,
                f"bound method {ast.unparse(expr)!r} passed to pool {where} "
                f"{owner} pickles its whole instance into every task; "
                "submit a module-level function taking the needed fields",
                Severity.WARNING,
            )
        yield from self._check_handle_args(project, site)

    def _check_handle_args(
        self, project: ProjectContext, site: PoolSite
    ) -> Iterator[Diagnostic]:
        """Arguments whose reaching definition is a handle/lock factory."""
        flow = project.flow(site.func)
        anchor = self._enclosing_stmt(flow.nodes, site.call)
        if anchor is None:
            return
        reaching = flow.reaching_in(anchor)
        for arg in list(site.call.args[1:]) + [
            kw.value for kw in site.call.keywords if kw.arg == "initargs"
        ]:
            for name_node in ast.walk(arg):
                if not (
                    isinstance(name_node, ast.Name)
                    and isinstance(name_node.ctx, ast.Load)
                ):
                    continue
                for def_stmt in reaching.get(name_node.id, []):
                    value = (
                        flow.assigned_value(def_stmt, name_node.id)
                        if isinstance(def_stmt, (ast.Assign, ast.AnnAssign))
                        else None
                    )
                    factory = self._handle_factory(value)
                    if factory is not None:
                        yield self._diag(
                            site,
                            name_node,
                            f"argument {name_node.id!r} holds a {factory}() "
                            "result; file handles and locks do not survive "
                            "the process boundary — open/create them inside "
                            "the worker instead",
                            Severity.WARNING,
                        )
                        break

    @staticmethod
    def _handle_factory(value: ast.expr | None) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        fn = value.func
        name = None
        if isinstance(fn, ast.Name):
            name = fn.id
        elif isinstance(fn, ast.Attribute):
            name = fn.attr
        return name if name in _HANDLE_FACTORIES else None

    @staticmethod
    def _enclosing_stmt(nodes: list[ast.stmt], call: ast.Call) -> ast.stmt | None:
        """Innermost CFG statement whose source span contains ``call``."""
        best: ast.stmt | None = None
        best_span = None
        for stmt in nodes:
            end = getattr(stmt, "end_lineno", stmt.lineno)
            if stmt.lineno <= call.lineno <= end:
                span = end - stmt.lineno
                if best_span is None or span <= best_span:
                    best, best_span = stmt, span
        return best

    def _diag(
        self, site: PoolSite, node: ast.AST, message: str, severity: Severity
    ) -> Diagnostic:
        owner = f"{site.cls.name}.{site.func.name}" if site.cls else site.func.name
        return Diagnostic(
            path=site.module.path,
            line=getattr(node, "lineno", site.call.lineno),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
            severity=severity,
            symbol=f"{site.module.name}.{owner}",
        )


@register
class ForkSafetyChecker(ProjectChecker):
    rule = "fork-safety"
    description = "worker-reachable code must not mutate fork-shared state"

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        reached = worker_reachable(project)
        graph = project.call_graph
        module_names: dict[str, set[str]] = {}
        for qual in sorted(reached):
            node = graph.functions.get(qual)
            if node is None:
                continue
            mod = project.modules_by_name.get(node.module)
            if mod is None:
                continue
            if node.module not in module_names:
                module_names[node.module] = _module_level_names(mod)
            yield from self._check_function(
                mod, qual, node.node, module_names[node.module], reached[qual]
            )

    def _check_function(
        self,
        mod: ModuleInfo,
        qual: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        module_level: set[str],
        root: str,
    ) -> Iterator[Diagnostic]:
        locals_ = _local_names(func)
        declared_global: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global |= set(node.names)
        shared = (module_level | declared_global) - (locals_ - declared_global)

        for node in ast.walk(func):
            # global X; X = ... — rebinding a module global in a worker.
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for tgt in targets:
                    if isinstance(tgt, ast.Name) and tgt.id in declared_global:
                        yield self._diag(
                            mod,
                            node,
                            qual,
                            f"writes module global {tgt.id!r} in worker-"
                            f"reachable code (reached from {root}); the "
                            "parent process never observes the write — pass "
                            "state explicitly or suppress a deliberate "
                            "per-process memo with a reason",
                        )
                    # X[...] = ... on a module-level container.
                    base = tgt
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if (
                        base is not tgt
                        and isinstance(base, ast.Name)
                        and base.id in shared
                    ):
                        yield self._diag(
                            mod,
                            node,
                            qual,
                            f"stores into module-level container {base.id!r} "
                            f"in worker-reachable code (reached from {root}); "
                            "each worker mutates its own copy — return the "
                            "value instead or suppress a deliberate "
                            "per-process memo with a reason",
                        )
            # X.append(...)/X.update(...) on a module-level container.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_ATTRS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in shared
            ):
                yield self._diag(
                    mod,
                    node,
                    qual,
                    f"mutates module-level container "
                    f"{node.func.value.id!r} via .{node.func.attr}() in "
                    f"worker-reachable code (reached from {root}); each "
                    "worker mutates its own copy — return the value instead",
                )
            # Process-global RNG draws.
            rng = self._global_rng_call(mod, node)
            if rng is not None:
                yield self._diag(
                    mod,
                    node,
                    qual,
                    f"calls process-global RNG {rng} in worker-reachable "
                    f"code (reached from {root}); forked workers inherit "
                    "identical RNG state — use a seeded per-task "
                    "random.Random instance",
                )

    @staticmethod
    def _global_rng_call(mod: ModuleInfo, node: ast.AST) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        fn = node.func
        if (
            isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name)
            and mod.imports.get(fn.value.id) == "random"
        ):
            return f"random.{fn.attr}"
        if isinstance(fn, ast.Name):
            target = mod.imports.get(fn.id, "")
            if target.startswith("random.") and target != "random.Random":
                return target
        return None

    def _diag(self, mod: ModuleInfo, node: ast.AST, qual: str, message: str) -> Diagnostic:
        return Diagnostic(
            path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
            severity=Severity.WARNING,
            symbol=qual,
        )
