"""``hot-loop-alloc`` — no allocation churn on statically-hot paths.

CPython makes every list/dict/set display, comprehension, f-string and
``isinstance``/``getattr`` call a heap allocation or a dynamic lookup;
inside the simulator's per-cycle loops those costs multiply by millions
of iterations.  This pass combines the loop-depth-weighted cost model
(:mod:`repro.analysis.perfmodel.costmodel`) with a syntactic scan: a
construct is flagged when its *static rank* — the enclosing function's
call score times ``LOOP_WEIGHT`` per local loop level — reaches
:data:`~repro.analysis.perfmodel.costmodel.HOT_RANK_THRESHOLD`
(two weighted loop levels, e.g. a loop body inside a function called
once per simulated cycle).

Code that is not reachable from the cycle loop or a benchmark factory
has call score 0 and is never flagged, so tests, reporting and offline
analysis stay free to allocate.  A deliberate hot-path allocation
(e.g. building the per-cycle issue list that the algorithm itself
requires) takes an inline ``# lint: disable=hot-loop-alloc`` with a
reason comment, keeping each exception visible at the allocation site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import ProjectContext
from repro.analysis.perfmodel.costmodel import (
    HOT_RANK_THRESHOLD,
    CostModel,
)
from repro.analysis.registry import ProjectChecker, register

#: Builtin calls that allocate a fresh container per evaluation.
_ALLOC_BUILTINS = frozenset({"list", "dict", "set", "tuple", "sorted", "frozenset"})

#: Dynamic type-dispatch builtins (a dict lookup + MRO walk per call).
_DISPATCH_BUILTINS = frozenset({"isinstance", "getattr", "hasattr"})


def _label_for(node: ast.AST) -> str | None:
    """Human label of a churn construct, or None if the node is benign."""
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    if isinstance(node, ast.GeneratorExp):
        return "generator expression"
    if isinstance(node, ast.List):
        return "list display"
    if isinstance(node, ast.Set):
        return "set display"
    if isinstance(node, ast.Dict):
        return "dict display"
    if isinstance(node, ast.JoinedStr):
        return "f-string formatting"
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name):
            if fn.id in _ALLOC_BUILTINS:
                return f"{fn.id}() construction"
            if fn.id in _DISPATCH_BUILTINS:
                return f"{fn.id}() dispatch"
        if isinstance(fn, ast.Attribute) and fn.attr == "format":
            return "str.format() formatting"
    return None


def _iter_loop_constructs(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.AST, int, str]]:
    """Every churn construct in ``func`` at local loop depth >= 1,
    yielded as ``(node, depth, label)`` in source order."""

    def walk(node: ast.AST, depth: int) -> Iterator[tuple[ast.AST, int, str]]:
        if depth >= 1:
            label = _label_for(node)
            if label is not None:
                yield node, depth, label
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from walk(node.iter, depth)
            for child in node.body:
                yield from walk(child, depth + 1)
            for child in node.orelse:
                yield from walk(child, depth)
            return
        if isinstance(node, ast.While):
            yield from walk(node.test, depth + 1)
            for child in node.body:
                yield from walk(child, depth + 1)
            for child in node.orelse:
                yield from walk(child, depth)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                yield from walk(child, depth)
            return
        if isinstance(node, ast.ClassDef):
            return
        for child in ast.iter_child_nodes(node):
            yield from walk(child, depth)

    for stmt in func.body:
        yield from walk(stmt, 0)


@register
class HotLoopAllocChecker(ProjectChecker):
    rule = "hot-loop-alloc"
    description = "no allocation/dispatch churn inside statically-hot loops"

    #: Statement rank gate; overridable for tests.
    threshold: float = HOT_RANK_THRESHOLD

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        model = CostModel(project)
        if not model.entry_points:
            return
        graph = project.call_graph
        for qual in sorted(graph.functions):
            score = model.score_of(qual)
            if score <= 0.0:
                continue
            node = graph.functions[qual]
            mod = project.modules_by_name.get(node.module)
            if mod is None:
                continue
            for construct, depth, label in _iter_loop_constructs(node.node):
                rank = score * model.loop_weight**depth
                if rank < self.threshold:
                    continue
                yield Diagnostic(
                    path=mod.path,
                    line=getattr(construct, "lineno", node.node.lineno),
                    col=getattr(construct, "col_offset", 0),
                    rule=self.rule,
                    message=(
                        f"{label} inside a hot loop of {qual} (static rank "
                        f"{rank:.0f} >= {self.threshold:.0f}: reachable from "
                        "the cycle loop / perf suite); hoist it out of the "
                        "loop or suppress with a reason"
                    ),
                    severity=Severity.WARNING,
                    symbol=f"{qual}:{label}",
                )
