"""Vectorizability / purity classifier for pipeline-stage functions.

The planned numpy backend (ROADMAP item 1) replaces per-instruction
Python loops with struct-of-arrays kernels.  A stage function is a
candidate only when its loop body is *mechanically liftable*: every
iteration independent, no writes through aliases, no control flow that
depends on per-entry state mid-loop.  This classifier inspects each
statically-hot function (see :mod:`repro.analysis.perfmodel.costmodel`)
and reports the blockers that would make a 1:1 array translation
unsound:

``aliasing-write``
    subscript store through a parameter or attribute base
    (``entries[i].x = ...`` style writes through shared references);
``shared-state-write``
    attribute store (``self.count += 1``) — the loop threads state
    through the object instead of producing values;
``data-dependent-branch``
    ``if``/``while``/``break``/``continue`` inside a loop whose
    condition reads loop-carried names — the classic mask-vs-branch
    conversion cost;
``dynamic-dispatch``
    ``isinstance``/``getattr``/``hasattr`` inside a loop — per-entry
    type dispatch has no array equivalent.

This is a *report*, not a lint rule: blockers are facts about the
current design, not defects.  ``repro lint hotpaths`` prints the
classification next to the cost ranking as the worklist for the
backend port.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.flow.cfg import bound_names
from repro.analysis.flow.project import ProjectContext
from repro.analysis.perfmodel.costmodel import CostModel

_DISPATCH_BUILTINS = frozenset({"isinstance", "getattr", "hasattr"})


@dataclass(frozen=True)
class Blocker:
    """One reason a function resists struct-of-arrays translation."""

    kind: str
    line: int
    detail: str

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "line": self.line, "detail": self.detail}


@dataclass(frozen=True)
class VectorizabilityReport:
    """Classification of one function."""

    qualname: str
    blockers: tuple[Blocker, ...]

    @property
    def vectorizable(self) -> bool:
        return not self.blockers

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "vectorizable": self.vectorizable,
            "blockers": [b.to_dict() for b in self.blockers],
        }


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = func.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _subscript_base(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _reads(node: ast.AST) -> set[str]:
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def classify_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
) -> VectorizabilityReport:
    """Classify one function body (see module docs for blocker kinds)."""
    params = _param_names(func)
    blockers: list[Blocker] = []

    def visit(node: ast.AST, loop_depth: int, carried: set[str]) -> None:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for tgt in targets:
                if isinstance(tgt, ast.Attribute):
                    blockers.append(
                        Blocker(
                            "shared-state-write",
                            node.lineno,
                            f"stores attribute {ast.unparse(tgt)}",
                        )
                    )
                elif isinstance(tgt, ast.Subscript):
                    base = _subscript_base(tgt)
                    if isinstance(base, ast.Attribute) or (
                        isinstance(base, ast.Name) and base.id in params
                    ):
                        blockers.append(
                            Blocker(
                                "aliasing-write",
                                node.lineno,
                                f"writes through {ast.unparse(base)}[...]",
                            )
                        )
        if loop_depth > 0:
            if isinstance(node, (ast.If, ast.While)):
                test_reads = _reads(node.test)
                if test_reads & carried:
                    blockers.append(
                        Blocker(
                            "data-dependent-branch",
                            node.lineno,
                            "branch on loop-carried "
                            + ", ".join(sorted(test_reads & carried)),
                        )
                    )
            if isinstance(node, (ast.Break, ast.Continue)):
                blockers.append(
                    Blocker(
                        "data-dependent-branch",
                        node.lineno,
                        "early exit from the loop body",
                    )
                )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _DISPATCH_BUILTINS
            ):
                blockers.append(
                    Blocker(
                        "dynamic-dispatch",
                        node.lineno,
                        f"{node.func.id}() per loop entry",
                    )
                )
        if isinstance(node, (ast.For, ast.AsyncFor)):
            inner = carried | bound_names(node.target)
            visit(node.iter, loop_depth, carried)
            for child in node.body + node.orelse:
                visit(child, loop_depth + 1, inner)
            return
        if isinstance(node, ast.While):
            for child in node.body + node.orelse:
                visit(child, loop_depth + 1, carried)
            return
        if isinstance(node, ast.ClassDef):
            return
        for child in ast.iter_child_nodes(node):
            visit(child, loop_depth, carried)

    for stmt in func.body:
        visit(stmt, 0, set())
    ordered = tuple(sorted(set(blockers), key=lambda b: (b.line, b.kind, b.detail)))
    return VectorizabilityReport(qualname=qualname, blockers=ordered)


def classify_hot_functions(
    project: ProjectContext, model: CostModel | None = None, top: int = 10
) -> list[VectorizabilityReport]:
    """Reports for the top-ranked hot functions, in ranking order."""
    if model is None:
        model = CostModel(project)
    graph = project.call_graph
    reports: list[VectorizabilityReport] = []
    for cost in model.ranking(top):
        node = graph.functions.get(cost.qualname)
        if node is None:
            continue
        reports.append(classify_function(node.node, cost.qualname))
    return reports
