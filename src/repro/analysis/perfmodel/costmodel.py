"""Loop-depth-weighted static cost model over the project call graph.

The fast-backend work (ROADMAP item 1) needs to know *statically* which
functions dominate per-cycle cost, before any profiler runs.  This
module assigns every statement a nesting-weighted cost — a statement
``d`` loops deep costs ``LOOP_WEIGHT ** d`` — and propagates call
frequency from the simulator's entry points through the call graph:

* **local cost** of a function is the weighted statement count of its
  own body (nested ``def`` bodies are attributed to the enclosing
  function: benchmark factories build closures whose loops are the
  actual hot path);
* **call score** is the loop-weighted number of times the function is
  reached per entry-point invocation — a callee invoked from inside a
  caller's loop inherits the caller's score times ``LOOP_WEIGHT``;
* **total cost** (``score * local``) ranks where the interpreter
  actually spends statements; **inclusive cost** folds callee costs in
  and is the quantity cross-validated against measured span durations
  (``repro lint hotpaths --validate-spans``).

Entry points default to the pipeline cycle loop (``SMTPipeline.run``)
and every ``_make_*`` benchmark factory in a ``bench.py`` module — the
same roots the measured perf suite exercises.  Recursion (call-graph
cycles) is handled by collapsing strongly connected components: every
member of a cycle shares the score flowing into the component, so a
recursive helper never amplifies its own cost to infinity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.analysis.flow.callgraph import FunctionNode
from repro.analysis.flow.project import ProjectContext
from repro.analysis.flow.symbols import ClassInfo, ModuleInfo

#: Assumed iterations per loop level.  Deliberately coarse: the model
#: ranks, it does not predict; 8 keeps three nesting levels (8^3 = 512)
#: clearly separated from straight-line code without overflowing the
#: ranking with one deep loop.  Documented in docs/static_analysis.md —
#: change both together.
LOOP_WEIGHT = 8.0

#: Statement rank at or above which the hot-loop checker treats an
#: allocation as "on the hot path": two weighted loop levels deep
#: (e.g. a loop body inside a function called once per simulated cycle).
HOT_RANK_THRESHOLD = LOOP_WEIGHT * LOOP_WEIGHT


@dataclass(frozen=True)
class FunctionCost:
    """Cost-model facts for one call-graph function."""

    qualname: str
    local_cost: float
    call_score: float
    total_cost: float
    inclusive_cost: float

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "local_cost": self.local_cost,
            "call_score": self.call_score,
            "total_cost": self.total_cost,
            "inclusive_cost": self.inclusive_cost,
        }


@dataclass(frozen=True)
class _LocalFacts:
    """Weighted statement cost and per-callee call weights of one body."""

    cost: float
    #: callee qualname -> summed loop weight of its call sites.
    call_weights: dict[str, float]
    #: every resolved/unresolved call with its loop depth (for checkers).
    call_depths: tuple[tuple[int, int], ...]  # (id-order index, depth)


def is_default_entry_point(node: FunctionNode) -> bool:
    """The roots the measured perf suite exercises (see module docs)."""
    if node.cls == "SMTPipeline" and node.name == "run":
        return True
    return (
        node.cls is None
        and node.name.startswith("_make_")
        and node.module.rsplit(".", 1)[-1] == "bench"
    )


def default_entry_points(project: ProjectContext) -> list[str]:
    """Entry-point qualnames present in this project, sorted."""
    graph = project.call_graph
    return sorted(
        qual for qual in graph.functions if is_default_entry_point(graph.functions[qual])
    )


def _scan(node: ast.AST, depth: int, weight: float, acc: list) -> None:
    """Recursive weighted walk: ``acc`` is ``[cost, calls]`` where
    ``calls`` collects ``(ast.Call, depth)``."""
    if isinstance(node, ast.stmt):
        acc[0] += weight**depth
    if isinstance(node, ast.Call):
        acc[1].append((node, depth))
    if isinstance(node, (ast.For, ast.AsyncFor)):
        _scan(node.target, depth, weight, acc)
        _scan(node.iter, depth, weight, acc)
        for child in node.body:
            _scan(child, depth + 1, weight, acc)
        for child in node.orelse:
            _scan(child, depth, weight, acc)
        return
    if isinstance(node, ast.While):
        _scan(node.test, depth + 1, weight, acc)
        for child in node.body:
            _scan(child, depth + 1, weight, acc)
        for child in node.orelse:
            _scan(child, depth, weight, acc)
        return
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
        # The element expression runs once per produced item.
        inner = depth + 1
        for gen in node.generators:
            _scan(gen.iter, depth, weight, acc)
            for cond in gen.ifs:
                _scan(cond, inner, weight, acc)
        if isinstance(node, ast.DictComp):
            _scan(node.key, inner, weight, acc)
            _scan(node.value, inner, weight, acc)
        else:
            _scan(node.elt, inner, weight, acc)
        return
    if isinstance(node, ast.ClassDef):
        return  # nested class bodies execute once at definition; ignore
    for child in ast.iter_child_nodes(node):
        _scan(child, depth, weight, acc)


def scan_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef, weight: float = LOOP_WEIGHT
) -> tuple[float, list[tuple[ast.Call, int]]]:
    """Weighted statement cost of ``func`` plus every call with its
    loop depth.  Nested ``def`` bodies are attributed to ``func``."""
    acc: list = [0.0, []]
    for stmt in func.body:
        _scan(stmt, 0, weight, acc)
    return acc[0], acc[1]


class CostModel:
    """Static cost ranking of every function in a :class:`ProjectContext`."""

    def __init__(
        self,
        project: ProjectContext,
        entry_points: Iterable[str] | None = None,
        *,
        loop_weight: float = LOOP_WEIGHT,
    ):
        self.project = project
        self.loop_weight = loop_weight
        self.entry_points = (
            sorted(entry_points)
            if entry_points is not None
            else default_entry_points(project)
        )
        self._locals: dict[str, _LocalFacts] = {}
        self._costs: dict[str, FunctionCost] | None = None

    # -- local facts ---------------------------------------------------
    def _owner(self, node: FunctionNode) -> tuple[ModuleInfo | None, ClassInfo | None]:
        mod = self.project.modules_by_name.get(node.module)
        cls = mod.classes.get(node.cls) if (mod is not None and node.cls) else None
        return mod, cls

    def local_facts(self, qual: str) -> _LocalFacts:
        cached = self._locals.get(qual)
        if cached is not None:
            return cached
        graph = self.project.call_graph
        node = graph.functions[qual]
        mod, cls = self._owner(node)
        cost, calls = scan_function(node.node, self.loop_weight)
        weights: dict[str, float] = {}
        depths: list[tuple[int, int]] = []
        for index, (call, depth) in enumerate(calls):
            depths.append((index, depth))
            if mod is None:
                continue
            callee = graph._resolve_call(mod, cls, call.func)
            if callee is not None and callee != qual:
                weights[callee] = weights.get(callee, 0.0) + self.loop_weight**depth
        facts = _LocalFacts(cost=cost, call_weights=weights, call_depths=tuple(depths))
        self._locals[qual] = facts
        return facts

    # -- strongly connected components ---------------------------------
    def _sccs(self, quals: list[str]) -> list[list[str]]:
        """Tarjan's SCCs, iterative, in reverse topological order
        (every SCC appears before any SCC that calls into it... inverted:
        callees first)."""
        index_of: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def edges(q: str) -> list[str]:
            return sorted(w for w in self.local_facts(q).call_weights if w in node_set)

        node_set = set(quals)
        for root in quals:
            if root in index_of:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                qual, ei = work.pop()
                if ei == 0:
                    index_of[qual] = low[qual] = counter[0]
                    counter[0] += 1
                    stack.append(qual)
                    on_stack.add(qual)
                succ = edges(qual)
                advanced = False
                while ei < len(succ):
                    nxt = succ[ei]
                    ei += 1
                    if nxt not in index_of:
                        work.append((qual, ei))
                        work.append((nxt, 0))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[qual] = min(low[qual], index_of[nxt])
                if advanced:
                    continue
                if low[qual] == index_of[qual]:
                    scc: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == qual:
                            break
                    sccs.append(sorted(scc))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[qual])
        return sccs

    # -- solving -------------------------------------------------------
    def _solve(self) -> dict[str, FunctionCost]:
        graph = self.project.call_graph
        quals = sorted(graph.functions)
        for qual in quals:
            self.local_facts(qual)

        sccs = self._sccs(quals)  # callees before callers
        comp_of: dict[str, int] = {}
        for i, scc in enumerate(sccs):
            for qual in scc:
                comp_of[qual] = i

        # Inclusive cost: process components callees-first; members of a
        # cycle share the component's summed local cost (no self-feeding).
        inclusive: dict[str, float] = {}
        for i, scc in enumerate(sccs):
            members = set(scc)
            base = sum(self._locals[q].cost for q in scc) if len(scc) > 1 else None
            for qual in scc:
                facts = self._locals[qual]
                total = base if base is not None else facts.cost
                for callee, weight in sorted(facts.call_weights.items()):
                    if callee in members:
                        continue
                    total += weight * inclusive[callee]
                inclusive[qual] = total

        # Call score: entry points seed 1.0; propagate callers-first
        # (reverse component order), intra-component edges ignored.
        comp_score = [0.0] * len(sccs)
        for qual in self.entry_points:
            if qual in comp_of:
                comp_score[comp_of[qual]] += 1.0
        for i in range(len(sccs) - 1, -1, -1):
            score = comp_score[i]
            if score <= 0.0:
                continue
            for qual in sccs[i]:
                for callee, weight in sorted(self._locals[qual].call_weights.items()):
                    j = comp_of[callee]
                    if j != i:
                        comp_score[j] += score * weight

        costs: dict[str, FunctionCost] = {}
        for qual in quals:
            local = self._locals[qual].cost
            score = comp_score[comp_of[qual]]
            costs[qual] = FunctionCost(
                qualname=qual,
                local_cost=local,
                call_score=score,
                total_cost=score * local,
                inclusive_cost=inclusive[qual],
            )
        return costs

    # -- queries -------------------------------------------------------
    @property
    def costs(self) -> Mapping[str, FunctionCost]:
        if self._costs is None:
            self._costs = self._solve()
        return self._costs

    def cost_of(self, qual: str) -> FunctionCost | None:
        return self.costs.get(qual)

    def score_of(self, qual: str) -> float:
        cost = self.costs.get(qual)
        return cost.call_score if cost is not None else 0.0

    def ranking(self, top: int | None = None) -> list[FunctionCost]:
        """Reached functions by descending total cost (stable tiebreak)."""
        ranked = sorted(
            (c for c in self.costs.values() if c.call_score > 0.0),
            key=lambda c: (-c.total_cost, c.qualname),
        )
        return ranked if top is None else ranked[:top]

    def hot_functions(self, min_score: float = 1.0) -> list[str]:
        return [q for q, c in sorted(self.costs.items()) if c.call_score >= min_score]
