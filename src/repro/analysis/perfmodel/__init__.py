"""Static performance/concurrency tier over the project analysis layer.

Four pieces, all riding the shared :class:`ProjectContext`:

* :mod:`~repro.analysis.perfmodel.costmodel` — loop-depth-weighted
  static cost model from the simulator entry points;
* :mod:`~repro.analysis.perfmodel.hotloop` — the ``hot-loop-alloc``
  lint pass (allocation/dispatch churn on statically-hot paths);
* :mod:`~repro.analysis.perfmodel.forksafety` — the ``pickle-safety``
  and ``fork-safety`` passes for code crossing the process pool;
* :mod:`~repro.analysis.perfmodel.vectorize` /
  :mod:`~repro.analysis.perfmodel.spanvalidate` — the report side:
  struct-of-arrays readiness and cross-validation of the static
  ranking against measured ``repro perf`` spans
  (``repro lint hotpaths``).
"""

from repro.analysis.perfmodel.costmodel import (
    HOT_RANK_THRESHOLD,
    LOOP_WEIGHT,
    CostModel,
    FunctionCost,
    default_entry_points,
    scan_function,
)
from repro.analysis.perfmodel.forksafety import (
    ForkSafetyChecker,
    PickleSafetyChecker,
    iter_pool_sites,
    worker_reachable,
)
from repro.analysis.perfmodel.hotloop import HotLoopAllocChecker
from repro.analysis.perfmodel.spanvalidate import (
    SPAN_FUNCTION_MAP,
    ValidationReport,
    measured_durations,
    spearman,
    validate_against_trace,
)
from repro.analysis.perfmodel.vectorize import (
    VectorizabilityReport,
    classify_function,
    classify_hot_functions,
)

__all__ = [
    "HOT_RANK_THRESHOLD",
    "LOOP_WEIGHT",
    "CostModel",
    "FunctionCost",
    "default_entry_points",
    "scan_function",
    "ForkSafetyChecker",
    "PickleSafetyChecker",
    "iter_pool_sites",
    "worker_reachable",
    "HotLoopAllocChecker",
    "SPAN_FUNCTION_MAP",
    "ValidationReport",
    "measured_durations",
    "spearman",
    "validate_against_trace",
    "VectorizabilityReport",
    "classify_function",
    "classify_hot_functions",
]
