"""Diagnostic records produced by checkers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity; the CLI exit code reflects the worst one
    at or above the ``--fail-on`` threshold (default ``warning``, so
    notes are informational)."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


def parse_severity(name: str) -> Severity:
    """``"note"``/``"warning"``/``"error"`` -> :class:`Severity`."""
    try:
        return Severity[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown severity {name!r}; expected one of "
            f"{[str(s) for s in Severity]}"
        ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a source location.

    ``rule`` is the registered checker name (the token used in
    ``# lint: disable=<rule>``); ``symbol`` optionally names the
    offending entity (class, attribute, field) for machine consumers.

    ``line``/``col`` follow the AST convention (1-based line, 0-based
    column); reporters convert to their target convention.  The
    optional ``end_line``/``end_col`` bound the region when the checker
    knows it (``end_col`` exclusive, matching ``ast.end_col_offset``);
    zero means "unset" and reporters fall back to a point region.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR
    symbol: str = field(default="")
    end_line: int = 0
    end_col: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.severity} [{self.rule}] {self.message}"

    def to_json(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "symbol": self.symbol,
        }
        if self.end_line:
            payload["end_line"] = self.end_line
            payload["end_col"] = self.end_col
        return payload


def sort_key(diag: Diagnostic) -> tuple[str, int, int, str]:
    return (diag.path, diag.line, diag.col, diag.rule)
