"""``dimension-mismatch`` — cycle / bit / bit-cycle unit discipline.

AVF = ACE bit-cycles / (bits × cycles); the quantities all live in
plain ints and floats, so nothing stops a cycle count from being added
to a bit-cycle accumulator or an AVF from skipping its ``bits ×
cycles`` normalization.  This rule seeds dimensions from the
repository's naming conventions (``*_cycles``, ``*_bits``,
``*_bit_cycles``, ``*avf*``/``*fraction*``), propagates them through
local assignments and arithmetic
(:mod:`repro.analysis.effects.dimensions`), and flags mixed-dimension
``+``/``-`` and known-dimension assignments/keywords that contradict
the target's name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.effects.dimensions import check_function
from repro.analysis.registry import BaseChecker, register


@register
class DimensionChecker(BaseChecker):
    """Flag arithmetic that mixes cycles, bits and bit-cycles."""

    rule = "dimension-mismatch"
    description = (
        "arithmetic mixes cycle/bit/bit-cycle dimensions or drops the "
        "bits*cycles AVF normalization"
    )

    def check(self, ctx) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for finding in check_function(node):
                yield Diagnostic(
                    path=ctx.path,
                    line=finding.line,
                    col=finding.col,
                    rule=self.rule,
                    message=finding.message,
                    severity=Severity.ERROR,
                    symbol=node.name,
                    end_line=finding.end_line,
                    end_col=finding.end_col,
                )
