"""``counter-balance`` — paired updates of registered running counters.

The IQ/ROB occupancy counters (``pred_ace_bits``, ``ready_pred_ace``,
``per_thread``, ``rob_pred_ace_bits``) are running sums maintained
incrementally on the hot path; the online AVF estimate is read straight
from them, so an increment without the matching decrement on the
squash/remove path silently inflates reliability numbers forever.

For every class that increments a registered counter attribute on
``self`` the rule requires a decrement of the same counter somewhere in
the class, and at least one of those decrements must live in a method
whose name indicates a deallocation path (``squash``, ``remove``,
``commit``, ``flush``, ``pop``, ``retire``, ``drain``, ``dealloc``,
``clear``, ``reset``, ``writeback``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import FileContext
from repro.analysis.registry import BaseChecker, register

#: Counter attributes whose updates must balance.
REGISTERED_COUNTERS = frozenset(
    {"pred_ace_bits", "ready_pred_ace", "per_thread", "rob_pred_ace_bits"}
)

#: Method-name substrings that mark a deallocation/unwind path.
_BALANCE_PATH_HINTS = (
    "squash",
    "remove",
    "commit",
    "flush",
    "pop",
    "retire",
    "drain",
    "dealloc",
    "clear",
    "reset",
    "writeback",
)


def _counter_of_target(target: ast.expr) -> str | None:
    """Name of the registered counter a ``self.X [...]`` target updates."""
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in REGISTERED_COUNTERS
    ):
        return node.attr
    return None


@register
class CounterBalanceChecker(BaseChecker):
    rule = "counter-balance"
    description = "registered counters must be decremented on squash/remove paths"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Diagnostic]:
        # counter -> (first increment node, methods that decrement it)
        inc_site: dict[str, ast.AST] = {}
        dec_methods: dict[str, set[str]] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.AugAssign):
                    continue
                counter = _counter_of_target(stmt.target)
                if counter is None:
                    continue
                if isinstance(stmt.op, ast.Add):
                    inc_site.setdefault(counter, stmt)
                elif isinstance(stmt.op, ast.Sub):
                    dec_methods.setdefault(counter, set()).add(method.name)
        for counter, site in sorted(inc_site.items()):
            decs = dec_methods.get(counter, set())
            if not decs:
                yield self._diag(
                    ctx,
                    site,
                    cls,
                    counter,
                    f"class {cls.name} increments counter {counter!r} but never "
                    "decrements it; squashed/removed entries will leak into the "
                    "running sum",
                )
            elif not any(
                hint in name.lower() for name in decs for hint in _BALANCE_PATH_HINTS
            ):
                yield self._diag(
                    ctx,
                    site,
                    cls,
                    counter,
                    f"class {cls.name} decrements counter {counter!r} only in "
                    f"{sorted(decs)}; no decrement on a squash/remove path "
                    f"(expected a method named like one of {_BALANCE_PATH_HINTS})",
                )

    def _diag(
        self, ctx: FileContext, node: ast.AST, cls: ast.ClassDef, counter: str, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", cls.lineno),
            col=getattr(node, "col_offset", cls.col_offset),
            rule=self.rule,
            message=message,
            severity=Severity.ERROR,
            symbol=f"{cls.name}.{counter}",
        )
