"""``determinism`` — seeded-RNG-only nondeterminism.

The simulator's replayability rests on all pseudo-random decisions
flowing through explicitly seeded generators (``np.random.default_rng``
with a ``SeedSequence``, ``random.Random(seed)``, or the pure
``mix64``/``u01`` mixers).  This rule flags the three ways that
invariant silently erodes:

* calls through the *module-level* ``random`` / ``numpy.random`` API,
  which share hidden global state (``random.random()``,
  ``np.random.shuffle(...)``, …);
* wall-clock reads (``time.time``, ``time.perf_counter``,
  ``datetime.now``, …) — a result that depends on when it ran is not a
  result;
* iteration over a ``set``/``frozenset`` expression whose order can
  escape into results (``list(set(...))``, comprehensions, ``for``
  loops) — set order varies with insertion history and the per-process
  hash seed.  Wrap in ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import FileContext
from repro.analysis.registry import BaseChecker, register

#: random-module attributes that construct independent, seedable
#: generators (allowed); everything else touches global RNG state.
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

#: numpy.random attributes that construct seeded generators.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

_TIME_BANNED = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

_DATETIME_BANNED = frozenset({"now", "utcnow", "today"})

#: Builtins whose output order mirrors the iterable's order.
_ORDER_ESCAPES = frozenset({"list", "tuple", "enumerate", "iter", "next"})


def _is_set_expr(node: ast.expr) -> bool:
    """Literal set/set-comprehension or a ``set()``/``frozenset()`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class DeterminismChecker(BaseChecker):
    rule = "determinism"
    description = "all nondeterminism must flow through seeded RNGs"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        aliases = _ImportAliases()
        aliases.visit(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, aliases, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if _is_set_expr(iterable):
                    yield self._diag(
                        ctx,
                        iterable,
                        "iteration order of a set expression can escape into "
                        "results; iterate sorted(...) instead",
                    )

    # ------------------------------------------------------------------
    def _check_call(
        self, ctx: FileContext, aliases: "_ImportAliases", node: ast.Call
    ) -> Iterator[Diagnostic]:
        func = node.func
        # Order-sensitive builtin over a raw set expression.
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_ESCAPES
            and node.args
            and _is_set_expr(node.args[0])
        ):
            yield self._diag(
                ctx,
                node,
                f"{func.id}() over a set expression leaks nondeterministic "
                "ordering; use sorted(...)",
            )
            return
        if not isinstance(func, ast.Attribute):
            # Bare names imported from banned modules (from random import
            # random; from time import time).
            if isinstance(func, ast.Name):
                origin = aliases.from_imports.get(func.id)
                if origin == "random" and func.id not in _RANDOM_ALLOWED:
                    yield self._diag(
                        ctx,
                        node,
                        f"call to global-state RNG random.{func.id}(); use a "
                        "seeded random.Random / np.random.default_rng instance",
                    )
                elif origin == "time" and func.id in _TIME_BANNED:
                    yield self._diag(ctx, node, f"wall-clock read time.{func.id}()")
            return

        attr = func.attr
        base = func.value
        # random.<fn>(...)
        if isinstance(base, ast.Name) and base.id in aliases.random_modules:
            if attr not in _RANDOM_ALLOWED:
                yield self._diag(
                    ctx,
                    node,
                    f"call to global-state RNG random.{attr}(); use a seeded "
                    "random.Random / np.random.default_rng instance",
                )
            return
        # np.random.<fn>(...) / numpy.random.<fn>(...)
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in aliases.numpy_modules
        ):
            if attr not in _NP_RANDOM_ALLOWED:
                yield self._diag(
                    ctx,
                    node,
                    f"call to global-state RNG numpy.random.{attr}(); use "
                    "np.random.default_rng(seed)",
                )
            return
        # npr.<fn>(...) where npr aliases numpy.random itself.
        if isinstance(base, ast.Name) and base.id in aliases.np_random_modules:
            if attr not in _NP_RANDOM_ALLOWED:
                yield self._diag(
                    ctx,
                    node,
                    f"call to global-state RNG numpy.random.{attr}(); use "
                    "np.random.default_rng(seed)",
                )
            return
        # time.<fn>(...)
        if isinstance(base, ast.Name) and base.id in aliases.time_modules:
            if attr in _TIME_BANNED:
                yield self._diag(ctx, node, f"wall-clock read time.{attr}()")
            return
        # datetime.now() / datetime.datetime.now()
        if attr in _DATETIME_BANNED:
            if isinstance(base, ast.Name) and base.id in aliases.datetime_names:
                yield self._diag(ctx, node, f"wall-clock read datetime.{attr}()")
            elif (
                isinstance(base, ast.Attribute)
                and base.attr in ("datetime", "date")
                and isinstance(base.value, ast.Name)
                and base.value.id in aliases.datetime_modules
            ):
                yield self._diag(ctx, node, f"wall-clock read datetime.{base.attr}.{attr}()")

    def _diag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
            severity=Severity.ERROR,
        )


class _ImportAliases(ast.NodeVisitor):
    """Collect local names bound to the modules this rule polices."""

    def __init__(self) -> None:
        self.random_modules: set[str] = set()
        self.numpy_modules: set[str] = set()
        self.np_random_modules: set[str] = set()
        self.time_modules: set[str] = set()
        self.datetime_modules: set[str] = set()
        self.datetime_names: set[str] = set()  # `from datetime import datetime`
        self.from_imports: dict[str, str] = {}  # local name -> origin module

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_modules.add(local)
            elif alias.name in ("numpy", "np"):
                self.numpy_modules.add(alias.asname or "numpy")
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.np_random_modules.add(alias.asname)
                else:
                    self.numpy_modules.add("numpy")
            elif alias.name == "time":
                self.time_modules.add(local)
            elif alias.name == "datetime":
                self.datetime_modules.add(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.np_random_modules.add(alias.asname or "random")
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self.datetime_names.add(alias.asname or "datetime")
                elif alias.name == "date":
                    self.datetime_names.add(alias.asname or "date")
        elif node.module in ("random", "time"):
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = node.module
