"""``stage-purity`` — pipeline stages mutate foreign state via APIs only.

The pipeline's cycle loop calls the stage methods in reverse-pipeline
order; each stage coordinates the structures (IQ, ROB, LSQ, rename,
caches) strictly through their public methods.  A stage that pokes
another structure's ``_``-private state directly (``self.iq._consumers
= ...``, ``inst._state.pop()``) bypasses that structure's invariant
maintenance — exactly the class of refactor bug the counter-balance
rule exists to catch after the fact; this rule catches it at the source.

Only files named ``pipeline.py`` are scanned.  Mutating ``self._x`` is
fine (own private state); mutating ``anything_else._x`` — by
assignment, augmented assignment, ``del``, or calling a known mutator
method (``pop``, ``append``, ``clear``, …) on it — is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import FileContext
from repro.analysis.registry import BaseChecker, register

#: Container methods that mutate their receiver.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _foreign_private_attr(node: ast.expr) -> ast.Attribute | None:
    """Innermost ``X._priv`` attribute where ``X`` is not bare ``self``.

    Walks through subscripts (``x._y[i]``) and nested attributes.
    """
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        if isinstance(current, ast.Attribute):
            name = current.attr
            if name.startswith("_") and not _is_dunder(name):
                base = current.value
                if not (isinstance(base, ast.Name) and base.id == "self"):
                    return current
            current = current.value
        else:
            current = current.value
    return None


@register
class StagePurityChecker(BaseChecker):
    rule = "stage-purity"
    description = "pipeline stages must not mutate foreign _-private state"
    default_paths = frozenset({"pipeline.py"})

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Diagnostic]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                    targets = [stmt.target]
                elif isinstance(stmt, ast.Delete):
                    targets = stmt.targets
                for tgt in targets:
                    hit = _foreign_private_attr(tgt)
                    if hit is not None:
                        yield self._diag(ctx, hit, cls, method.name, "writes")
                # Mutator-method call on a foreign private attribute:
                # self.iq._consumers.pop(tag), other._waiting.clear(), ...
                if (
                    isinstance(stmt, ast.Call)
                    and isinstance(stmt.func, ast.Attribute)
                    and stmt.func.attr in _MUTATOR_METHODS
                ):
                    hit = _foreign_private_attr(stmt.func.value)
                    if hit is not None:
                        yield self._diag(ctx, hit, cls, method.name, "mutates")

    def _diag(
        self, ctx: FileContext, node: ast.Attribute, cls: ast.ClassDef, method: str, verb: str
    ) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule=self.rule,
            message=(
                f"{cls.name}.{method} {verb} private state {node.attr!r} of "
                "another object directly; go through that structure's public API"
            ),
            severity=Severity.ERROR,
            symbol=f"{cls.name}.{method}",
        )
