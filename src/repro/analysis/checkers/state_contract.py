"""``state-contract-drift`` / ``escaped-state-write`` — the backend
contract as a lint gate.

The committed ``backend-contract.json`` (written by ``repro lint
contract --write-contract``) is the reviewed statement of what each
pipeline stage reads and writes.  The drift pass re-extracts the
contract from the current tree and flags any divergence at the
pipeline class — a new cross-stage read, a lost write, a flipped SoA
verdict — so state-shape changes are acknowledged by regenerating the
contract, the same accept-the-new-baseline motion as ``--baseline``.

The escape pass flags direct writes *through* a held structure
reference (``self.iq.pred_ace_bits = ...`` from pipeline code) in the
run-loop closure: state the structure's own methods should own.
Writes like that break the encapsulation every SoA/backend port relies
on, so they warrant an explicit suppression when intentional.

Both passes are silent on projects with no discoverable pipeline — the
contract is a property of the simulator tree, not of arbitrary code.
"""

from __future__ import annotations

import json
import os
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.effects.analyze import (
    PipelineContract,
    external_state_writes,
)
from repro.analysis.effects.contract import (
    CONTRACT_FILENAME,
    build_contract,
    diff_contracts,
    summarize_drift,
)
from repro.analysis.flow.project import ProjectContext
from repro.analysis.registry import ProjectChecker, register


def _extract(project: ProjectContext) -> PipelineContract | None:
    try:
        return PipelineContract(project)
    except LookupError:
        return None


def _pipeline_anchor(project: ProjectContext, contract: PipelineContract) -> tuple[str, int]:
    """(path, line) of the pipeline class statement."""
    resolved = project.call_graph.resolve_class(contract.pipeline)
    if resolved is None:  # pragma: no cover - discovery implies resolution
        return next(iter(project.modules)), 1
    mod, cls = resolved
    return mod.path, cls.node.lineno


@register
class StateContractDriftChecker(ProjectChecker):
    """Extracted backend contract must match the committed one."""

    rule = "state-contract-drift"
    description = (
        "per-stage state read/write sets drifted from the committed "
        "backend-contract.json; regenerate with "
        "`repro lint contract --write-contract` after review"
    )
    fingerprint_files = (CONTRACT_FILENAME,)

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        contract = _extract(project)
        if contract is None:
            return
        committed_path = self._find_committed(project)
        if committed_path is None:
            return  # no contract committed yet: nothing to hold against
        try:
            with open(committed_path, encoding="utf-8") as fh:
                committed = json.load(fh)
        except (OSError, json.JSONDecodeError):
            path, line = _pipeline_anchor(project, contract)
            yield Diagnostic(
                path=path,
                line=line,
                col=0,
                rule=self.rule,
                message=f"committed contract {committed_path} is unreadable; "
                "regenerate it with `repro lint contract --write-contract`",
                severity=Severity.ERROR,
                symbol=contract.pipeline,
            )
            return
        diffs = diff_contracts(committed, build_contract(contract))
        if not diffs:
            return
        path, line = _pipeline_anchor(project, contract)
        yield Diagnostic(
            path=path,
            line=line,
            col=0,
            rule=self.rule,
            message=(
                f"backend contract drifted from {committed_path} "
                f"({len(diffs)} leaves): {summarize_drift(diffs)}; review and "
                "regenerate with `repro lint contract --write-contract`"
            ),
            severity=Severity.ERROR,
            symbol=contract.pipeline,
        )

    @staticmethod
    def _find_committed(project: ProjectContext) -> str | None:
        """The committed contract: beside the working directory, else a
        walk up from the pipeline module (covers engines invoked from a
        subdirectory of the repo)."""
        if os.path.exists(CONTRACT_FILENAME):
            return CONTRACT_FILENAME
        anchor = next(iter(project.modules), None)
        current = os.path.dirname(os.path.abspath(anchor)) if anchor else None
        for _ in range(6):
            if not current:
                break
            candidate = os.path.join(current, CONTRACT_FILENAME)
            if os.path.exists(candidate):
                return candidate
            parent = os.path.dirname(current)
            if parent == current:
                break
            current = parent
        return None


@register
class EscapedStateWriteChecker(ProjectChecker):
    """No reaching into a structure's state from outside its class."""

    rule = "escaped-state-write"
    description = (
        "run-loop code writes into IQ/ROB/LSQ/rename/FU internals "
        "through a held reference instead of a method of the structure"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        contract = _extract(project)
        if contract is None:
            return
        analysis = contract.analysis
        reachable = analysis.reachable_from(contract.entry)
        seen: set[tuple[str, str, int]] = set()
        for verdict in contract.structures.values():
            for qual, path, loc in external_state_writes(
                analysis, reachable, verdict.class_qualname
            ):
                key = (qual, path, loc.line)
                if key in seen:
                    continue
                seen.add(key)
                node = analysis.graph.functions.get(qual)
                mod = project.modules_by_name.get(node.module) if node else None
                if node is None or mod is None:  # pragma: no cover
                    continue
                yield Diagnostic(
                    path=mod.path,
                    line=loc.line,
                    col=loc.col,
                    rule=self.rule,
                    message=(
                        f"{qual} writes {path} — state owned by "
                        f"{verdict.class_qualname}; move the mutation into a "
                        "method of the structure"
                    ),
                    severity=Severity.WARNING,
                    symbol=qual,
                    end_line=loc.end_line,
                    end_col=loc.end_col,
                )
