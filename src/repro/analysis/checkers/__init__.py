"""Built-in simulator-aware checkers.

Importing this package registers every built-in rule; the registry does
this lazily so ``import repro.analysis`` stays cheap.  The first six
are per-file (AST-only) rules; the last four are project-wide dataflow
passes built on :mod:`repro.analysis.flow`.
"""

from repro.analysis.checkers.config_bounds import ConfigBoundsChecker
from repro.analysis.checkers.counter_balance import CounterBalanceChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.emit_coverage import EmitCoverageChecker
from repro.analysis.checkers.event_schema import EventSchemaChecker
from repro.analysis.checkers.hidden_state import HiddenStateChecker
from repro.analysis.checkers.nondet_iteration import NondetIterationChecker
from repro.analysis.checkers.paper_fidelity import PaperFidelityChecker
from repro.analysis.checkers.slots import SlotsCompletenessChecker
from repro.analysis.checkers.stage_purity import StagePurityChecker

__all__ = [
    "ConfigBoundsChecker",
    "CounterBalanceChecker",
    "DeterminismChecker",
    "EmitCoverageChecker",
    "EventSchemaChecker",
    "HiddenStateChecker",
    "NondetIterationChecker",
    "PaperFidelityChecker",
    "SlotsCompletenessChecker",
    "StagePurityChecker",
]
