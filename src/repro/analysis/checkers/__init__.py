"""Built-in simulator-aware checkers.

Importing this package registers every built-in rule; the registry does
this lazily so ``import repro.analysis`` stays cheap.
"""

from repro.analysis.checkers.config_bounds import ConfigBoundsChecker
from repro.analysis.checkers.counter_balance import CounterBalanceChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.event_schema import EventSchemaChecker
from repro.analysis.checkers.slots import SlotsCompletenessChecker
from repro.analysis.checkers.stage_purity import StagePurityChecker

__all__ = [
    "ConfigBoundsChecker",
    "CounterBalanceChecker",
    "DeterminismChecker",
    "EventSchemaChecker",
    "SlotsCompletenessChecker",
    "StagePurityChecker",
]
