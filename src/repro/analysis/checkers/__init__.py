"""Built-in simulator-aware checkers.

Importing this package registers every built-in rule; the registry does
this lazily so ``import repro.analysis`` stays cheap.  Per-file
(AST-only) rules come first; the rest are project-wide passes built
on :mod:`repro.analysis.flow` — the dataflow passes, the backend
state-contract pair (``state-contract-drift``,
``escaped-state-write``) from :mod:`repro.analysis.effects`, and the
performance/concurrency tier from :mod:`repro.analysis.perfmodel`
(``hot-loop-alloc``, ``pickle-safety``, ``fork-safety``).
"""

from repro.analysis.checkers.config_bounds import ConfigBoundsChecker
from repro.analysis.checkers.counter_balance import CounterBalanceChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.dimension import DimensionChecker
from repro.analysis.checkers.emit_coverage import EmitCoverageChecker
from repro.analysis.checkers.event_schema import EventSchemaChecker
from repro.analysis.checkers.hidden_state import HiddenStateChecker
from repro.analysis.checkers.nondet_iteration import NondetIterationChecker
from repro.analysis.checkers.paper_fidelity import PaperFidelityChecker
from repro.analysis.checkers.slots import SlotsCompletenessChecker
from repro.analysis.checkers.stage_purity import StagePurityChecker
from repro.analysis.checkers.state_contract import (
    EscapedStateWriteChecker,
    StateContractDriftChecker,
)
from repro.analysis.perfmodel.forksafety import (
    ForkSafetyChecker,
    PickleSafetyChecker,
)
from repro.analysis.perfmodel.hotloop import HotLoopAllocChecker

__all__ = [
    "ConfigBoundsChecker",
    "CounterBalanceChecker",
    "DeterminismChecker",
    "DimensionChecker",
    "EmitCoverageChecker",
    "EscapedStateWriteChecker",
    "StateContractDriftChecker",
    "EventSchemaChecker",
    "HiddenStateChecker",
    "NondetIterationChecker",
    "PaperFidelityChecker",
    "SlotsCompletenessChecker",
    "StagePurityChecker",
    "ForkSafetyChecker",
    "HotLoopAllocChecker",
    "PickleSafetyChecker",
]
