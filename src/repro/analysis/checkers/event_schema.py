"""``event-schema`` — every ``bus.emit(...)`` matches a declared topic.

The telemetry bus validates payload schemas only when a subscriber is
attached (the zero-subscriber fast path returns before looking at the
fields), so a mis-spelled field at a rarely-subscribed emit site could
survive every test run.  This rule closes the gap statically: each
``.emit(...)`` call site must

* pass a ``TOPIC_*`` constant (not a string literal or arbitrary
  expression) as the first argument;
* name a topic that exists in the live
  :mod:`repro.telemetry.topics` catalog;
* supply every declared field exactly once, as keyword arguments, with
  no extras, no ``**kwargs`` splats, and no stray positional payloads.

Calls whose first argument is not a ``TOPIC_``-prefixed name are
ignored — ``.emit`` is a common method name and this rule only polices
the telemetry catalog.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import FileContext
from repro.analysis.registry import BaseChecker, register


def _topic_catalog() -> dict[str, frozenset[str]]:
    """Map ``TOPIC_*`` constant names to their declared field sets."""
    from repro.telemetry import topics as topics_mod
    from repro.telemetry.topics import Topic

    return {
        name: value.fields
        for name, value in vars(topics_mod).items()
        if name.startswith("TOPIC_") and isinstance(value, Topic)
    }


def _dotted_names() -> frozenset[str]:
    """The registered topics' dotted names (``"dvm.sample"``, ...)."""
    from repro.telemetry.topics import TOPICS

    return frozenset(TOPICS)


def _topic_name(node: ast.expr) -> str | None:
    """The ``TOPIC_*`` constant name of an emit's first argument, if any.

    Accepts both a bare name (``TOPIC_COMMIT``) and an attribute access
    (``topics.TOPIC_COMMIT``).
    """
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    return name if name.startswith("TOPIC_") else None


@register
class EventSchemaChecker(BaseChecker):
    rule = "event-schema"
    description = "bus.emit() call sites must match a registered topic schema"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        catalog = _topic_catalog()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
                continue
            yield from self._check_emit(ctx, catalog, node)

    # ------------------------------------------------------------------
    def _check_emit(
        self,
        ctx: FileContext,
        catalog: dict[str, frozenset[str]],
        node: ast.Call,
    ) -> Iterator[Diagnostic]:
        if not node.args:
            return  # zero-arg .emit() of some other API
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            # Only a literal naming a *registered* topic is ours to
            # police; ``queue.emit("job-done")`` is some other API.
            if first.value in _dotted_names():
                yield self._diag(
                    ctx,
                    node,
                    f"emit() with a string-literal topic {first.value!r}; pass "
                    "the TOPIC_* constant so the schema is checkable",
                )
            return
        name = _topic_name(first)
        if name is None:
            return  # not a telemetry-catalog emit; out of scope
        if name not in catalog:
            yield self._diag(
                ctx,
                node,
                f"emit() of unknown topic constant {name}; it is not declared "
                "in repro.telemetry.topics",
            )
            return
        if len(node.args) > 1:
            yield self._diag(
                ctx,
                node,
                f"emit({name}, ...) passes positional payload arguments; "
                "fields must be keywords",
            )
            return
        if any(kw.arg is None for kw in node.keywords):
            yield self._diag(
                ctx,
                node,
                f"emit({name}, ...) uses a **kwargs splat; the field set must "
                "be statically visible",
            )
            return
        given = {kw.arg for kw in node.keywords if kw.arg is not None}
        declared = catalog[name]
        missing = sorted(declared - given)
        extra = sorted(given - declared)
        if missing or extra:
            parts = []
            if missing:
                parts.append(f"missing {missing}")
            if extra:
                parts.append(f"extra {extra}")
            yield self._diag(
                ctx,
                node,
                f"emit({name}, ...) field set does not match the declared "
                f"schema: {'; '.join(parts)}",
            )

    def _diag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
            severity=Severity.ERROR,
        )
