"""``emit-coverage`` — decision hooks must be observable on the bus.

PR 2's per-call-site ``event-schema`` rule validates the emits that
*exist*; this is its cross-module complement: in the three
decision-making modules (``dvm.py``, ``resource_alloc.py``,
``fetch_policy.py``), every public event hook (an ``on_*`` method) that
mutates controller state must have *some* call path — traced through
the project call graph, across helpers, base classes and modules — to
a ``bus.emit(...)``.  A decision that leaves no telemetry trace cannot
be replayed, audited or charted, which is how silent behavioural drift
survives review.

Empty hooks (docstring/``pass``/ellipsis bodies on base classes) are
exempt: they decide nothing.  Findings are warnings — an accepted gap
belongs in the lint baseline, where its removal is visible in review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.callgraph import FunctionNode
from repro.analysis.flow.project import ProjectContext
from repro.analysis.registry import ProjectChecker, register

#: The modules whose public hooks constitute "decisions" in the paper's
#: mechanisms (DVM trigger/response, IQL capping, fetch gating).
_DECISION_BASENAMES = frozenset({"dvm.py", "resource_alloc.py", "fetch_policy.py"})


def _is_trivial_body(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Docstring-only / ``pass`` / ``...`` bodies decide nothing."""
    for stmt in func.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        return False
    return True


def _mutates_state(node: FunctionNode, func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Does the hook write instance state (assign, subscript-store or
    mutator call on a self attribute)?"""
    if node.writes_self_attrs:
        return True
    for stmt in ast.walk(func):
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for tgt in targets:
            base = tgt
            while isinstance(base, ast.Subscript):
                base = base.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                return True
        if (
            isinstance(stmt, ast.Call)
            and isinstance(stmt.func, ast.Attribute)
            and stmt.func.attr in ("append", "add", "discard", "remove", "clear", "pop", "update")
        ):
            recv = stmt.func.value
            if (
                isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self"
            ):
                return True
    return False


@register
class EmitCoverageChecker(ProjectChecker):
    rule = "emit-coverage"
    description = "state-mutating decision hooks must reach a bus.emit"

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        graph = project.call_graph
        for qual in sorted(graph.functions):
            node = graph.functions[qual]
            mod = project.modules_by_name.get(node.module)
            if mod is None or mod.basename not in _DECISION_BASENAMES:
                continue
            func = node.node
            if node.cls is None or not func.name.startswith("on_") or not node.is_public:
                continue
            if _is_trivial_body(func) or not _mutates_state(node, func):
                continue
            if graph.reaches_emit(qual):
                continue
            yield Diagnostic(
                path=mod.path,
                line=func.lineno,
                col=func.col_offset,
                rule=self.rule,
                message=(
                    f"decision hook {node.cls}.{func.name} mutates controller "
                    "state but no call path from it reaches a bus.emit(); the "
                    "decision is invisible to telemetry/replay — emit a topic "
                    "or record the accepted gap in the lint baseline"
                ),
                severity=Severity.WARNING,
                symbol=f"{node.cls}.{func.name}",
            )
