"""``nondet-iteration`` — set-order leaks traced through dataflow.

The per-file ``determinism`` rule flags iterating a *literal* set
expression; one assignment of indirection defeats it::

    pending = {i.tag for i in window}     # fine so far
    for tag in pending:                   # order is hash-seed dependent
        self.ready_order.append(tag)      # ...and now it's in sim state

This pass follows the value through the function's reaching
definitions: iterating a local whose reaching definition is set-valued
(literal set, set comprehension, ``set()``/``frozenset()`` call, or a
``.keys()`` of one) is flagged when the iteration *escapes* — the loop
body writes an attribute, stores into a container attribute, or the
iterated values feed a ``.emit(...)`` payload.  Purely local,
order-insensitive consumption (membership tests, ``sum``/``len``,
building another set) stays silent; ``sorted(...)`` launders the order
and stays silent everywhere.

A second, class-scoped sweep catches the attribute variant: iterating
``self._attr`` directly when some method of the class binds that
attribute to a set expression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import ProjectContext
from repro.analysis.flow.symbols import ClassInfo, ModuleInfo
from repro.analysis.registry import ProjectChecker, register


def _is_set_expr(node: ast.expr | None) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
    # set/frozenset ops that preserve set-ness: a | b, a & b, a - b on
    # sets are invisible without type inference; out of scope.
    return False


def _escapes(loop: ast.For) -> ast.AST | None:
    """The first statement in the loop body that leaks iteration order
    into simulator state or a telemetry payload, if any."""
    for stmt in loop.body:
        for node in ast.walk(stmt):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                base = tgt
                while isinstance(base, ast.Subscript):
                    base = base.value
                if isinstance(base, ast.Attribute):
                    return node
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "emit":
                    return node
                # container growth on an attribute: self.order.append(x)
                if node.func.attr in ("append", "extend", "appendleft", "insert"):
                    recv = node.func.value
                    if isinstance(recv, ast.Attribute):
                        return node
    return None


@register
class NondetIterationChecker(ProjectChecker):
    rule = "nondet-iteration"
    description = "set iteration order must not flow into state or emits"

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for mod in project.iter_modules():
            for name in sorted(mod.functions):
                yield from self._check_function(project, mod, mod.functions[name])
            for cls_name in sorted(mod.classes):
                cls = mod.classes[cls_name]
                set_attrs = self._set_valued_attrs(cls)
                for mname in sorted(cls.methods):
                    method = cls.methods[mname]
                    yield from self._check_function(project, mod, method)
                    yield from self._check_attr_loops(mod, cls, method, set_attrs)

    # -- local-variable flow -------------------------------------------
    def _check_function(
        self,
        project: ProjectContext,
        mod: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Diagnostic]:
        flow = None
        for node in ast.walk(func):
            if not isinstance(node, ast.For) or not isinstance(node.iter, ast.Name):
                continue
            escape = _escapes(node)
            if escape is None:
                continue
            if flow is None:
                flow = project.flow(func)
            defs = flow.reaching_in(node).get(node.iter.id, [])
            for def_stmt in defs:
                value = flow.assigned_value(def_stmt, node.iter.id)
                if _is_set_expr(value):
                    yield self._diag(
                        mod,
                        node.iter,
                        f"iterates {node.iter.id!r}, which is set-valued "
                        f"(defined at line {def_stmt.lineno}), and the loop "
                        f"body leaks the order into state/telemetry at line "
                        f"{escape.lineno}; iterate sorted({node.iter.id}) instead",
                        symbol=node.iter.id,
                    )
                    break  # one diagnostic per loop is enough

    # -- attribute flow -------------------------------------------------
    def _set_valued_attrs(self, cls: ClassInfo) -> dict[str, int]:
        """self attributes some method binds to a set expression."""
        attrs: dict[str, int] = {}
        for method in cls.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                if not _is_set_expr(node.value):
                    continue
                for tgt in node.targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        attrs.setdefault(tgt.attr, node.lineno)
        return attrs

    def _check_attr_loops(
        self,
        mod: ModuleInfo,
        cls: ClassInfo,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        set_attrs: dict[str, int],
    ) -> Iterator[Diagnostic]:
        if not set_attrs:
            return
        for node in ast.walk(method):
            if not isinstance(node, ast.For):
                continue
            it = node.iter
            if (
                isinstance(it, ast.Attribute)
                and isinstance(it.value, ast.Name)
                and it.value.id == "self"
                and it.attr in set_attrs
            ):
                escape = _escapes(node)
                if escape is not None:
                    yield self._diag(
                        mod,
                        it,
                        f"iterates set-valued attribute self.{it.attr} (bound "
                        f"to a set at line {set_attrs[it.attr]}) and leaks the "
                        f"order into state/telemetry at line {escape.lineno}; "
                        f"iterate sorted(self.{it.attr}) instead",
                        symbol=f"{cls.name}.{it.attr}",
                    )

    def _diag(self, mod: ModuleInfo, node: ast.AST, message: str, symbol: str) -> Diagnostic:
        return Diagnostic(
            path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
            severity=Severity.ERROR,
            symbol=symbol,
        )
