"""``hidden-state`` — attributes born outside ``__init__`` must be reset.

Simulator components are reused across runs through their ``reset()``
method; the replication harness and every ablation sweep rely on
``reset()`` returning the object to its power-on state.  An attribute
first assigned in some decision method (directly, or three helpers
deep) that ``reset()`` never restores is state that silently survives
into the next run — the cross-run twin of the soft-error corruption the
paper studies.

For every class that defines both ``__init__``-reachable construction
and a ``reset()`` method, this pass computes, *across helper methods
and base classes via the call graph*:

* the attributes bound during construction (``__init__`` plus every
  method it calls, through the MRO);
* the attributes ``reset()`` restores (assigned, or mutated in place
  via ``clear``/``pop``/… , again transitively);
* the attributes first bound anywhere else.

Anything in the third set but neither of the first two is flagged.  A
second sweep extends the per-file ``slots`` rule across inheritance:
when every class on a (project-resolvable) MRO declares ``__slots__``,
an attribute assigned anywhere in the derived class must appear in the
union of the slot tuples.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import ProjectContext
from repro.analysis.flow.symbols import ClassInfo, ModuleInfo
from repro.analysis.registry import ProjectChecker, register

_MUTATORS = frozenset(
    {"append", "add", "clear", "discard", "extend", "insert", "pop", "popleft",
     "popitem", "remove", "reverse", "setdefault", "sort", "update", "appendleft"}
)


def _self_attr_stores(func: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, ast.AST]:
    """Attr name -> first node that *binds* ``self.<attr>`` (plain
    assignment; subscript stores mutate, they don't bind)."""
    stores: dict[str, ast.AST] = {}
    for stmt in ast.walk(func):
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for tgt in targets:
            flat = [tgt]
            if isinstance(tgt, (ast.Tuple, ast.List)):
                flat = list(tgt.elts)
            for t in flat:
                if isinstance(t, ast.Starred):
                    t = t.value
                if (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ):
                    stores.setdefault(t.attr, t)
    return stores


def _self_attr_touches(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Attrs ``func`` restores: bound, subscript-stored, or mutated via a
    container method (``self.stats.clear()`` counts as touching stats'
    *value*, and ``self.history.clear()`` as restoring ``history``)."""
    touched = set(_self_attr_stores(func))
    for stmt in ast.walk(func):
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for tgt in targets:
            base = tgt
            while isinstance(base, ast.Subscript):
                base = base.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                touched.add(base.attr)
        if (
            isinstance(stmt, ast.Call)
            and isinstance(stmt.func, ast.Attribute)
            and stmt.func.attr in _MUTATORS
        ):
            recv = stmt.func.value
            if (
                isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self"
            ):
                touched.add(recv.attr)
    return touched


def _slot_names(value: ast.expr) -> set[str] | None:
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return {value.value}
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        names: set[str] = set()
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            names.add(elt.value)
        return names
    return None


def _declared_slots(cls: ClassInfo) -> set[str] | None:
    """The class's statically-known ``__slots__``, or None."""
    for stmt in cls.node.body:
        if isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name) and tgt.id == "__slots__":
                    return _slot_names(stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return _slot_names(stmt.value)
    return None


@register
class HiddenStateChecker(ProjectChecker):
    rule = "hidden-state"
    description = "attributes born outside __init__ must be covered by reset()"

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for mod, cls in project.iter_classes():
            yield from self._check_reset_coverage(project, mod, cls)
            yield from self._check_mro_slots(project, mod, cls)

    # -- reset coverage -------------------------------------------------
    def _transitive(
        self,
        project: ProjectContext,
        mod: ModuleInfo,
        cls: ClassInfo,
        method_name: str,
    ) -> tuple[set[str], set[str]]:
        """(bound attrs, touched attrs) of ``method_name`` plus every
        self/super method it transitively calls, through the MRO."""
        graph = project.call_graph
        start = graph.resolve_method(mod, cls, method_name)
        bound: set[str] = set()
        touched: set[str] = set()
        if start is None:
            return bound, touched
        seen: set[str] = set()
        stack = [start]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            node = graph.functions.get(qual)
            if node is None:
                continue
            bound |= set(_self_attr_stores(node.node))
            touched |= _self_attr_touches(node.node)
            for callee in node.calls:
                callee_node = graph.functions.get(callee)
                # Follow only method calls (self./super() resolved) —
                # free functions don't write self.
                if callee_node is not None and callee_node.cls is not None:
                    stack.append(callee)
        return bound, touched

    def _check_reset_coverage(
        self, project: ProjectContext, mod: ModuleInfo, cls: ClassInfo
    ) -> Iterator[Diagnostic]:
        if "reset" not in cls.methods:
            return  # reset() may be inherited; the base class is checked
        graph = project.call_graph
        if graph.resolve_method(mod, cls, "__init__") is None:
            return
        init_bound, _ = self._transitive(project, mod, cls, "__init__")
        _, reset_touched = self._transitive(project, mod, cls, "reset")

        # Attributes bound in any other method of the class or its bases.
        reported: set[str] = set()
        for m, c in graph.mro(mod, cls):
            for mname in sorted(c.methods):
                if mname in ("__init__", "reset"):
                    continue
                for attr, node in sorted(_self_attr_stores(c.methods[mname]).items()):
                    if attr in init_bound or attr in reset_touched or attr in reported:
                        continue
                    if attr.startswith("__") and attr.endswith("__"):
                        continue
                    reported.add(attr)
                    yield Diagnostic(
                        path=m.path,
                        line=getattr(node, "lineno", 1),
                        col=getattr(node, "col_offset", 0),
                        rule=self.rule,
                        message=(
                            f"attribute {attr!r} is first bound in "
                            f"{c.name}.{mname}, not in __init__, and "
                            f"{cls.name}.reset() never restores it: the value "
                            "survives reset() into the next run"
                        ),
                        severity=Severity.WARNING,
                        symbol=f"{cls.name}.{attr}",
                    )

    # -- cross-module __slots__ completeness ----------------------------
    def _check_mro_slots(
        self, project: ProjectContext, mod: ModuleInfo, cls: ClassInfo
    ) -> Iterator[Diagnostic]:
        if not cls.bases or cls.bases == ["object"]:
            return  # the per-file slots rule owns base classes
        mro = project.call_graph.mro(mod, cls)
        if len(mro) < 2:
            return  # bases unresolvable in-project: stay silent
        union: set[str] = set()
        for _, c in mro:
            slots = _declared_slots(c)
            if slots is None:
                return  # some ancestor has a __dict__ (or dynamic slots)
            union |= slots
        for mname in sorted(cls.methods):
            for attr, node in sorted(_self_attr_stores(cls.methods[mname]).items()):
                if attr in union or (attr.startswith("__") and attr.endswith("__")):
                    continue
                yield Diagnostic(
                    path=mod.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    rule=self.rule,
                    message=(
                        f"attribute {attr!r} assigned in {cls.name}.{mname} is "
                        "missing from every __slots__ on the inheritance chain "
                        "(will raise AttributeError at runtime)"
                    ),
                    severity=Severity.ERROR,
                    symbol=f"{cls.name}.{attr}",
                )
