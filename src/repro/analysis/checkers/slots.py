"""``slots`` — ``__slots__`` declarations must be complete.

Hot-path state classes declare ``__slots__`` both for footprint and as
an explicit inventory of their mutable state.  An attribute assigned in
a method but missing from ``__slots__`` raises ``AttributeError`` at
runtime — but only on the first assignment, which for rarely-taken
paths (squash, overflow) can hide for a long time.  This rule finds the
mismatch statically.

Classes with bases other than ``object`` are skipped: the attribute may
legitimately live in a base class's ``__slots__`` (or ``__dict__``),
which a single-module analysis cannot resolve.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import FileContext
from repro.analysis.registry import BaseChecker, register


def _slot_names(value: ast.expr) -> set[str] | None:
    """Extract the declared slot names; None if not statically constant."""
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return {value.value}
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        names: set[str] = set()
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            names.add(elt.value)
        return names
    return None


def _self_attr_targets(target: ast.expr) -> Iterator[ast.Attribute]:
    """Yield ``self.X`` attribute nodes assigned by ``target`` (handles
    tuple/list unpacking and starred elements)."""
    if isinstance(target, ast.Attribute):
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            yield target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _self_attr_targets(elt)
    elif isinstance(target, ast.Starred):
        yield from _self_attr_targets(target.value)
    # Subscripts (self.x[i] = ...) mutate existing attributes: no check.


@register
class SlotsCompletenessChecker(BaseChecker):
    rule = "slots"
    description = "attributes assigned on self must appear in __slots__"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Diagnostic]:
        if any(not (isinstance(b, ast.Name) and b.id == "object") for b in cls.bases):
            return
        slots: set[str] | None = None
        class_level: set[str] = set()
        for stmt in cls.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    if tgt.id == "__slots__" and value is not None:
                        slots = _slot_names(value)
                    else:
                        class_level.add(tgt.id)
        if slots is None:
            return  # no (statically known) __slots__: nothing to enforce

        reported: set[str] = set()
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                assign_targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    assign_targets = stmt.targets
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    assign_targets = [stmt.target]
                elif isinstance(stmt, ast.For):
                    assign_targets = [stmt.target]
                elif isinstance(stmt, ast.withitem) and stmt.optional_vars is not None:
                    assign_targets = [stmt.optional_vars]
                for tgt in assign_targets:
                    for attr_node in _self_attr_targets(tgt):
                        name = attr_node.attr
                        if name in slots or name in class_level or name in reported:
                            continue
                        if name.startswith("__") and name.endswith("__"):
                            continue
                        reported.add(name)
                        yield Diagnostic(
                            path=ctx.path,
                            line=attr_node.lineno,
                            col=attr_node.col_offset,
                            rule=self.rule,
                            message=(
                                f"attribute {name!r} assigned in "
                                f"{cls.name}.{method.name} is missing from "
                                f"__slots__ (will raise AttributeError at runtime)"
                            ),
                            severity=Severity.ERROR,
                            symbol=f"{cls.name}.{name}",
                        )
