"""``config-bounds`` — numeric config fields must be validated.

Every numeric field of a dataclass in ``config.py`` encodes a machine
or mechanism parameter with a documented legal range (Table 2 sizes,
``t_cache_miss``, interval lengths, IPC-region counts, …).  A field the
class's ``validate()`` never looks at is a knob whose illegal values
(zero-cycle intervals, negative latencies) sail straight into the
simulator and surface as wrong numbers, not errors.

The rule requires each ``int``/``float`` (including ``Optional``)
field of a dataclass to be referenced as ``self.<field>`` somewhere in
that class's ``validate`` method, and requires a ``validate`` method to
exist at all once the class has numeric fields.  Only files named
``config.py`` are scanned.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import FileContext
from repro.analysis.registry import BaseChecker, register

_NUMERIC_NAMES = frozenset({"int", "float"})


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        node = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(node, ast.Name) and node.id == "dataclass":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "dataclass":
            return True
    return False


def _is_numeric_annotation(ann: ast.expr) -> bool:
    """True for int/float annotations, optionally unioned with None
    (``int | None``, ``Optional[float]``)."""
    if isinstance(ann, ast.Name):
        return ann.id in _NUMERIC_NAMES
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            return _is_numeric_annotation(ast.parse(ann.value, mode="eval").body)
        except SyntaxError:
            return False
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        sides = [ann.left, ann.right]
        non_none = [
            s for s in sides if not (isinstance(s, ast.Constant) and s.value is None)
        ]
        return any(_is_numeric_annotation(s) for s in non_none)
    if isinstance(ann, ast.Subscript):
        base = ann.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _is_numeric_annotation(ann.slice)
    return False


@register
class ConfigBoundsChecker(BaseChecker):
    rule = "config-bounds"
    description = "numeric dataclass fields in config.py must be validated"
    default_paths = frozenset({"config.py"})

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Diagnostic]:
        numeric_fields: dict[str, ast.AnnAssign] = {}
        validate: ast.FunctionDef | None = None
        for stmt in cls.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
                and _is_numeric_annotation(stmt.annotation)
            ):
                numeric_fields[stmt.target.id] = stmt
            elif isinstance(stmt, ast.FunctionDef) and stmt.name == "validate":
                validate = stmt
        if not numeric_fields:
            return
        if validate is None:
            yield Diagnostic(
                path=ctx.path,
                line=cls.lineno,
                col=cls.col_offset,
                rule=self.rule,
                message=(
                    f"dataclass {cls.name} has numeric fields "
                    f"{sorted(numeric_fields)} but no validate() method"
                ),
                severity=Severity.ERROR,
                symbol=cls.name,
            )
            return
        referenced: set[str] = set()
        for node in ast.walk(validate):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                referenced.add(node.attr)
        for name, site in sorted(numeric_fields.items()):
            if name not in referenced:
                yield Diagnostic(
                    path=ctx.path,
                    line=site.lineno,
                    col=site.col_offset,
                    rule=self.rule,
                    message=(
                        f"numeric field {cls.name}.{name} is never checked in "
                        "validate(); add a range check or suppress with a "
                        "rationale"
                    ),
                    severity=Severity.ERROR,
                    symbol=f"{cls.name}.{name}",
                )
