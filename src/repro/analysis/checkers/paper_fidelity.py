"""``paper-fidelity`` — catalogued paper constants flow from ``repro.config``.

The paper's results hinge on exact interval constants: the 10K-cycle
adaptation interval, ``Tcache_miss = 16``, the DVM trigger at 90% of
the reliability target, the four IPC regions whose IQL caps are
proportional to IQ size.  All of them are declared once, in
:class:`repro.config.ReliabilityConfig`.  This pass keeps it that way:

* a numeric literal equal to a catalogued constant, bound to that
  constant's identifier anywhere outside the config module, is an
  **error** — the value must flow from ``repro.config``, not be
  re-hard-coded at the use site (a later change to the config would
  silently diverge from the copy);
* a numeric literal bound to a catalogued identifier with a *different*
  value is a **warning** — either drift from the paper or a deliberate
  rescaling, which should say so with an inline suppression;
* a comparison of a catalogued identifier against its exact paper value
  is an **error** for the same reason (thresholds belong in config).

Binding sites checked: assignments (``t_cache_miss = 16``), annotated
and dataclass-field defaults, function-parameter defaults, and keyword
arguments.  Test files (``test_*.py``/``conftest.py``) are exempt —
pinning explicit values is what tests are for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.flow.project import ProjectContext
from repro.analysis.flow.symbols import ModuleInfo
from repro.analysis.registry import ProjectChecker, register


@dataclass(frozen=True)
class PaperConstant:
    """One catalogued constant: its paper value, home, and §-reference."""

    key: str
    value: int | float
    config_attr: str  # the one true home, in repro.config
    section: str  # paper §-reference (see PAPER.md)
    identifiers: frozenset[str]


#: The catalog.  Identifier sets are deliberately exact — matching on
#: generic names like ``window`` would drown the signal in noise.
PAPER_CONSTANTS: tuple[PaperConstant, ...] = (
    PaperConstant(
        key="interval-length",
        value=10_000,
        config_attr="ReliabilityConfig.interval_cycles",
        section="§2.2",
        identifiers=frozenset({"interval_cycles"}),
    ),
    PaperConstant(
        key="t-cache-miss",
        value=16,
        config_attr="ReliabilityConfig.t_cache_miss",
        section="§2.2(2)",
        identifiers=frozenset({"t_cache_miss", "tcache_miss"}),
    ),
    PaperConstant(
        key="dvm-trigger-fraction",
        value=0.9,
        config_attr="ReliabilityConfig.dvm_trigger_fraction",
        section="§5.1",
        identifiers=frozenset({"dvm_trigger_fraction", "trigger_fraction"}),
    ),
    PaperConstant(
        key="ace-window",
        value=40_000,
        config_attr="ReliabilityConfig.ace_window",
        section="§2.1",
        identifiers=frozenset({"ace_window"}),
    ),
    PaperConstant(
        key="dvm-samples-per-interval",
        value=5,
        config_attr="ReliabilityConfig.dvm_samples_per_interval",
        section="§5.1",
        identifiers=frozenset({"dvm_samples_per_interval"}),
    ),
    PaperConstant(
        key="dvm-ratio-period",
        value=50,
        config_attr="ReliabilityConfig.dvm_ratio_period",
        section="§5.1",
        identifiers=frozenset({"dvm_ratio_period"}),
    ),
    PaperConstant(
        key="iql-region-count",
        value=4,
        config_attr="ReliabilityConfig.num_ipc_regions",
        section="§2.2(1), Fig. 3",
        identifiers=frozenset({"num_ipc_regions"}),
    ),
)

_BY_IDENTIFIER: dict[str, PaperConstant] = {
    ident: const for const in PAPER_CONSTANTS for ident in const.identifiers
}


def _is_config_module(mod: ModuleInfo) -> bool:
    return mod.basename == "config.py" or mod.name.endswith(".config")


def _is_test_module(mod: ModuleInfo) -> bool:
    return mod.basename.startswith("test_") or mod.basename == "conftest.py"


def _literal_number(node: ast.expr | None) -> int | float | None:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return node.value
    # -0.9 parses as UnaryOp(USub, Constant); normalize.
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        return -node.operand.value
    return None


def _target_identifier(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class PaperFidelityChecker(ProjectChecker):
    rule = "paper-fidelity"
    description = "catalogued paper constants must flow from repro.config"

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for mod in project.iter_modules():
            if _is_config_module(mod) or _is_test_module(mod):
                continue
            yield from self._check_module(mod)

    # ------------------------------------------------------------------
    def _check_module(self, mod: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    yield from self._check_binding(mod, tgt, node.value, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield from self._check_binding(mod, node.target, node.value, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(mod, node)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is not None and kw.arg in _BY_IDENTIFIER:
                        yield from self._check_value(
                            mod, kw.arg, kw.value, kw.value, binding="keyword argument"
                        )
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(mod, node)

    def _check_binding(
        self, mod: ModuleInfo, target: ast.expr, value: ast.expr, anchor: ast.stmt
    ) -> Iterator[Diagnostic]:
        ident = _target_identifier(target)
        if ident is not None and ident in _BY_IDENTIFIER:
            yield from self._check_value(mod, ident, value, anchor, binding="assignment")

    def _check_defaults(
        self, mod: ModuleInfo, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        args = func.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
            if arg.arg in _BY_IDENTIFIER:
                yield from self._check_value(
                    mod, arg.arg, default, default, binding="parameter default"
                )
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None and arg.arg in _BY_IDENTIFIER:
                yield from self._check_value(
                    mod, arg.arg, kw_default, kw_default, binding="parameter default"
                )

    def _check_compare(self, mod: ModuleInfo, node: ast.Compare) -> Iterator[Diagnostic]:
        # <ident> OP <paper value> (or flipped): the threshold is being
        # re-hard-coded at a decision site.  Non-paper values compared
        # against catalogued identifiers (bounds checks against 0, ...)
        # are legitimate and stay silent.
        operands = [node.left] + list(node.comparators)
        idents = [(_target_identifier(op)) for op in operands]
        numbers = [_literal_number(op) for op in operands]
        for ident in idents:
            if ident is None or ident not in _BY_IDENTIFIER:
                continue
            const = _BY_IDENTIFIER[ident]
            for num, op_node in zip(numbers, operands):
                if num is not None and num == const.value:
                    yield self._diag(
                        mod,
                        op_node,
                        Severity.ERROR,
                        const,
                        f"comparison re-hard-codes paper constant {const.key} "
                        f"({const.value!r}, {const.section}); read it from "
                        f"repro.config ({const.config_attr})",
                    )

    def _check_value(
        self,
        mod: ModuleInfo,
        ident: str,
        value: ast.expr,
        anchor: ast.AST,
        binding: str,
    ) -> Iterator[Diagnostic]:
        const = _BY_IDENTIFIER[ident]
        num = _literal_number(value)
        if num is None:
            return  # flows from an expression — exactly what we want
        if num == const.value:
            yield self._diag(
                mod,
                anchor,
                Severity.ERROR,
                const,
                f"{binding} re-hard-codes paper constant {const.key} = "
                f"{const.value!r} ({const.section}); it must flow from "
                f"repro.config ({const.config_attr})",
            )
        else:
            yield self._diag(
                mod,
                anchor,
                Severity.WARNING,
                const,
                f"{binding} binds {ident!r} to {num!r}, which drifts from the "
                f"paper's {const.key} = {const.value!r} ({const.section}); "
                f"derive it from repro.config ({const.config_attr}) or mark "
                "the deliberate rescaling with an inline suppression",
            )

    def _diag(
        self,
        mod: ModuleInfo,
        node: ast.AST,
        severity: Severity,
        const: PaperConstant,
        message: str,
    ) -> Diagnostic:
        return Diagnostic(
            path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
            severity=severity,
            symbol=const.key,
        )
