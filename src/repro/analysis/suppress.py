"""Suppression comments.

Two forms, parsed from the token stream so string literals that merely
*contain* the directive text are never honoured:

* ``# lint: disable=<rule>[,<rule>...]`` trailing (or alone) on a line
  suppresses those rules for that physical line.  For a multi-line
  statement the engine matches on the diagnostic's anchor line.
* ``# lint: disable-file=<rule>[,<rule>...]`` anywhere in the file
  suppresses the rules for the whole file.

``all`` is accepted as a wildcard rule name in both forms.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_LINE_RE = re.compile(r"#\s*lint:\s*disable\s*=\s*([A-Za-z0-9_,\-\s]+)")
_FILE_RE = re.compile(r"#\s*lint:\s*disable-file\s*=\s*([A-Za-z0-9_,\-\s]+)")

WILDCARD = "all"


@dataclass
class SuppressionTable:
    """Suppressed rules per line plus file-wide suppressions.

    ``mentions`` records every ``(rule, line)`` a directive named, in
    source order, so the engine can warn about directives that name a
    rule the registry has never registered (a typo silences nothing).
    """

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)
    mentions: list[tuple[str, int]] = field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_wide or WILDCARD in self.file_wide:
            return True
        rules = self.by_line.get(line)
        return rules is not None and (rule in rules or WILDCARD in rules)


def _split_rules(spec: str) -> set[str]:
    return {part.strip() for part in spec.split(",") if part.strip()}


def parse_suppressions(source: str) -> SuppressionTable:
    """Extract the suppression table from a module's source text."""
    table = SuppressionTable()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            file_match = _FILE_RE.search(tok.string)
            if file_match:
                rules = _split_rules(file_match.group(1))
                table.file_wide |= rules
                table.mentions.extend((r, tok.start[0]) for r in sorted(rules))
                continue
            line_match = _LINE_RE.search(tok.string)
            if line_match:
                rules = _split_rules(line_match.group(1))
                line_rules = table.by_line.setdefault(tok.start[0], set())
                line_rules |= rules
                table.mentions.extend((r, tok.start[0]) for r in sorted(rules))
    except tokenize.TokenError:
        # Unterminated constructs: the engine reports the syntax error
        # separately; no suppressions apply.
        pass
    return table
