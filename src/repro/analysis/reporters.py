"""Text, JSON and SARIF diagnostic reporters."""

from __future__ import annotations

import json
import os
from typing import Sequence

from repro.analysis.diagnostics import Diagnostic, Severity

#: SARIF 2.1.0 result levels, by severity.
_SARIF_LEVEL = {Severity.NOTE: "note", Severity.WARNING: "warning", Severity.ERROR: "error"}


def _counts(diags: Sequence[Diagnostic]) -> dict[str, int]:
    return {
        "total": len(diags),
        "errors": sum(1 for d in diags if d.severity == Severity.ERROR),
        "warnings": sum(1 for d in diags if d.severity == Severity.WARNING),
        "notes": sum(1 for d in diags if d.severity == Severity.NOTE),
    }


def render_text(diags: Sequence[Diagnostic]) -> str:
    """One ``path:line:col: severity [rule] message`` line per finding,
    plus a summary line."""
    lines = [d.format() for d in diags]
    c = _counts(diags)
    if diags:
        lines.append(
            f"found {c['total']} problem(s) ({c['errors']} error(s), "
            f"{c['warnings']} warning(s), {c['notes']} note(s))"
        )
    else:
        lines.append("no problems found")
    return "\n".join(lines)


def render_json(diags: Sequence[Diagnostic]) -> str:
    """Machine-readable report: a stable JSON document for CI tooling."""
    payload = {
        "diagnostics": [d.to_json() for d in diags],
        "summary": _counts(diags),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(diags: Sequence[Diagnostic]) -> str:
    """SARIF 2.1.0 — the format GitHub code scanning ingests for inline
    PR annotations.  One run, one result per diagnostic, rule metadata
    drawn from the live registry."""
    from repro.analysis.registry import all_rules, get_checker

    rules_meta = []
    for rule in all_rules():
        checker = get_checker(rule)
        rules_meta.append(
            {
                "id": rule,
                "shortDescription": {"text": checker.description or rule},
            }
        )
    rule_index = {meta["id"]: i for i, meta in enumerate(rules_meta)}

    results = []
    for diag in diags:
        uri = diag.path
        if os.path.isabs(uri):
            try:
                uri = os.path.relpath(uri)
            except ValueError:
                pass
        uri = uri.replace(os.sep, "/")
        # SARIF regions are 1-based and end-inclusive; diagnostics
        # carry the AST convention (0-based columns, exclusive end).
        start_line = max(diag.line, 1)
        region = {
            "startLine": start_line,
            "startColumn": diag.col + 1,
        }
        if diag.end_line:
            region["endLine"] = max(diag.end_line, start_line)
            region["endColumn"] = max(diag.end_col + 1, 1)
            if region["endLine"] == start_line:
                region["endColumn"] = max(region["endColumn"], region["startColumn"])
        result = {
            "ruleId": diag.rule,
            "level": _SARIF_LEVEL[diag.severity],
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": uri},
                        "region": region,
                    }
                }
            ],
        }
        if diag.rule in rule_index:
            result["ruleIndex"] = rule_index[diag.rule]
        if diag.symbol:
            result["partialFingerprints"] = {"symbol": diag.symbol}
        results.append(result)

    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_RENDERERS = {"text": render_text, "json": render_json, "sarif": render_sarif}


def render(diags: Sequence[Diagnostic], fmt: str) -> str:
    try:
        return _RENDERERS[fmt](diags)
    except KeyError:
        raise KeyError(f"unknown report format {fmt!r}; available: {sorted(_RENDERERS)}") from None
