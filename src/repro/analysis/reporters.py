"""Text and JSON diagnostic reporters."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.diagnostics import Diagnostic, Severity


def render_text(diags: Sequence[Diagnostic]) -> str:
    """One ``path:line:col: severity [rule] message`` line per finding,
    plus a summary line."""
    lines = [d.format() for d in diags]
    n_err = sum(1 for d in diags if d.severity == Severity.ERROR)
    n_warn = len(diags) - n_err
    if diags:
        lines.append(f"found {len(diags)} problem(s) ({n_err} error(s), {n_warn} warning(s))")
    else:
        lines.append("no problems found")
    return "\n".join(lines)


def render_json(diags: Sequence[Diagnostic]) -> str:
    """Machine-readable report: a stable JSON document for CI tooling."""
    payload = {
        "diagnostics": [d.to_json() for d in diags],
        "summary": {
            "total": len(diags),
            "errors": sum(1 for d in diags if d.severity == Severity.ERROR),
            "warnings": sum(1 for d in diags if d.severity == Severity.WARNING),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_RENDERERS = {"text": render_text, "json": render_json}


def render(diags: Sequence[Diagnostic], fmt: str) -> str:
    try:
        return _RENDERERS[fmt](diags)
    except KeyError:
        raise KeyError(f"unknown report format {fmt!r}; available: {sorted(_RENDERERS)}") from None
