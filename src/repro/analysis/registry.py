"""Checker registry.

A checker subclasses :class:`BaseChecker`, sets ``rule`` (the name used
in reports and suppression comments) and implements ``check``; the
``@register`` decorator adds it to the global registry the engine
instantiates from.  Registration is idempotent by rule name so repeated
imports are harmless, but two *different* classes claiming one rule is
a programming error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, TypeVar

from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import FileContext
    from repro.analysis.flow.project import ProjectContext


class BaseChecker:
    """One lint rule.

    ``default_paths``: when non-empty, the engine only runs the checker
    on files whose basename is in the set — rules like *stage-purity*
    are meaningful only for specific modules.
    """

    rule: str = ""
    description: str = ""
    default_paths: frozenset[str] = frozenset()

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def applies_to(self, ctx: "FileContext") -> bool:
        if not self.default_paths:
            return True
        return ctx.basename in self.default_paths


class ProjectChecker(BaseChecker):
    """A whole-project (dataflow) lint rule.

    Runs once per :meth:`LintEngine.run` against the shared
    :class:`~repro.analysis.flow.project.ProjectContext` instead of
    once per file; ``check`` (the per-file hook) is a no-op so the
    per-file dispatch loop can treat both kinds uniformly.  The engine
    still applies per-file suppression tables to every diagnostic a
    project pass emits, keyed on the diagnostic's path.

    ``fingerprint_files``: extra non-Python input paths (relative to
    the working directory) whose content the pass depends on; the
    engine folds their digests into the project-snapshot cache key so
    editing one invalidates the cached project diagnostics.
    """

    fingerprint_files: tuple[str, ...] = ()

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Diagnostic]:
        raise NotImplementedError


_C = TypeVar("_C", bound=type[BaseChecker])

_REGISTRY: dict[str, type[BaseChecker]] = {}


def register(cls: _C) -> _C:
    """Class decorator adding a checker to the registry."""
    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} must set a non-empty rule name")
    existing = _REGISTRY.get(cls.rule)
    if existing is not None and existing is not cls:
        raise ValueError(f"rule {cls.rule!r} already registered by {existing.__name__}")
    _REGISTRY[cls.rule] = cls
    return cls


def all_rules() -> list[str]:
    _ensure_builtin_checkers()
    return sorted(_REGISTRY)


def get_checker(rule: str) -> type[BaseChecker]:
    _ensure_builtin_checkers()
    try:
        return _REGISTRY[rule]
    except KeyError:
        raise KeyError(f"unknown lint rule {rule!r}; available: {sorted(_REGISTRY)}") from None


def make_checkers(rules: Iterable[str] | None = None) -> list[BaseChecker]:
    """Instantiate the selected checkers (all registered ones by default)."""
    _ensure_builtin_checkers()
    names = all_rules() if rules is None else list(rules)
    return [get_checker(name)() for name in names]


def _ensure_builtin_checkers() -> None:
    """Import the built-in checker package so its rules self-register."""
    import repro.analysis.checkers  # noqa: F401  (import for side effect)
