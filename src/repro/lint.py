"""``python -m repro.lint`` — simulator-aware static analysis.

Thin executable wrapper around :mod:`repro.analysis.cli`; see
``docs/static_analysis.md`` for the checker catalog and suppression
syntax.
"""

from __future__ import annotations

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
