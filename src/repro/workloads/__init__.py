"""SMT workload mixes (Table 3 of the paper)."""

from repro.workloads.mixes import (
    CATEGORIES,
    MIXES,
    WorkloadMix,
    get_mix,
    mixes_in_category,
)

__all__ = ["WorkloadMix", "MIXES", "CATEGORIES", "get_mix", "mixes_in_category"]
