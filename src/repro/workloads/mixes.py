"""The 9 four-context SMT workloads of Table 3.

Three categories — CPU (computation-intensive threads), MEM
(memory-intensive threads) and MIX (half and half) — with three groups
(A, B, C) each.  The paper reports per-category averages over the three
groups; :func:`mixes_in_category` supports that aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.generator import ProgramGenerator
from repro.isa.personalities import get_personality
from repro.isa.program import SyntheticProgram


@dataclass(frozen=True)
class WorkloadMix:
    """One SMT workload: a named tuple of benchmark threads."""

    name: str
    category: str  # "CPU", "MIX" or "MEM"
    group: str  # "A", "B" or "C"
    benchmarks: tuple[str, ...]

    def programs(self, seed: int = 0) -> list[SyntheticProgram]:
        """Instantiate one synthetic program per thread.

        Threads of the same benchmark within a mix get distinct seeds so
        their dynamic behaviour decorrelates, as different SimPoint
        phases would.
        """
        out = []
        for i, name in enumerate(self.benchmarks):
            gen = ProgramGenerator(get_personality(name), seed=seed * 1000 + i)
            out.append(gen.generate())
        return out


# Table 3 verbatim.
MIXES: dict[str, WorkloadMix] = {
    m.name: m
    for m in [
        WorkloadMix("CPU-A", "CPU", "A", ("bzip2", "eon", "gcc", "perlbmk")),
        WorkloadMix("CPU-B", "CPU", "B", ("gap", "facerec", "crafty", "mesa")),
        WorkloadMix("CPU-C", "CPU", "C", ("gcc", "perlbmk", "facerec", "crafty")),
        WorkloadMix("MIX-A", "MIX", "A", ("gcc", "mcf", "vpr", "perlbmk")),
        WorkloadMix("MIX-B", "MIX", "B", ("mcf", "mesa", "crafty", "equake")),
        WorkloadMix("MIX-C", "MIX", "C", ("vpr", "facerec", "swim", "gap")),
        WorkloadMix("MEM-A", "MEM", "A", ("mcf", "equake", "vpr", "swim")),
        WorkloadMix("MEM-B", "MEM", "B", ("lucas", "galgel", "mcf", "vpr")),
        WorkloadMix("MEM-C", "MEM", "C", ("equake", "swim", "twolf", "galgel")),
    ]
}

CATEGORIES = ("CPU", "MIX", "MEM")


def get_mix(name: str) -> WorkloadMix:
    """Look up a workload mix by name (e.g. ``"CPU-A"``)."""
    try:
        return MIXES[name]
    except KeyError:
        raise KeyError(f"unknown mix {name!r}; available: {sorted(MIXES)}") from None


def mixes_in_category(category: str) -> list[WorkloadMix]:
    """All groups of one category, e.g. ``"CPU"`` -> CPU-A/B/C."""
    out = [m for m in MIXES.values() if m.category == category.upper()]
    if not out:
        raise KeyError(f"unknown category {category!r}; expected one of {CATEGORIES}")
    return sorted(out, key=lambda m: m.group)
