"""Instruction model for the synthetic RISC-like ISA.

Two layers mirror a real simulator:

* :class:`StaticInst` — one instruction in the program image, identified
  by its PC.  Carries the operand structure (destination/source
  architectural registers), the operation class, the memory/branch
  behaviour descriptors used by the workload model, and the 1-bit
  ``ace_hint`` that the paper's extended ISA encodes (Section 2.1).
* :class:`DynInst` — one dynamic instance flowing through the pipeline,
  identified by a global sequence tag.  Holds renamed producer tags,
  per-stage timestamps and the resolved ACE-ness used for AVF
  accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpClass(enum.IntEnum):
    """Operation classes with distinct functional-unit requirements."""

    IALU = 0
    IMULT = 1
    IDIV = 2
    FALU = 3
    FMULT = 4
    FDIV = 5
    FSQRT = 6
    LOAD = 7
    STORE = 8
    BRANCH = 9
    JUMP = 10  # unconditional direct
    CALL = 11
    RET = 12
    NOP = 13
    PREFETCH = 14

    @property
    def is_mem(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE, OpClass.PREFETCH)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET)

    @property
    def is_fp(self) -> bool:
        return self in (OpClass.FALU, OpClass.FMULT, OpClass.FDIV, OpClass.FSQRT)


class MemPattern(enum.IntEnum):
    """Address-stream shape of a static memory instruction."""

    SEQUENTIAL = 0  # strides through the footprint as the program advances
    RANDOM = 1  # uniform over the footprint
    HOT = 2  # uniform over a small hot set (high locality)


@dataclass
class MemBehavior:
    """Address-generation descriptor attached to LOAD/STORE/PREFETCH.

    Addresses are produced as a pure function of the thread's fetch
    stream position so wrong-path rollback is a single-integer restore
    (see :class:`repro.isa.program.ThreadContext`).
    """

    pattern: MemPattern
    base: int  # region base address (bytes)
    footprint: int  # region size in bytes
    stride: int = 8  # for SEQUENTIAL
    # SEQUENTIAL advances one stride per 2**advance_shift fetched
    # instructions: integer codes re-walk buffers slowly (large shift),
    # FP streams sweep quickly (small shift).
    advance_shift: int = 5
    hot_size: int = 4096  # for HOT
    # For RANDOM: out of 16 accesses, this many stay in a 64KB hot
    # window (page/TLB locality); the rest range over the footprint.
    page_local_16: int = 12


@dataclass
class BranchBehavior:
    """Outcome model of a static conditional branch.

    Two regimes:

    * **Loop back-branch** (``loop_period > 0``): the loop body has a
      constant stream length ``loop_period``, so the iteration counter
      is ``stream_pos // loop_period`` and the branch falls through
      (exits) exactly every ``loop_trip``-th iteration — the
      quasi-constant trip counts of real loops, which history-based
      predictors learn.
    * **Data-dependent branch** (``loop_period == 0``): taken with
      probability ``taken_bias``; ``predictability`` in [0, 1] mixes in
      per-instance randomness: 1.0 always resolves in the biased
      direction, 0.0 is a pure biased coin flip of (pc, stream
      position, seed).
    """

    taken_bias: float
    predictability: float = 0.5
    loop_period: int = 0
    loop_trip: int = 0


@dataclass
class StaticInst:
    """One instruction of a synthetic program image."""

    pc: int
    opclass: OpClass
    dest: int = -1  # architectural register index, -1 = none
    srcs: tuple[int, ...] = ()
    mem: MemBehavior | None = None
    branch: BranchBehavior | None = None
    # Filled by the program builder: control-flow successors for branches.
    taken_block: int = -1
    fall_block: int = -1
    # The 1-bit ISA extension of Section 2.1, set by offline profiling.
    ace_hint: bool = True
    # True for instructions whose results are program outputs (ACE roots
    # beyond stores/branches), e.g. emulated syscalls/IO.
    is_output: bool = False

    def __post_init__(self) -> None:
        if self.opclass.is_mem and self.mem is None:
            raise ValueError(f"memory instruction at pc={self.pc:#x} needs MemBehavior")
        if self.opclass == OpClass.BRANCH and self.branch is None:
            raise ValueError(f"branch at pc={self.pc:#x} needs BranchBehavior")

    @property
    def writes_reg(self) -> bool:
        return self.dest >= 0


# Pipeline state of a dynamic instruction.
class DynState(enum.IntEnum):
    FETCHED = 0
    DISPATCHED = 1  # in IQ (waiting or ready)
    ISSUED = 2
    COMPLETED = 3
    COMMITTED = 4
    SQUASHED = 5


@dataclass(slots=True)
class DynInst:
    """A dynamic instruction instance in flight.

    ``tag`` is the globally unique sequence number used for renaming:
    consumers wait on their producers' tags.  ``ace`` is the *oracle*
    ACE-ness resolved by the post-retirement analyzer (``None`` until
    resolved); ``ace_pred`` is the per-PC predicted bit from offline
    profiling that drives VISA scheduling and DVM's online AVF counter.
    """

    tag: int
    thread: int
    static: StaticInst
    stream_pos: int
    state: DynState = DynState.FETCHED
    src_tags: list[int] = field(default_factory=list)  # unresolved producer tags
    mem_addr: int = -1
    # Branch resolution.
    pred_taken: bool = False
    actual_taken: bool = False
    pred_target: int = -1
    actual_target: int = -1
    mispredicted: bool = False
    bp_index: int = -1  # PHT entry used at prediction (trained at commit)
    # Timestamps (cycle numbers, -1 = not reached).
    fetch_cycle: int = -1
    dispatch_cycle: int = -1
    ready_cycle: int = -1
    issue_cycle: int = -1
    complete_cycle: int = -1
    commit_cycle: int = -1
    # Cache outcome bookkeeping for loads.
    l1_miss: bool = False
    l2_miss: bool = False
    exec_latency: int = 1
    # Reliability.
    ace: bool | None = None
    ace_pred: bool = True
    iq_leave_cycle: int = -1
    # Physical IQ slot occupied while resident (-1 before dispatch);
    # stable for the whole residency, so per-entry heatmaps can
    # attribute vulnerability to hardware slots.
    iq_slot: int = -1
    # Thread-context state before this instruction advanced the fetch
    # point; restored on misprediction recovery and FLUSH refetch
    # (the (block, index, stream_pos, call_stack) tuple of
    # ThreadContext.checkpoint).
    checkpoint: tuple[int, int, int, tuple[int, ...]] | None = None
    # The previous producer of this instruction's destination register,
    # for walk-back rename repair on squash.
    prev_producer: "DynInst | None" = None

    @property
    def pc(self) -> int:
        return self.static.pc

    @property
    def opclass(self) -> OpClass:
        return self.static.opclass

    @property
    def is_ready(self) -> bool:
        return not self.src_tags

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DynInst(tag={self.tag}, t{self.thread}, pc={self.pc:#x}, "
            f"{self.opclass.name}, {self.state.name})"
        )
