"""Per-benchmark workload personalities.

The paper evaluates on 18 SPEC CPU2000 benchmarks (Table 1) combined
into 9 four-thread mixes (Table 3).  SPEC binaries are unavailable
here, so each benchmark is replaced by a *personality*: a parameter set
for the synthetic program generator that reproduces the
characteristics the paper's results actually depend on — instruction
mix, ILP (dependence distance), memory footprint and locality (hence
L1/L2 miss rates), branch predictability, the fraction of dynamically
dead code (hence ACE instruction fraction), and the fraction of
conditionally consumed values (hence the per-PC ACE classification
accuracy of Table 1).

Parameter values are hand-calibrated from well-known SPEC2000
characterizations: ``mcf`` is a pointer-chasing memory monster, ``swim``
/ ``lucas`` / ``equake`` / ``galgel`` are FP memory-bound, ``bzip2`` /
``gcc`` / ``eon`` / ``perlbmk`` / ``crafty`` / ``gap`` are integer
compute-bound, ``mesa`` / ``facerec`` are FP compute-bound, and
``twolf`` / ``vpr`` are integer codes with poor locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import MemPattern, OpClass


@dataclass(frozen=True)
class BenchmarkPersonality:
    """Generator parameters for one synthetic benchmark."""

    name: str
    category: str  # "cpu" or "mem" (Table 3 grouping)
    # Instruction mix over non-control, non-terminator slots.
    # Fractions are normalized by the generator.
    mix: dict[OpClass, float] = field(default_factory=dict)
    # Control-flow shape.
    block_size_mean: int = 6  # instructions per basic block (incl. terminator)
    num_units: int = 14  # loop units in the program skeleton
    diamond_frac: float = 0.5  # probability a loop body contains an if-diamond
    call_frac: float = 0.15  # probability a unit body calls a function
    loop_trip_mean: float = 24.0  # mean loop trip count (geometric)
    branch_predictability: float = 0.85
    branch_taken_bias: float = 0.55
    # Data-flow shape.
    dep_distance_mean: float = 8.0  # how far back operands reach (bigger = more ILP)
    load_chain_frac: float = 0.0  # P(load address depends on a previous load)
    load_dep_frac: float = 0.12  # P(an ALU op consumes the latest load result)
    # Memory behaviour.
    mem_footprint: int = 512 * 1024  # bytes of the main data region
    mem_pattern_weights: dict[MemPattern, float] = field(
        default_factory=lambda: {MemPattern.HOT: 0.6, MemPattern.SEQUENTIAL: 0.3, MemPattern.RANDOM: 0.1}
    )
    hot_set_size: int = 8 * 1024
    # Page locality of RANDOM accesses: n/16 stay in a 64KB window.
    rand_page_local_16: int = 15
    # SEQUENTIAL streams advance one stride per 2**seq_advance_shift
    # instructions (CPU codes re-walk resident buffers; MEM codes sweep).
    seq_advance_shift: int = 8
    # Reliability structure.
    dead_frac: float = 0.25  # P(an instruction's result feeds a dead chain)
    cond_consume_frac: float = 0.03  # P(a value is consumed on only one diamond arm)
    nop_frac: float = 0.06
    prefetch_frac: float = 0.01
    # Paper reference values for the experiment harness (Table 1).
    ref_pc_accuracy: float | None = None

    def validate(self) -> None:
        if not self.mix:
            raise ValueError(f"{self.name}: empty instruction mix")
        if any(w < 0 for w in self.mix.values()):
            raise ValueError(f"{self.name}: negative mix weight")
        for frac_name in ("dead_frac", "cond_consume_frac", "nop_frac", "prefetch_frac",
                          "diamond_frac", "call_frac", "load_chain_frac"):
            v = getattr(self, frac_name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{self.name}: {frac_name}={v} out of [0, 1]")
        if self.block_size_mean < 2:
            raise ValueError(f"{self.name}: block_size_mean must be >= 2")
        if self.mem_footprint <= 0:
            raise ValueError(f"{self.name}: mem_footprint must be positive")


def _int_mix(load=0.25, store=0.12, imult=0.02, idiv=0.004) -> dict[OpClass, float]:
    rest = 1.0 - load - store - imult - idiv
    return {
        OpClass.IALU: rest,
        OpClass.IMULT: imult,
        OpClass.IDIV: idiv,
        OpClass.LOAD: load,
        OpClass.STORE: store,
    }


def _fp_mix(load=0.3, store=0.12, falu=0.28, fmult=0.12, fdiv=0.015, fsqrt=0.003,
            imult=0.005) -> dict[OpClass, float]:
    rest = 1.0 - load - store - falu - fmult - fdiv - fsqrt - imult
    return {
        OpClass.IALU: rest,
        OpClass.IMULT: imult,
        OpClass.FALU: falu,
        OpClass.FMULT: fmult,
        OpClass.FDIV: fdiv,
        OpClass.FSQRT: fsqrt,
        OpClass.LOAD: load,
        OpClass.STORE: store,
    }


_MB = 1024 * 1024
_KB = 1024

# Locality presets.
_TIGHT = {MemPattern.HOT: 0.78, MemPattern.SEQUENTIAL: 0.18, MemPattern.RANDOM: 0.04}
_STREAM = {MemPattern.HOT: 0.15, MemPattern.SEQUENTIAL: 0.75, MemPattern.RANDOM: 0.10}
_POINTER = {MemPattern.HOT: 0.10, MemPattern.SEQUENTIAL: 0.10, MemPattern.RANDOM: 0.80}
_LOOSE = {MemPattern.HOT: 0.35, MemPattern.SEQUENTIAL: 0.25, MemPattern.RANDOM: 0.40}


PERSONALITIES: dict[str, BenchmarkPersonality] = {
    p.name: p
    for p in [
        # ----- integer, compute-bound (CPU group) -----
        BenchmarkPersonality(
            name="bzip2", category="cpu", mix=_int_mix(load=0.26, store=0.12),
            block_size_mean=7, dep_distance_mean=7.0, mem_footprint=256 * _KB,
            mem_pattern_weights=_TIGHT, branch_predictability=0.88,
            dead_frac=0.40, cond_consume_frac=0.22, ref_pc_accuracy=0.878,
        ),
        BenchmarkPersonality(
            name="eon", category="cpu", mix=_fp_mix(load=0.24, store=0.14, falu=0.20, fmult=0.10),
            block_size_mean=6, dep_distance_mean=9.0, mem_footprint=192 * _KB,
            mem_pattern_weights=_TIGHT, branch_predictability=0.90,
            dead_frac=0.38, cond_consume_frac=0.22, ref_pc_accuracy=0.876,
        ),
        BenchmarkPersonality(
            name="gcc", category="cpu", mix=_int_mix(load=0.25, store=0.13),
            block_size_mean=5, dep_distance_mean=7.0, mem_footprint=320 * _KB,
            mem_pattern_weights=_TIGHT, branch_predictability=0.86,
            branch_taken_bias=0.6, dead_frac=0.44, cond_consume_frac=0.035,
            ref_pc_accuracy=0.965,
        ),
        BenchmarkPersonality(
            name="perlbmk", category="cpu", mix=_int_mix(load=0.27, store=0.15),
            block_size_mean=5, dep_distance_mean=8.0, mem_footprint=256 * _KB,
            mem_pattern_weights=_TIGHT, branch_predictability=0.92,
            dead_frac=0.36, cond_consume_frac=0.001, ref_pc_accuracy=0.999,
        ),
        BenchmarkPersonality(
            name="gap", category="cpu", mix=_int_mix(load=0.24, store=0.11, imult=0.03),
            block_size_mean=6, dep_distance_mean=8.0, mem_footprint=256 * _KB,
            mem_pattern_weights=_TIGHT, branch_predictability=0.9,
            dead_frac=0.40, cond_consume_frac=0.04, ref_pc_accuracy=0.959,
        ),
        BenchmarkPersonality(
            name="facerec", category="cpu", mix=_fp_mix(load=0.28, store=0.1),
            block_size_mean=8, dep_distance_mean=11.0, mem_footprint=384 * _KB,
            mem_pattern_weights=_TIGHT, branch_predictability=0.93,
            dead_frac=0.34, cond_consume_frac=0.06, ref_pc_accuracy=0.937,
        ),
        BenchmarkPersonality(
            name="crafty", category="cpu", mix=_int_mix(load=0.28, store=0.09, imult=0.03),
            block_size_mean=6, dep_distance_mean=9.0, mem_footprint=256 * _KB,
            mem_pattern_weights=_TIGHT, branch_predictability=0.87,
            dead_frac=0.42, cond_consume_frac=0.18, ref_pc_accuracy=0.894,
        ),
        BenchmarkPersonality(
            name="mesa", category="cpu", mix=_fp_mix(load=0.25, store=0.14, falu=0.24),
            block_size_mean=7, dep_distance_mean=10.0, mem_footprint=256 * _KB,
            mem_pattern_weights=_TIGHT, branch_predictability=0.9,
            dead_frac=0.40, cond_consume_frac=0.5, ref_pc_accuracy=0.749,
        ),
        # ----- memory-bound (MEM group) -----
        BenchmarkPersonality(
            name="mcf", category="mem", mix=_int_mix(load=0.34, store=0.10),
            block_size_mean=5, dep_distance_mean=4.0, load_chain_frac=0.45,
            mem_footprint=64 * _MB, mem_pattern_weights=_POINTER,
            branch_predictability=0.8, dead_frac=0.38, cond_consume_frac=0.039,
            seq_advance_shift=5, ref_pc_accuracy=0.961,
        ),
        BenchmarkPersonality(
            name="equake", category="mem", mix=_fp_mix(load=0.34, store=0.12),
            block_size_mean=8, dep_distance_mean=6.0, mem_footprint=32 * _MB,
            mem_pattern_weights=_LOOSE, branch_predictability=0.92,
            dead_frac=0.32, cond_consume_frac=0.009, seq_advance_shift=5, ref_pc_accuracy=0.991,
        ),
        BenchmarkPersonality(
            name="vpr", category="mem", mix=_int_mix(load=0.3, store=0.11),
            block_size_mean=5, dep_distance_mean=6.0, mem_footprint=16 * _MB,
            mem_pattern_weights=_LOOSE, branch_predictability=0.82,
            dead_frac=0.40, cond_consume_frac=0.3, seq_advance_shift=5, ref_pc_accuracy=0.818,
        ),
        BenchmarkPersonality(
            name="swim", category="mem", mix=_fp_mix(load=0.33, store=0.15),
            block_size_mean=10, dep_distance_mean=12.0, mem_footprint=48 * _MB,
            mem_pattern_weights=_STREAM, branch_predictability=0.97,
            branch_taken_bias=0.85, dead_frac=0.30, cond_consume_frac=0.002,
            seq_advance_shift=5, ref_pc_accuracy=0.998,
        ),
        BenchmarkPersonality(
            name="lucas", category="mem", mix=_fp_mix(load=0.3, store=0.14, fmult=0.18),
            block_size_mean=10, dep_distance_mean=10.0, mem_footprint=32 * _MB,
            mem_pattern_weights=_STREAM, branch_predictability=0.96,
            branch_taken_bias=0.8, dead_frac=0.32, cond_consume_frac=0.008,
            seq_advance_shift=5, ref_pc_accuracy=0.992,
        ),
        BenchmarkPersonality(
            name="galgel", category="mem", mix=_fp_mix(load=0.3, store=0.1, falu=0.32),
            block_size_mean=9, dep_distance_mean=11.0, mem_footprint=24 * _MB,
            mem_pattern_weights=_LOOSE, branch_predictability=0.95,
            dead_frac=0.34, cond_consume_frac=0.012, seq_advance_shift=5, ref_pc_accuracy=0.988,
        ),
        BenchmarkPersonality(
            name="twolf", category="mem", mix=_int_mix(load=0.29, store=0.1),
            block_size_mean=5, dep_distance_mean=6.0, mem_footprint=8 * _MB,
            mem_pattern_weights=_LOOSE, branch_predictability=0.84,
            dead_frac=0.40, cond_consume_frac=0.042, seq_advance_shift=5, ref_pc_accuracy=0.958,
        ),
        # ----- Table 1-only benchmarks (not in any Table 3 mix) -----
        BenchmarkPersonality(
            name="applu", category="mem", mix=_fp_mix(load=0.31, store=0.13),
            block_size_mean=11, dep_distance_mean=13.0, mem_footprint=24 * _MB,
            mem_pattern_weights=_STREAM, branch_predictability=0.97,
            branch_taken_bias=0.85, dead_frac=0.30, cond_consume_frac=0.002,
            seq_advance_shift=5, ref_pc_accuracy=0.998,
        ),
        BenchmarkPersonality(
            name="mgrid", category="mem", mix=_fp_mix(load=0.34, store=0.1),
            block_size_mean=12, dep_distance_mean=14.0, mem_footprint=24 * _MB,
            mem_pattern_weights=_STREAM, branch_predictability=0.98,
            branch_taken_bias=0.88, dead_frac=0.28, cond_consume_frac=0.001,
            seq_advance_shift=5, ref_pc_accuracy=0.999,
        ),
        BenchmarkPersonality(
            name="wupwise", category="cpu", mix=_fp_mix(load=0.28, store=0.1, fmult=0.16),
            block_size_mean=9, dep_distance_mean=12.0, mem_footprint=384 * _KB,
            mem_pattern_weights=_TIGHT, branch_predictability=0.95,
            dead_frac=0.34, cond_consume_frac=0.025, ref_pc_accuracy=0.975,
        ),
    ]
}


def get_personality(name: str) -> BenchmarkPersonality:
    """Look up a benchmark personality by SPEC2000 name."""
    try:
        return PERSONALITIES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(PERSONALITIES)}"
        ) from None
