"""Seeded synthetic-program generator.

Generates a :class:`~repro.isa.program.SyntheticProgram` from a
:class:`~repro.isa.personalities.BenchmarkPersonality`.  The emitted
program is a control-flow skeleton of loop *units* — each a loop whose
body optionally contains an if-diamond and a function call — populated
with instructions whose operand structure realizes the personality's
dependence-width, dead-code and conditional-consumption parameters.

Reliability structure — the generator separates three populations so
the per-PC ACE classification experiment (Table 1) is meaningful:

* **Live values** are tracked in an *unread pool*: every live write is
  guaranteed to be read on every execution path (consumers pop the
  pool; leftovers are folded by reduction instructions whose final
  value feeds the loop back-branch or a store).  Their instances are
  deterministically ACE.
* **Dead chains** write a dedicated register subset read only by other
  dead instructions; transitively they never reach a store/branch, so
  their instances are deterministically un-ACE.
* **Conditionally consumed values** flip per instance: diamond
  providers are stored only on the (rarely taken) consuming arm, and
  loop-exit providers are rewritten every iteration but read only after
  the loop exits (the paper's "ACE only in the last iteration"
  example).  These produce the false positives of Table 1.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.isa.instruction import (
    BranchBehavior,
    MemBehavior,
    MemPattern,
    OpClass,
    StaticInst,
)
from repro.isa.personalities import BenchmarkPersonality
from repro.isa.program import BasicBlock, SyntheticProgram

# Architectural register file layout used by generated code.
NUM_INT_REGS = 32
NUM_FP_REGS = 32
INT_LIVE = list(range(0, 16))
# The first few live registers are *invariants*: rewritten only once per
# loop activation (like base pointers / globals in real code), they give
# fallback reads a long-ready value instead of a serializing recent one.
INT_INV = INT_LIVE[:4]
INT_ROT = INT_LIVE[4:]
INT_DEAD = list(range(16, 22))
INT_COND = list(range(22, 31))  # conditionally-consumed values
INT_COND_DIAMOND = INT_COND[:6]  # consumed on one diamond arm only
INT_COND_LOOP = INT_COND[6:]  # consumed only after loop exit
INT_INDUCTION = 31
FP_BASE = NUM_INT_REGS
FP_LIVE = [FP_BASE + r for r in range(0, 20)]
FP_INV = FP_LIVE[:3]
FP_ROT = FP_LIVE[3:]
FP_DEAD = [FP_BASE + r for r in range(20, 28)]
FP_COND = [FP_BASE + r for r in range(28, 32)]  # diamond-consumed FP values

_DATA_REGION_BASE = 0x10_0000
_PC_BASE = 0x1000
_PC_STEP = 4

_FP_OPS = frozenset({OpClass.FALU, OpClass.FMULT, OpClass.FDIV, OpClass.FSQRT})


class _UnreadPool:
    """Live values written but not yet read, per register class.

    The pool is the generator's guarantee machinery: a value enters on
    write and leaves on first read; whatever remains at a flush point is
    folded into reduction instructions so no live write is ever left
    unread on the executed path.
    """

    __slots__ = ("int_vals", "fp_vals", "width")

    def __init__(self, width: int):
        self.int_vals: list[int] = []
        self.fp_vals: list[int] = []
        self.width = max(width, 1)

    def pool(self, fp: bool) -> list[int]:
        return self.fp_vals if fp else self.int_vals

    def push(self, reg: int, fp: bool) -> None:
        self.pool(fp).append(reg)

    def pop(self, fp: bool, rng: np.random.Generator) -> int | None:
        pool = self.pool(fp)
        if not pool:
            return None
        if len(pool) >= self.width:
            return pool.pop(0)  # force-consume the oldest
        return pool.pop(int(rng.integers(0, len(pool))))

    def snapshot(self) -> tuple[list[int], list[int]]:
        return list(self.int_vals), list(self.fp_vals)

    def restore(self, snap: tuple[list[int], list[int]]) -> None:
        self.int_vals, self.fp_vals = list(snap[0]), list(snap[1])


class ProgramGenerator:
    """Generate synthetic programs for a benchmark personality.

    The same ``(personality, seed)`` pair always yields the identical
    program, and all of the program's dynamic behaviour is itself a
    pure function of the seed, so simulations are fully reproducible.
    """

    def __init__(self, personality: BenchmarkPersonality, seed: int = 0):
        personality.validate()
        self.p = personality
        self.seed = seed
        # zlib.crc32 is process-stable (str.__hash__ is salted and would
        # break run-to-run reproducibility).
        name_key = zlib.crc32(personality.name.encode())
        self.rng = np.random.default_rng(
            np.random.SeedSequence([seed & 0x7FFFFFFF, name_key & 0x7FFFFFFF])
        )
        self._next_pc = _PC_BASE
        self._blocks: list[BasicBlock] = []
        self._unread = _UnreadPool(width=max(3, round(personality.dep_distance_mean * 1.5)))
        self._live_int_rr = 0
        self._live_fp_rr = 0
        self._dead_rr = 0
        self._last_load_dest: int | None = None
        self._mix_ops, self._mix_weights = self._normalized_mix()
        # Program-level data regions (shared by all static memory
        # instructions, like real arrays/heaps): one hot region that
        # fits in L1, four streaming arrays, one random-access heap.
        self._hot_base = _DATA_REGION_BASE
        heap = _DATA_REGION_BASE + (1 << 24)
        # The four streaming arrays together span the declared footprint
        # (each is footprint/4), so a personality's total data working
        # set is ~2x its footprint (arrays + random heap).
        self._seq_span = max(personality.mem_footprint // 4, 1 << 14)
        self._seq_bases = [heap + i * self._seq_span for i in range(4)]
        self._rand_base = heap + 5 * max(personality.mem_footprint, 1 << 16)
        self._fp_share = sum(w for o, w in personality.mix.items() if o in _FP_OPS)
        ld = personality.mix.get(OpClass.LOAD, 0.0)
        self._fp_load_share = min(0.9, self._fp_share * 2.0) if ld else 0.0

    # ------------------------------------------------------------------
    def _normalized_mix(self) -> tuple[list[OpClass], np.ndarray]:
        ops = list(self.p.mix.keys())
        w = np.array([self.p.mix[o] for o in ops], dtype=float)
        total = w.sum()
        if total <= 0:
            raise ValueError("instruction mix weights sum to zero")
        return ops, w / total

    def _pc(self) -> int:
        pc = self._next_pc
        self._next_pc += _PC_STEP
        return pc

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(bid=len(self._blocks))
        self._blocks.append(block)
        return block

    # ------------------------------------------------------------------
    # Operand machinery
    # ------------------------------------------------------------------
    def _fresh_live_dest(self, fp: bool, insts: list[StaticInst] | None = None) -> int:
        """Round-robin a live destination register and mark it unread.

        Never overwrites a register whose value is still unread (that
        would silently kill a "guaranteed live" value); under register
        pressure, pending values are folded first via a reduction
        instruction appended to ``insts``.
        """
        pool_regs = FP_LIVE if fp else INT_LIVE
        pending = self._unread.pool(fp)
        if insts is not None and len(pending) >= len(pool_regs) - 1:
            a, b = pending.pop(0), pending.pop(0)
            op = OpClass.FALU if fp else OpClass.IALU
            dest = self._pick_free_live_reg(fp)
            insts.append(StaticInst(pc=self._pc(), opclass=op, dest=dest, srcs=(a, b)))
            self._unread.push(dest, fp)
        reg = self._pick_free_live_reg(fp)
        self._unread.push(reg, fp)
        return reg

    def _pick_free_live_reg(self, fp: bool) -> int:
        """Next round-robin rotating live register not currently holding
        an unread value (invariant registers are never rotated over)."""
        pool_regs = FP_ROT if fp else INT_ROT
        pending = self._unread.pool(fp)
        for _ in range(len(pool_regs)):
            if fp:
                reg = FP_ROT[self._live_fp_rr % len(FP_ROT)]
                self._live_fp_rr += 1
            else:
                reg = INT_ROT[self._live_int_rr % len(INT_ROT)]
                self._live_int_rr += 1
            if reg not in pending:
                return reg
        # Pathological pressure: sacrifice the oldest pending value.
        return pending.pop(0)

    def _dead_dest(self, fp: bool) -> int:
        pool = FP_DEAD if fp else INT_DEAD
        reg = pool[self._dead_rr % len(pool)]
        self._dead_rr += 1
        return reg

    def _live_src(self, fp: bool) -> int:
        """A source read: prefer an unread value (guaranteeing its
        liveness); fall back to an arbitrary already-read live register
        (extra reads are always safe)."""
        reg = self._unread.pop(fp, self.rng)
        if reg is not None:
            return reg
        return self._any_live_reg(fp)

    def _any_live_reg(self, fp: bool) -> int:
        """A safe extra read: usually an invariant (long-ready, like a
        base pointer), sometimes a rotating live register."""
        if self.rng.random() < 0.65:
            pool = FP_INV if fp else INT_INV
        else:
            pool = FP_ROT if fp else INT_ROT
        return int(self.rng.choice(pool))

    def _dead_src(self, fp: bool) -> int:
        pool = FP_DEAD if fp else INT_DEAD
        return int(self.rng.choice(pool))

    # ------------------------------------------------------------------
    # Instruction emission
    # ------------------------------------------------------------------
    def _mem_behavior(self) -> MemBehavior:
        patterns = list(self.p.mem_pattern_weights.keys())
        weights = np.array([self.p.mem_pattern_weights[k] for k in patterns], dtype=float)
        weights = weights / weights.sum()
        pattern = patterns[int(self.rng.choice(len(patterns), p=weights))]
        footprint = self.p.mem_footprint
        if pattern == MemPattern.HOT:
            base = self._hot_base
        elif pattern == MemPattern.SEQUENTIAL:
            base = self._seq_bases[int(self.rng.integers(0, len(self._seq_bases)))]
            footprint = self._seq_span
        else:
            base = self._rand_base
        stride = int(self.rng.choice([8, 8, 8, 16, 32]))
        return MemBehavior(
            pattern=pattern,
            base=base,
            footprint=footprint,
            stride=stride,
            advance_shift=self.p.seq_advance_shift,
            hot_size=self.p.hot_set_size,
            page_local_16=self.p.rand_page_local_16,
        )

    def _emit_store(self, insts: list[StaticInst], value_reg: int | None = None) -> None:
        if value_reg is None:
            fp_value = self.rng.random() < self._fp_share
            value_reg = self._live_src(fp_value)
        addr = self._live_src(fp=False)
        insts.append(
            StaticInst(
                pc=self._pc(), opclass=OpClass.STORE,
                srcs=(value_reg, addr), mem=self._mem_behavior(),
            )
        )

    def _emit_body_inst(self, insts: list[StaticInst]) -> None:
        """Append one non-control instruction sampled from the mix."""
        r = self.rng.random()
        if r < self.p.nop_frac:
            insts.append(StaticInst(pc=self._pc(), opclass=OpClass.NOP))
            return
        if r < self.p.nop_frac + self.p.prefetch_frac:
            insts.append(
                StaticInst(
                    pc=self._pc(), opclass=OpClass.PREFETCH,
                    srcs=(self._any_live_reg(fp=False),), mem=self._mem_behavior(),
                )
            )
            return
        op = self._mix_ops[int(self.rng.choice(len(self._mix_ops), p=self._mix_weights))]
        dead = self.rng.random() < self.p.dead_frac
        if op == OpClass.LOAD:
            self._emit_load(insts, dead)
        elif op == OpClass.STORE:
            self._emit_store(insts)
        else:
            fp = op in _FP_OPS
            if dead:
                # Dead chain: reads stay inside the dead population (or
                # re-read live registers, which is harmless).
                if self.rng.random() < 0.5:
                    srcs: tuple[int, ...] = (self._dead_src(fp), self._dead_src(fp))
                else:
                    srcs = (self._any_live_reg(fp), self._dead_src(fp))
                dest = self._dead_dest(fp)
            else:
                first = None
                # Memory-bound codes hang much of their computation off
                # recent load results; consuming the pending load value
                # makes an L2 miss stall its dependence tree in the IQ.
                if (
                    not fp
                    and self._last_load_dest is not None
                    and self.rng.random() < self.p.load_dep_frac
                ):
                    pool = self._unread.pool(False)
                    if self._last_load_dest in pool:
                        pool.remove(self._last_load_dest)
                    first = self._last_load_dest
                if first is None:
                    first = self._live_src(fp)
                # A sparing second operand keeps chains independent
                # (ILP); when used, it prefers the latest load result —
                # the operand fan-out of real code that makes an L2-miss
                # return wake a burst of instructions at once.
                if self.rng.random() < 0.3:
                    if not fp and self._last_load_dest is not None and self.rng.random() < 0.5:
                        second = self._last_load_dest
                    else:
                        second = self._any_live_reg(fp)
                    srcs = (first, second)
                else:
                    srcs = (first,)
                dest = self._fresh_live_dest(fp, insts)
            insts.append(StaticInst(pc=self._pc(), opclass=op, dest=dest, srcs=srcs))

    def _emit_load(self, insts: list[StaticInst], dead: bool) -> None:
        chained = (
            self._last_load_dest is not None
            and self.rng.random() < self.p.load_chain_frac
        )
        if chained:
            addr_reg = self._last_load_dest
        elif dead:
            # A dead load's read must not satisfy the unread pool: an
            # un-ACE reader cannot keep a live value live.
            addr_reg = self._any_live_reg(fp=False)
        else:
            addr_reg = self._live_src(fp=False)
        fp_dest = self.rng.random() < self._fp_load_share
        dest = self._dead_dest(fp_dest) if dead else self._fresh_live_dest(fp_dest, insts)
        insts.append(
            StaticInst(
                pc=self._pc(), opclass=OpClass.LOAD, dest=dest,
                srcs=(addr_reg,), mem=self._mem_behavior(),
            )
        )
        if not fp_dest and not dead:
            self._last_load_dest = dest

    def _emit_induction(self, insts: list[StaticInst]) -> None:
        insts.append(
            StaticInst(
                pc=self._pc(), opclass=OpClass.IALU,
                dest=INT_INDUCTION, srcs=(INT_INDUCTION,),
            )
        )

    def _flush_unread(self, insts: list[StaticInst], keep: int = 1) -> None:
        """Fold pending unread values down to ``keep`` per class using
        reduction instructions (each reads two pending values, writes a
        new pending one)."""
        for fp, op in ((False, OpClass.IALU), (True, OpClass.FALU)):
            pool = self._unread.pool(fp)
            while len(pool) > keep and len(pool) >= 2:
                a = pool.pop(0)
                b = pool.pop(0)
                dest = self._pick_free_live_reg(fp)
                self._unread.push(dest, fp)
                insts.append(StaticInst(pc=self._pc(), opclass=op, dest=dest, srcs=(a, b)))
        # Any remaining FP value is consumed by a store (branches can
        # only read integer registers).
        fp_pool = self._unread.pool(True)
        if keep == 0 and fp_pool:
            self._emit_store(insts, value_reg=fp_pool.pop(0))
        int_pool = self._unread.pool(False)
        if keep == 0 and int_pool:
            self._emit_store(insts, value_reg=int_pool.pop(0))

    def _drain_fp_for_tail(self, insts: list[StaticInst]) -> int | None:
        """Before a loop back-branch: fold everything to one *integer*
        value the branch can read; stores drain FP leftovers."""
        self._flush_unread(insts, keep=1)
        fp_pool = self._unread.pool(True)
        while fp_pool:
            self._emit_store(insts, value_reg=fp_pool.pop(0))
        int_pool = self._unread.pool(False)
        return int_pool.pop(0) if int_pool else None

    def _fill_block(self, block: BasicBlock, n_body: int) -> None:
        self._emit_induction(block.insts)
        for _ in range(max(n_body, 0)):
            self._emit_body_inst(block.insts)

    def _block_size(self) -> int:
        return int(self.rng.poisson(max(self.p.block_size_mean - 2, 0))) + 2

    def _cond_branch(self, taken_block: int, fall_block: int,
                     bias: float | None = None,
                     predictability: float | None = None,
                     extra_src: int | None = None) -> StaticInst:
        srcs: tuple[int, ...] = (INT_INDUCTION,)
        if extra_src is not None:
            srcs = (INT_INDUCTION, extra_src)
        return StaticInst(
            pc=self._pc(), opclass=OpClass.BRANCH, srcs=srcs,
            branch=BranchBehavior(
                taken_bias=self.p.branch_taken_bias if bias is None else bias,
                predictability=(
                    self.p.branch_predictability if predictability is None else predictability
                ),
            ),
            taken_block=taken_block, fall_block=fall_block,
        )

    # ------------------------------------------------------------------
    # Program skeleton
    # ------------------------------------------------------------------
    def generate(self) -> SyntheticProgram:
        """Build and validate the program."""
        p = self.p
        n_funcs = max(1, round(p.num_units * p.call_frac)) if p.call_frac > 0 else 0

        # Functions first: loop-body stream lengths must be known when
        # the units' back-branches are created.
        self._funcs: list[tuple[int, int]] = []  # (entry block id, stream length)
        for _ in range(n_funcs):
            self._funcs.append(self._gen_function())

        unit_entries: list[int] = []
        unit_tails: list[BasicBlock] = []

        # Registers written by unit i's loop-exit providers, consumed by
        # unit i+1's entry (i.e. only after unit i's loop has exited).
        pending_consume: list[int] = []
        for i in range(p.num_units):
            entry_id, tail, pending_consume = self._gen_unit(i, pending_consume)
            unit_entries.append(entry_id)
            unit_tails.append(tail)

        # Chain units; the final unit falls into a wrap block that jumps
        # back to unit 0.
        wrap = self._new_block()
        self._fill_block(wrap, 1)
        for reg in pending_consume:
            self._emit_store(wrap.insts, value_reg=reg)
        self._flush_unread(wrap.insts, keep=0)  # nothing leaks across the outer loop
        wrap.insts.append(
            StaticInst(pc=self._pc(), opclass=OpClass.JUMP, taken_block=unit_entries[0])
        )
        for i, tail in enumerate(unit_tails):
            nxt = unit_entries[i + 1] if i + 1 < len(unit_tails) else wrap.bid
            term = tail.insts[-1]
            term.fall_block = nxt

        program = SyntheticProgram(
            name=p.name, blocks=self._blocks, entry=unit_entries[0], seed=self.seed
        )
        program.validate()
        return program

    def _gen_unit(
        self, unit_idx: int, pending_consume: list[int]
    ) -> tuple[int, BasicBlock, list[int]]:
        """Generate one loop unit.

        Returns ``(entry block id, tail block, providers)`` where
        ``providers`` are the loop-exit provider registers written in
        this unit's tail, consumed by the *next* unit's entry.
        """
        p = self.p
        path_len = 0  # stream length of one loop iteration
        entry = self._new_block()
        self._emit_induction(entry.insts)
        # Refresh one invariant register per activation (base-pointer
        # style: written rarely, read everywhere).
        inv = INT_INV[unit_idx % len(INT_INV)]
        entry.insts.append(
            StaticInst(pc=self._pc(), opclass=OpClass.IALU, dest=inv, srcs=(inv,))
        )
        if self._fp_share > 0:
            finv = FP_INV[unit_idx % len(FP_INV)]
            entry.insts.append(
                StaticInst(pc=self._pc(), opclass=OpClass.FALU, dest=finv, srcs=(finv,))
            )
        # Consume the previous unit's loop-exit providers: this block
        # executes only after that unit's loop has exited.
        for reg in pending_consume:
            self._emit_store(entry.insts, value_reg=reg)
        for _ in range(max(self._block_size() - 2, 1)):
            self._emit_body_inst(entry.insts)

        current = entry
        # High-cond-consumption personalities always carry the diamond
        # (it is the conditional-consumption vehicle).
        diamond_p = max(p.diamond_frac, 1.0 if p.cond_consume_frac >= 0.08 else 0.0)
        if self.rng.random() < diamond_p:
            current, diamond_len = self._gen_diamond(entry)
            path_len += diamond_len
        path_len += len(entry.insts)

        if self._funcs and self.rng.random() < p.call_frac:
            callblk = self._new_block()
            current.fall_block = callblk.bid
            self._fill_block(callblk, max(self._block_size() - 2, 1))
            after = self._new_block()
            fentry, flen = self._funcs[int(self.rng.integers(0, len(self._funcs)))]
            call = StaticInst(
                pc=self._pc(), opclass=OpClass.CALL,
                taken_block=fentry, fall_block=after.bid,
            )
            callblk.insts.append(call)
            self._fill_block(after, max(self._block_size() - 2, 1))
            path_len += len(callblk.insts) + flen + len(after.insts)
            current = after

        tail = self._new_block()
        current.fall_block = tail.bid
        self._fill_block(tail, self._block_size() - 2)
        # Loop-exit providers: rewritten every iteration, consumed only
        # after the loop exits, so only the final instance is ACE.
        providers: list[int] = []
        if p.cond_consume_frac > 0:
            # Integer-only personalities cannot host FP diamond
            # providers, so their loop-exit population carries more of
            # the conditional-consumption budget.
            mult = 24.0 if self._fp_share == 0 else 12.0
            n_loop = min(
                len(INT_COND_LOOP), int(self.rng.poisson(p.cond_consume_frac * mult))
            )
            for j in range(n_loop):
                reg = INT_COND_LOOP[(unit_idx + j) % len(INT_COND_LOOP)]
                if reg in providers:
                    continue
                tail.insts.append(
                    StaticInst(
                        pc=self._pc(), opclass=OpClass.IALU, dest=reg,
                        srcs=(self._any_live_reg(fp=False),),
                    )
                )
                providers.append(reg)
        # Fold all pending live values into one integer the back-branch
        # reads, so nothing leaks across iterations.
        extra = self._drain_fp_for_tail(tail.insts)
        # Quasi-constant trip count per static loop (what real loops do,
        # and what history-based predictors learn).  Activations enter
        # the iteration counter at a random phase, so the mean iteration
        # count per activation is ~half the counter period: double it so
        # the realized mean matches ``loop_trip_mean``.
        trip = max(3, 2 * int(round(self.rng.normal(p.loop_trip_mean, p.loop_trip_mean / 4))))
        path_len += len(tail.insts) + 1  # + the back-branch itself
        back = self._cond_branch(
            taken_block=entry.bid, fall_block=-1,  # patched by caller
            bias=(trip - 1.0) / trip, predictability=0.0, extra_src=extra,
        )
        back.branch.loop_period = path_len
        back.branch.loop_trip = trip
        tail.insts.append(back)
        return entry.bid, tail, providers

    def _gen_diamond(self, pre: BasicBlock) -> tuple[BasicBlock, int]:
        """Append an if-diamond after ``pre``; returns ``(join block,
        stream length of arm + join)``.  Arms are padded to the same
        instruction count so every path through the diamond advances the
        stream position equally (constant loop periods).

        Conditional consumption: values written in ``pre`` into
        diamond-COND registers are stored (consumed → ACE) on the taken
        arm and overwritten (dead) on the fall arm.  Arm-internal live
        values are fully folded inside each arm, with each arm's final
        value written to a shared φ-merge register read in the join, so
        arm instructions themselves stay deterministically ACE.
        """
        p = self.p
        cond_regs: list[tuple[int, bool]] = []  # (reg, is_fp)
        # Conditional consumption is concentrated in few diamonds with
        # many providers each (rather than one provider everywhere):
        # the same mispredicted-instance budget with far fewer
        # hard-to-predict branches polluting the global history.
        p_cond = min(1.0, p.cond_consume_frac * 2.5)
        if p.cond_consume_frac > 0 and self.rng.random() < p_cond:
            want = max(1, round(p.cond_consume_frac * 28.0 / p_cond))
            n_int = min(len(INT_COND_DIAMOND), want)
            # FP providers only for personalities that execute FP code.
            n_fp = min(len(FP_COND), want - n_int) if self._fp_share > 0 else 0
            for i in range(n_int):
                cond_regs.append((INT_COND_DIAMOND[i], False))
            for i in range(n_fp):
                cond_regs.append((FP_COND[i], True))
        for reg, fp in cond_regs:
            op = OpClass.FALU if fp else OpClass.IALU
            src = self._any_live_reg(fp)
            pre.insts.append(
                StaticInst(pc=self._pc(), opclass=op, dest=reg, srcs=(src,))
            )
        # Settle pre-block live values before control diverges.
        self._flush_unread(pre.insts, keep=1)
        pre_snapshot = self._unread.snapshot()

        arm_taken = self._new_block()
        arm_fall = self._new_block()
        join = self._new_block()

        if cond_regs:
            # High-cond-consumption personalities take the consuming arm
            # rarely, so most provider instances die unconsumed.  These
            # branches must stay per-instance random (both arms execute).
            arm_bias = max(0.10, 0.5 - 1.5 * p.cond_consume_frac)
            predictability = min(p.branch_predictability, 0.6)
        elif self.rng.random() < p.branch_predictability:
            # Most real branches are statically one-sided; deterministic
            # outcomes are what makes gshare learnable.
            arm_bias = 1.0 if self.rng.random() < 0.5 else 0.0
            predictability = 1.0
        else:
            arm_bias, predictability = 0.5, 0.0
        br = self._cond_branch(
            taken_block=arm_taken.bid, fall_block=arm_fall.bid,
            bias=arm_bias, predictability=predictability,
        )
        pre.insts.append(br)

        phi_reg = self._pick_free_live_reg(fp=False)

        def _gen_arm(arm: BasicBlock, consume: bool) -> None:
            self._unread.restore(pre_snapshot)
            self._fill_block(arm, max(self._block_size() - 2, 1))
            if consume:
                for reg, _fp in cond_regs:  # consumed → instances on this arm are ACE
                    self._emit_store(arm.insts, value_reg=reg)
            else:
                for reg, fp in cond_regs:  # overwritten → prior instance was dead
                    op = OpClass.FALU if fp else OpClass.IALU
                    arm.insts.append(
                        StaticInst(
                            pc=self._pc(), opclass=op, dest=reg,
                            srcs=(self._any_live_reg(fp),),
                        )
                    )
            # Fold everything the arm created into the φ register.
            self._flush_unread(arm.insts, keep=1)
            fp_pool = self._unread.pool(True)
            while fp_pool:
                self._emit_store(arm.insts, value_reg=fp_pool.pop(0))
            int_pool = self._unread.pool(False)
            src = int_pool.pop(0) if int_pool else self._any_live_reg(fp=False)
            arm.insts.append(
                StaticInst(pc=self._pc(), opclass=OpClass.IALU, dest=phi_reg, srcs=(src,))
            )
            arm.fall_block = join.bid

        _gen_arm(arm_taken, consume=True)
        _gen_arm(arm_fall, consume=False)

        # Equalize arm stream lengths with dead filler so both paths
        # advance the fetch stream identically.
        short, long_ = sorted((arm_taken, arm_fall), key=lambda b: len(b.insts))
        while len(short.insts) < len(long_.insts):
            short.insts.append(
                StaticInst(
                    pc=self._pc(), opclass=OpClass.IALU,
                    dest=self._dead_dest(False), srcs=(self._dead_src(False),),
                )
            )

        # The join reads the φ register, making both arms' chains ACE
        # regardless of which arm executed.
        self._unread.restore(pre_snapshot)
        self._unread.push(phi_reg, fp=False)
        self._fill_block(join, max(self._block_size() - 2, 1))
        # Guarantee the φ value is consumed even if no join instruction
        # happened to pop it.
        if phi_reg in self._unread.pool(False):
            self._unread.pool(False).remove(phi_reg)
            self._emit_store(join.insts, value_reg=phi_reg)
        return join, len(arm_taken.insts) + len(join.insts)

    def _gen_function(self) -> tuple[int, int]:
        """Generate a small callee function; returns ``(entry block id,
        stream length including the RET)``."""
        outer = self._unread.snapshot()
        self._unread.int_vals = []
        self._unread.fp_vals = []
        entry = self._new_block()
        self._fill_block(entry, self._block_size())
        tail = self._new_block()
        entry.fall_block = tail.bid
        self._fill_block(tail, max(self._block_size() - 2, 1))
        # Nothing may escape the function unread (dynamic callers vary).
        self._flush_unread(tail.insts, keep=0)
        tail.insts.append(StaticInst(pc=self._pc(), opclass=OpClass.RET))
        self._unread.restore(outer)
        return entry.bid, len(entry.insts) + len(tail.insts)


def generate_program(name: str, seed: int = 0) -> SyntheticProgram:
    """Convenience: generate the synthetic stand-in for a SPEC2000
    benchmark by name."""
    from repro.isa.personalities import get_personality

    return ProgramGenerator(get_personality(name), seed=seed).generate()
