"""Synthetic ISA and workload substrate.

The paper evaluates on SPEC CPU2000 Alpha binaries; those are
unavailable here, so this package provides the closest synthetic
equivalent: a compact RISC-like ISA (:mod:`repro.isa.instruction`),
control-flow-graph programs (:mod:`repro.isa.program`), a seeded
generator that emits programs from per-benchmark *personalities*
(:mod:`repro.isa.generator`), and the 18 SPEC2000 personalities used in
Table 1 / Table 3 of the paper (:mod:`repro.isa.personalities`).
"""

from repro.isa.instruction import DynInst, OpClass, StaticInst
from repro.isa.program import BasicBlock, SyntheticProgram, ThreadContext
from repro.isa.generator import ProgramGenerator
from repro.isa.personalities import (
    BenchmarkPersonality,
    PERSONALITIES,
    get_personality,
)

__all__ = [
    "OpClass",
    "StaticInst",
    "DynInst",
    "BasicBlock",
    "SyntheticProgram",
    "ThreadContext",
    "ProgramGenerator",
    "BenchmarkPersonality",
    "PERSONALITIES",
    "get_personality",
]
