"""Synthetic program representation and per-thread execution context.

A :class:`SyntheticProgram` is a control-flow graph of
:class:`BasicBlock`.  A :class:`ThreadContext` walks that graph the way
a fetch unit does: it exposes the instruction at the current fetch
point, computes the *actual* outcome of control instructions, and can
be redirected down a (possibly wrong) predicted path and later restored
from a checkpoint when the branch resolves.

Determinism and cheap wrong-path rollback are the two design
constraints.  All dynamic behaviour — branch outcomes and memory
addresses — is a pure function of ``(pc, stream_pos, seed)`` where
``stream_pos`` is a per-thread monotonically increasing fetch counter.
A checkpoint is therefore just ``(block, index, stream_pos, call
stack)`` — four small values per in-flight control instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.isa.instruction import (
    BranchBehavior,
    MemBehavior,
    MemPattern,
    OpClass,
    StaticInst,
)

_MASK64 = (1 << 64) - 1
_INV_2_53 = 1.0 / (1 << 53)


def mix64(a: int, b: int, seed: int) -> int:
    """SplitMix64-style deterministic mixer of three integers.

    Used for every pseudo-random decision in the workload model so that
    a program replays identically for a given seed regardless of
    wrong-path excursions.
    """
    z = (a * 0x9E3779B97F4A7C15 + b * 0xBF58476D1CE4E5B9 + seed * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 30
    z = (z * 0xBF58476D1CE4E5B9) & _MASK64
    z ^= z >> 27
    z = (z * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return z


def u01(a: int, b: int, seed: int) -> float:
    """Uniform float in [0, 1) derived from :func:`mix64`."""
    return (mix64(a, b, seed) >> 11) * _INV_2_53


@dataclass
class BasicBlock:
    """A straight-line run of instructions.

    If the final instruction is a control instruction its
    ``taken_block``/``fall_block`` fields give the successors; otherwise
    execution falls through to ``fall_block``.
    """

    bid: int
    insts: list[StaticInst] = field(default_factory=list)
    fall_block: int = -1

    @property
    def terminator(self) -> StaticInst | None:
        if self.insts and self.insts[-1].opclass.is_control:
            return self.insts[-1]
        return None

    def validate(self) -> None:
        for inst in self.insts[:-1]:
            if inst.opclass.is_control:
                raise ValueError(
                    f"block {self.bid}: control instruction pc={inst.pc:#x} not at block end"
                )
        if self.terminator is None and self.fall_block < 0:
            raise ValueError(f"block {self.bid} has neither terminator nor fall-through")


@dataclass
class SyntheticProgram:
    """A complete synthetic program image."""

    name: str
    blocks: list[BasicBlock]
    entry: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        self._pc_map: dict[int, StaticInst] = {}
        for block in self.blocks:
            for inst in block.insts:
                if inst.pc in self._pc_map:
                    raise ValueError(f"duplicate pc {inst.pc:#x} in program {self.name}")
                self._pc_map[inst.pc] = inst

    def validate(self) -> None:
        nblocks = len(self.blocks)
        if not (0 <= self.entry < nblocks):
            raise ValueError("entry block out of range")
        for block in self.blocks:
            block.validate()
            term = block.terminator
            targets: list[int] = []
            if term is not None:
                if term.opclass in (OpClass.BRANCH,):
                    targets = [term.taken_block, term.fall_block]
                elif term.opclass in (OpClass.JUMP, OpClass.CALL):
                    targets = [term.taken_block]
                # RET targets are dynamic (call stack)
            else:
                targets = [block.fall_block]
            for t in targets:
                if not (0 <= t < nblocks):
                    raise ValueError(f"block {block.bid}: successor {t} out of range")

    @property
    def num_static_insts(self) -> int:
        return sum(len(b.insts) for b in self.blocks)

    def inst_at(self, pc: int) -> StaticInst:
        return self._pc_map[pc]

    def all_insts(self) -> Iterator[StaticInst]:
        for block in self.blocks:
            yield from block.insts


class ThreadContext:
    """Fetch-point state of one hardware thread running a program.

    The fetch unit uses it as follows::

        st = ctx.peek()
        pos = ctx.stream_pos
        if st.opclass.is_control:
            taken, target = ctx.resolve_control(st)   # oracle outcome
            ctx.advance_control(st, followed_taken, followed_target)
        else:
            ctx.advance()

    ``followed_*`` may differ from the oracle outcome when the branch
    predictor mispredicts; the pipeline restores the context with
    :meth:`restore` when the branch executes.
    """

    __slots__ = ("program", "seed", "block", "index", "stream_pos", "call_stack", "fetched")

    MAX_CALL_DEPTH = 16

    def __init__(self, program: SyntheticProgram, seed: int = 0):
        self.program = program
        self.seed = seed ^ program.seed
        self.block = program.entry
        self.index = 0
        self.stream_pos = 0
        self.call_stack: list[int] = []
        self.fetched = 0  # total instructions handed to the fetch unit

    # ------------------------------------------------------------------
    # Fetch-point inspection
    # ------------------------------------------------------------------
    def peek(self) -> StaticInst:
        return self.program.blocks[self.block].insts[self.index]

    def at_block_end(self) -> bool:
        return self.index == len(self.program.blocks[self.block].insts) - 1

    # ------------------------------------------------------------------
    # Oracle behaviour
    # ------------------------------------------------------------------
    def branch_taken(self, st: StaticInst, stream_pos: int) -> bool:
        """Actual outcome of a conditional branch instance.

        Loop back-branches exit deterministically every ``loop_trip``
        iterations (iteration index derived from the stream position —
        the loop body has constant stream length).  Data-dependent
        branches interpolate between always-bias-direction and an
        independent biased coin flip per instance.
        """
        bb: BranchBehavior = st.branch  # type: ignore[assignment]
        if bb.loop_period > 0:
            return (stream_pos // bb.loop_period) % bb.loop_trip != bb.loop_trip - 1
        deterministic = 1.0 if bb.taken_bias >= 0.5 else 0.0
        eff_bias = bb.predictability * deterministic + (1.0 - bb.predictability) * bb.taken_bias
        return u01(st.pc, stream_pos, self.seed) < eff_bias

    def resolve_control(self, st: StaticInst) -> tuple[bool, int]:
        """Oracle (taken, target block) of the control instruction at the
        current fetch point."""
        op = st.opclass
        if op == OpClass.BRANCH:
            taken = self.branch_taken(st, self.stream_pos)
            return taken, (st.taken_block if taken else st.fall_block)
        if op in (OpClass.JUMP, OpClass.CALL):
            return True, st.taken_block
        if op == OpClass.RET:
            if self.call_stack:
                return True, self.call_stack[-1]
            return True, self.program.entry  # underflow: restart program
        raise ValueError(f"{op.name} is not a control opclass")

    def mem_address(self, st: StaticInst, stream_pos: int) -> int:
        """Actual effective address of a memory instruction instance."""
        mb: MemBehavior = st.mem  # type: ignore[assignment]
        if mb.pattern == MemPattern.SEQUENTIAL:
            # Advance ~one stride per executed loop body (not per
            # instruction), so consecutive executions of this load walk
            # the array with spatial locality.
            offset = ((stream_pos >> mb.advance_shift) * mb.stride + (st.pc & 0xFF8)) % mb.footprint
        elif mb.pattern == MemPattern.HOT:
            span = max(mb.hot_size // 8, 1)
            offset = (mix64(st.pc, stream_pos, self.seed) % span) * 8
        else:  # RANDOM
            # Irregular accesses still exhibit page-level locality in
            # real programs: ``page_local_16``/16 of them land in a 64KB
            # hot window (TLB- and L2-friendly); the rest range over the
            # whole footprint.  Programs also show coarse *phase*
            # behaviour ("a program's reliability domain characteristics
            # exhibit time varying behavior", Section 1): every other
            # ~16K-instruction phase has markedly poorer locality, so
            # interval AVF traces vary the way DVM expects.
            r = mix64(st.pc, stream_pos, self.seed)
            page_local = mb.page_local_16
            if (stream_pos >> 14) & 1:
                page_local = max(page_local - 6, 2)
            if (r & 15) < page_local:
                span = max(min(mb.footprint, 65536) // 8, 1)
            else:
                span = max(mb.footprint // 8, 1)
            offset = ((r >> 4) % span) * 8
        return mb.base + offset

    # ------------------------------------------------------------------
    # Advancing / rollback
    # ------------------------------------------------------------------
    def checkpoint(self) -> tuple[int, int, int, tuple[int, ...]]:
        return (self.block, self.index, self.stream_pos, tuple(self.call_stack))

    def restore(self, cp: tuple[int, int, int, tuple[int, ...]]) -> None:
        self.block, self.index, self.stream_pos = cp[0], cp[1], cp[2]
        self.call_stack = list(cp[3])

    def advance(self) -> None:
        """Advance past a non-control instruction."""
        self.stream_pos += 1
        self.fetched += 1
        block = self.program.blocks[self.block]
        if self.index + 1 < len(block.insts):
            self.index += 1
        else:
            self.block = block.fall_block
            self.index = 0

    def advance_control(self, st: StaticInst, taken: bool, target: int) -> None:
        """Advance past a control instruction down the *followed* path.

        ``target`` is the block the front-end decided to follow (the
        predicted one; it may be wrong).  For a not-taken conditional
        branch the caller passes ``st.fall_block``.
        """
        self.stream_pos += 1
        self.fetched += 1
        op = st.opclass
        if op == OpClass.CALL:
            if len(self.call_stack) >= self.MAX_CALL_DEPTH:
                self.call_stack.pop(0)
            # Return site: the CALL's own fall-through block.
            ret = st.fall_block
            if ret < 0:
                ret = self.program.blocks[self.block].fall_block
            self.call_stack.append(ret if ret >= 0 else self.program.entry)
        elif op == OpClass.RET:
            if self.call_stack:
                self.call_stack.pop()
        self.block = target
        self.index = 0
