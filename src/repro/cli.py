"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``         simulate one workload mix under a chosen configuration
``timeline``    render the merged interval/decision timeline of one run
``sweep``       run a parameter grid (optionally parallel, checkpointed)
``figures``     run several figure/table suites (optionally parallel)
``monitor``     attach to a live (or finished) sweep's status document
``perf``        performance observability: bench suite, regression gate,
                Chrome-trace export (see ``repro.perf.cli``)
``profile``     offline per-PC vulnerability profiling of one benchmark
``reproduce``   regenerate one of the paper's tables/figures
``list``        enumerate benchmarks, mixes, policies and experiments
``lint``        simulator-aware static analysis (alias of
                ``python -m repro.lint``; see ``repro lint hotpaths``)

Examples::

    python -m repro run --mix MEM-A --scheduler visa --dispatch opt2
    python -m repro run --mix CPU-A --dvm 0.5 --cycles 24000
    python -m repro timeline --mix MEM-A --dvm 0.5 --dispatch opt2 --chart
    python -m repro timeline --input timeline.jsonl --trace-out timeline-trace.json
    python -m repro sweep --mix MEM-A --axis scheduler=oldest,visa \\
        --axis dispatch=none,opt1,opt2 --jobs 4 --resume --serve :9099
    python -m repro monitor reports/sweep-ab12cd34ef56.jsonl
    python -m repro figures fig5 fig8 --jobs 2 --resume --save
    python -m repro perf run --repeats 3
    python -m repro perf compare --tolerance 0.25
    python -m repro perf trace --mix MEM-A --dvm 0.5 -o trace.json
    python -m repro profile mesa --instructions 50000
    python -m repro reproduce fig5
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.backend import backend_names
from repro.harness import experiments
from repro.harness import parallel as parallel_mod
from repro.harness.report import format_table, save_report
from repro.harness.runner import BenchScale, mix_harmonic_ipc, run_recorded, run_sim
from repro.harness.sweep import NAMED_METRICS
from repro.perf.cli import register_perf_cli
from repro.reliability.cli import register_avf_cli
from repro.telemetry.bus import EventBus
from repro.telemetry.timeline import (
    TimelineRecorder,
    read_jsonl,
    render_timeline,
    timeline_json,
)
from repro.telemetry.topics import (
    TOPIC_HARNESS_POINT,
    TOPIC_INTERVAL_CLOSE,
    TOPIC_RELIABILITY_ESTIMATE,
    TOPIC_WORKER_HEALTH,
)
from repro.isa.generator import generate_program
from repro.isa.personalities import PERSONALITIES
from repro.reliability.avf import Structure
from repro.reliability.profiling import profile_program
from repro.workloads import MIXES

#: ``reproduce``/``figures`` share the suite registry with the engine.
_EXPERIMENTS = dict(experiments.SUITES)


def _scale_from_args(args) -> BenchScale:
    scale = BenchScale.from_env()
    overrides = {}
    if getattr(args, "cycles", None):
        overrides["max_cycles"] = args.cycles
        if args.cycles <= scale.warmup_cycles:
            overrides["warmup_cycles"] = args.cycles // 5
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "full", False):
        overrides["groups"] = ("A", "B", "C")
    if overrides:
        import dataclasses

        scale = dataclasses.replace(scale, **overrides)
    return scale


def cmd_run(args) -> int:
    scale = _scale_from_args(args)
    if args.record:
        res, recorder, _ = run_recorded(
            args.mix,
            scale,
            fetch_policy=args.fetch_policy,
            scheduler=args.scheduler,
            dispatch=args.dispatch,
            dvm_target=_dvm_target(args, scale),
            profiled=not args.no_profile,
            profile_stages=False,
            backend=args.backend,
        )
        n = recorder.to_jsonl(args.record, manifest=res.manifest)
        print(f"recorded {n} events to {args.record}")
    else:
        res = run_sim(
            args.mix,
            scale,
            fetch_policy=args.fetch_policy,
            scheduler=args.scheduler,
            dispatch=args.dispatch,
            dvm_target=_dvm_target(args, scale),
            profiled=not args.no_profile,
            backend=args.backend,
        )
    mix = MIXES[args.mix]
    print(f"mix {args.mix} ({', '.join(mix.benchmarks)})")
    print(f"  cycles                {res.cycles}  (warm-up {res.warmup_cycles})")
    print(f"  committed             {res.committed}")
    print(f"  throughput IPC        {res.ipc:.3f}")
    print(
        "  per-thread IPC        "
        + ", ".join(f"{b}={x:.2f}" for b, x in zip(mix.benchmarks, res.per_thread_ipc))
    )
    print(f"  harmonic IPC          {mix_harmonic_ipc(args.mix, scale, res, args.fetch_policy):.3f}")
    print(f"  IQ AVF                {res.iq_avf:.3f}  (max interval {res.max_iq_avf:.3f})")
    for s in Structure:
        print(f"    {s.name:3s} AVF           {res.overall_avf[s]:.3f}")
    print(f"  branch accuracy       {res.bp_accuracy:.1%}")
    print(f"  L1D miss rate         {res.l1d_miss_rate:.1%}")
    print(f"  L2 misses             {res.l2_misses}")
    print(f"  squashed (wrong path) {res.squashed}")
    print(f"  ACE fraction          {res.ace_fraction:.1%}")
    if args.dvm is not None:
        base = run_sim(
            args.mix, scale, fetch_policy=args.fetch_policy, backend=args.backend
        )
        target = args.dvm * base.max_iq_avf
        print(f"  PVE @ {args.dvm}*MaxAVF     {res.pve(target):.1%} (baseline {base.pve(target):.1%})")
    return 0


def _dvm_target(args, scale) -> float | None:
    if getattr(args, "dvm", None) is None:
        return None
    base = run_sim(
        args.mix,
        scale,
        fetch_policy=args.fetch_policy,
        backend=getattr(args, "backend", "reference"),
    )
    return args.dvm * base.max_online_estimate


def cmd_timeline(args) -> int:
    if args.input:
        manifest, events = read_jsonl(args.input)
        title = f"decision timeline ({args.input})"
        profile = None
    else:
        scale = _scale_from_args(args)
        res, recorder, profile = run_recorded(
            args.mix,
            scale,
            fetch_policy=args.fetch_policy,
            scheduler=args.scheduler,
            dispatch=args.dispatch,
            dvm_target=_dvm_target(args, scale),
            profile_stages=not args.no_self_profile,
            backend=args.backend,
        )
        manifest, events = res.manifest, recorder.events
        dvm_part = "" if args.dvm is None else f", dvm={args.dvm}"
        title = (
            f"decision timeline [{args.mix}, fetch={args.fetch_policy}, "
            f"dispatch={args.dispatch or 'none'}{dvm_part}]"
        )
        if args.save:
            n = recorder.to_jsonl(args.save, manifest=manifest)
            print(f"recorded {n} events to {args.save}", file=sys.stderr)
    if args.trace_out:
        from repro.perf.chrome_trace import write_chrome_trace

        n = write_chrome_trace(args.trace_out, recorded=events, manifest=manifest)
        print(f"wrote {n} trace events to {args.trace_out}", file=sys.stderr)
    if args.json:
        print(json.dumps(timeline_json(events, manifest), indent=2, sort_keys=True))
    else:
        print(
            render_timeline(
                events, title=title, chart=args.chart, max_rows=args.max_rows
            ),
            end="",
        )
        if profile is not None:
            print(profile.format())
    return 0


def _parse_value(text: str):
    """CLI literal -> python value (none/true/false/int/float/str)."""
    t = text.strip()
    low = t.lower()
    if low in ("none", "null"):
        return None
    if low == "true":
        return True
    if low == "false":
        return False
    for cast in (int, float):
        try:
            return cast(t)
        except ValueError:
            pass
    return t


def _parse_axis(spec: str) -> tuple[str, list]:
    name, sep, rest = spec.partition("=")
    if not sep or not name.strip() or not rest.strip():
        raise argparse.ArgumentTypeError(
            f"axis must look like NAME=V1,V2,... (got {spec!r})"
        )
    return name.strip(), [_parse_value(v) for v in rest.split(",")]


def _parse_kwargs(spec: str) -> dict:
    out = {}
    for pair in spec.split(","):
        name, sep, value = pair.partition("=")
        if not sep or not name.strip():
            raise argparse.ArgumentTypeError(
                f"expected comma-separated NAME=VALUE pairs (got {spec!r})"
            )
        out[name.strip()] = _parse_value(value)
    return out


def _progress_printer(event) -> None:
    p = event.payload
    worker = f" w{p['worker']}" if p["worker"] >= 0 else ""
    timing = f" {p['elapsed_ms']:.0f}ms" if p["status"] == "done" else ""
    vuln = ""
    avf = p.get("avf")
    if avf is not None:
        vuln += f" avf={avf:.3f}"
    rob_avf = p.get("rob_avf")
    if rob_avf is not None:
        vuln += f" rob={rob_avf:.3f}"
    print(
        f"  [{p['status']:>7}] {p['label']}{worker}{timing}{vuln}",
        file=sys.stderr,
        flush=True,
    )


def _engine_kwargs(args) -> dict:
    checkpoint: str | bool | None = True
    if getattr(args, "no_checkpoint", False):
        checkpoint = None
    elif getattr(args, "checkpoint", None):
        checkpoint = args.checkpoint
    monitor: parallel_mod.MonitorConfig | None = None
    if getattr(args, "serve", None) or getattr(args, "log", None):
        from repro.telemetry.export import parse_serve_spec

        monitor = parallel_mod.MonitorConfig(
            serve=parse_serve_spec(args.serve) if args.serve else None,
            log_path=args.log,
        )
    return dict(
        jobs=args.jobs,
        checkpoint=checkpoint,
        resume=args.resume,
        timeout=args.timeout,
        retries=args.retries,
        monitor=monitor,
    )


def _report_engine_run(run, what: str) -> None:
    if run.checkpoint_path:
        print(
            f"{what}: {run.executed} executed, {run.cached} resumed from "
            f"checkpoint {run.checkpoint_path}",
            file=sys.stderr,
        )
    for rep in run.skipped:
        print(
            f"warning: skipped {rep.label} after {rep.attempts} attempt(s): "
            f"{rep.error}",
            file=sys.stderr,
        )


def cmd_sweep(args) -> int:
    scale = _scale_from_args(args)
    axes = dict(args.axis)
    metric_names = args.metric or ["ipc", "iq_avf", "max_iq_avf"]
    metrics = {name: NAMED_METRICS[name] for name in metric_names}
    normalize_to = _parse_kwargs(args.normalize_to) if args.normalize_to else None
    fixed: dict = {}
    for spec in args.fixed or []:
        fixed.update(_parse_kwargs(spec))
    if args.backend != "reference" and "backend" not in axes:
        # Ride along as a plain run_sim kwarg; an explicit --fixed or
        # backend=... axis wins.  Reference stays implicit so existing
        # checkpoint signatures keep resuming.
        fixed.setdefault("backend", args.backend)

    bus = EventBus()
    # Besides the engine's own harness.point stream, record whatever
    # pool workers relay onto the parent bus (interval samples, online
    # AVF estimates, heartbeats) so --record/--trace-out show per-worker
    # in-flight telemetry, not just point boundaries.
    recorder = TimelineRecorder(
        bus,
        topics=(
            TOPIC_HARNESS_POINT,
            TOPIC_INTERVAL_CLOSE,
            TOPIC_RELIABILITY_ESTIMATE,
            TOPIC_WORKER_HEALTH,
        ),
    )
    if not args.quiet:
        bus.subscribe(TOPIC_HARNESS_POINT, _progress_printer)
    try:
        with recorder:
            run = parallel_mod.parallel_sweep(
                args.mix,
                scale,
                axes,
                metrics,
                normalize_to,
                strict=args.strict,
                bus=bus,
                **_engine_kwargs(args),
                **fixed,
            )
    except (RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    title = f"sweep [{args.mix}] " + " x ".join(
        f"{k}({len(v)})" for k, v in axes.items()
    )
    print(format_table(run.rows, title))
    _report_engine_run(run, "sweep")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(run.rows, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(run.rows)} rows to {args.out}", file=sys.stderr)
    if args.record:
        n = recorder.to_jsonl(args.record)
        print(f"recorded {n} harness events to {args.record}", file=sys.stderr)
    if args.trace_out:
        from repro.perf.chrome_trace import write_chrome_trace

        n = write_chrome_trace(args.trace_out, recorded=recorder.events)
        print(f"wrote {n} trace events to {args.trace_out}", file=sys.stderr)
    return 0


def cmd_figures(args) -> int:
    scale = _scale_from_args(args)
    names = args.experiments or sorted(_EXPERIMENTS)
    unknown = sorted(set(names) - set(_EXPERIMENTS))
    if unknown:
        print(
            f"unknown experiment(s) {unknown}; one of {sorted(_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    bus = EventBus()
    if not args.quiet:
        bus.subscribe(TOPIC_HARNESS_POINT, _progress_printer)
    try:
        run = parallel_mod.parallel_figures(
            names, scale, strict=args.strict, bus=bus, **_engine_kwargs(args)
        )
    except (RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for name in names:
        if name not in run.results:
            continue
        rows = run.results[name]
        if isinstance(rows, dict):
            rows = [rows]
        text = format_table(rows, _EXPERIMENTS[name][1])
        print(text)
        if args.save:
            path = save_report(name, text)
            print(f"saved to {path}", file=sys.stderr)
    _report_engine_run(run, "figures")
    return 0


def cmd_monitor(args) -> int:
    from repro.telemetry.export import watch_status

    try:
        return watch_status(
            args.checkpoint, interval_s=args.interval, once=args.once
        )
    except FileNotFoundError:
        print(
            f"error: no status document for {args.checkpoint!r} — run the "
            f"sweep with --jobs 2+ (monitoring writes <checkpoint>.status.json)",
            file=sys.stderr,
        )
        return 1
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


def cmd_profile(args) -> int:
    if args.benchmark not in PERSONALITIES:
        print(f"unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    program = generate_program(args.benchmark, seed=args.seed)
    prof = profile_program(
        program, n_instructions=args.instructions, window=args.window
    )
    ref = PERSONALITIES[args.benchmark].ref_pc_accuracy
    print(f"benchmark {args.benchmark}")
    print(f"  static instructions   {program.num_static_insts}")
    print(f"  profiled instances    {args.instructions}")
    print(f"  PC-classification acc {prof.accuracy:.1%}  (paper: {ref:.1%})")
    print(f"  ACE instance fraction {prof.ace_fraction:.1%}")
    print(f"  static PCs tagged ACE {prof.static_ace_fraction:.1%}")
    return 0


def cmd_reproduce(args) -> int:
    if args.experiment not in _EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; one of {sorted(_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    func, title = _EXPERIMENTS[args.experiment]
    scale = _scale_from_args(args)
    rows = func(scale)
    if isinstance(rows, dict):  # fig2-style payloads
        rows = [rows]
    text = format_table(rows, title)
    print(text)
    if args.save:
        path = save_report(args.experiment, text)
        print(f"saved to {path}")
    return 0


def cmd_list(_args) -> int:
    print("benchmarks (Table 1 personalities):")
    for name, p in sorted(PERSONALITIES.items()):
        print(f"  {name:9s} [{p.category}]  paper Table-1 accuracy {p.ref_pc_accuracy:.1%}")
    print("\nmixes (Table 3):")
    for name, mix in sorted(MIXES.items()):
        print(f"  {name:6s} {', '.join(mix.benchmarks)}")
    print("\nfetch policies:  icount, stall, flush, dg, pdg, rr")
    print("schedulers:      oldest, visa")
    print("backends:        " + ", ".join(backend_names()))
    print("dispatch:        none, opt1, opt1-linear, opt2")
    print("experiments:     " + ", ".join(sorted(_EXPERIMENTS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMT issue-queue soft-error reliability reproduction (ICPP 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload mix")
    p_run.add_argument("--mix", default="CPU-A", choices=sorted(MIXES))
    p_run.add_argument("--fetch-policy", default="icount",
                       choices=["icount", "stall", "flush", "dg", "pdg", "rr"])
    p_run.add_argument("--scheduler", default="oldest", choices=["oldest", "visa"])
    p_run.add_argument("--dispatch", default=None,
                       choices=["opt1", "opt1-linear", "opt2"])
    p_run.add_argument("--dvm", type=float, default=None, metavar="FRAC",
                       help="enable DVM targeting FRAC * baseline MaxAVF")
    p_run.add_argument("--backend", default="reference", choices=backend_names(),
                       help="simulation engine (default: reference interpreter)")
    p_run.add_argument("--cycles", type=int, default=None)
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--no-profile", action="store_true",
                       help="skip offline ACE profiling (all hints = ACE)")
    p_run.add_argument("--record", metavar="PATH", default=None,
                       help="save the decision/interval event stream as JSONL")
    p_run.set_defaults(func=cmd_run)

    p_tl = sub.add_parser(
        "timeline", help="merged interval/decision timeline of one run"
    )
    p_tl.add_argument("--mix", default="MEM-A", choices=sorted(MIXES))
    p_tl.add_argument("--fetch-policy", default="icount",
                      choices=["icount", "stall", "flush", "dg", "pdg", "rr"])
    p_tl.add_argument("--scheduler", default="oldest", choices=["oldest", "visa"])
    p_tl.add_argument("--dispatch", default=None,
                      choices=["opt1", "opt1-linear", "opt2"])
    p_tl.add_argument("--dvm", type=float, default=None, metavar="FRAC",
                      help="enable DVM targeting FRAC * baseline MaxAVF")
    p_tl.add_argument("--backend", default="reference", choices=backend_names(),
                      help="simulation engine (default: reference interpreter)")
    p_tl.add_argument("--cycles", type=int, default=None)
    p_tl.add_argument("--seed", type=int, default=None)
    p_tl.add_argument("--input", metavar="PATH", default=None,
                      help="render a previously recorded JSONL instead of simulating")
    p_tl.add_argument("--json", action="store_true",
                      help="emit the timeline as a JSON document")
    p_tl.add_argument("--chart", action="store_true",
                      help="append an online-AVF sparkline")
    p_tl.add_argument("--max-rows", type=int, default=None,
                      help="truncate the text timeline after N rows")
    p_tl.add_argument("--save", metavar="PATH", default=None,
                      help="also save the recording as JSONL")
    p_tl.add_argument("--trace-out", metavar="PATH", default=None,
                      help="export the timeline as Chrome trace-event JSON "
                           "(loadable in Perfetto/about:tracing)")
    p_tl.add_argument("--no-self-profile", action="store_true",
                      help="skip the per-stage wall-time self-profile")
    p_tl.set_defaults(func=cmd_timeline)

    p_sw = sub.add_parser(
        "sweep", help="parameter grid sweep (parallel, checkpointed)"
    )
    p_sw.add_argument("--mix", default="CPU-A", choices=sorted(MIXES))
    p_sw.add_argument("--axis", action="append", type=_parse_axis, required=True,
                      metavar="NAME=V1,V2,...",
                      help="one run_sim kwarg axis (repeatable)")
    p_sw.add_argument("--metric", action="append", choices=sorted(NAMED_METRICS),
                      help="metric to extract (repeatable; default: "
                           "ipc, iq_avf, max_iq_avf)")
    p_sw.add_argument("--normalize-to", metavar="KWARGS", default=None,
                      help="baseline kwargs every metric is divided by, "
                           "e.g. scheduler=oldest,dispatch=none")
    p_sw.add_argument("--fixed", action="append", metavar="KWARGS",
                      help="fixed run_sim kwargs applied to every point")
    p_sw.add_argument("--jobs", type=int, default=0,
                      help="worker processes (0/1 = run in-process)")
    p_sw.add_argument("--resume", action="store_true",
                      help="reuse completed points from the checkpoint shard")
    p_sw.add_argument("--checkpoint", metavar="PATH", default=None,
                      help="checkpoint shard path (default: auto under reports/)")
    p_sw.add_argument("--no-checkpoint", action="store_true",
                      help="disable the on-disk checkpoint shard")
    p_sw.add_argument("--timeout", type=float, default=None,
                      help="per-point wait timeout in seconds (pool mode only)")
    p_sw.add_argument("--retries", type=int, default=2,
                      help="retry rounds before a failing point is skipped")
    p_sw.add_argument("--strict", action="store_true",
                      help="fail instead of skipping exhausted points")
    p_sw.add_argument("--backend", default="reference", choices=backend_names(),
                      help="simulation engine for every point (default: "
                           "reference; also usable as --fixed backend=fast "
                           "or as a backend=... axis)")
    p_sw.add_argument("--cycles", type=int, default=None)
    p_sw.add_argument("--seed", type=int, default=None)
    p_sw.add_argument("--quiet", action="store_true",
                      help="suppress per-point progress lines")
    p_sw.add_argument("--out", metavar="PATH", default=None,
                      help="write the result rows as JSON")
    p_sw.add_argument("--record", metavar="PATH", default=None,
                      help="save the harness.point event stream as JSONL")
    p_sw.add_argument("--trace-out", metavar="PATH", default=None,
                      help="export per-worker point tracks as Chrome trace JSON")
    p_sw.add_argument("--serve", metavar="[HOST]:PORT", default=None,
                      help="serve live /metrics (Prometheus) and /status "
                           "(JSON) while the sweep runs, e.g. --serve :9099")
    p_sw.add_argument("--log", metavar="PATH", default=None,
                      help="append structured JSONL run logs (engine + "
                           "workers, correlated by run id)")
    p_sw.set_defaults(func=cmd_sweep)

    p_fig = sub.add_parser(
        "figures", help="run several figure/table suites (parallel)"
    )
    p_fig.add_argument("experiments", nargs="*",
                       help="suites to run (default: all registered)")
    p_fig.add_argument("--jobs", type=int, default=0)
    p_fig.add_argument("--resume", action="store_true")
    p_fig.add_argument("--checkpoint", metavar="PATH", default=None)
    p_fig.add_argument("--no-checkpoint", action="store_true")
    p_fig.add_argument("--timeout", type=float, default=None)
    p_fig.add_argument("--retries", type=int, default=1)
    p_fig.add_argument("--strict", action="store_true")
    p_fig.add_argument("--cycles", type=int, default=None)
    p_fig.add_argument("--seed", type=int, default=None)
    p_fig.add_argument("--full", action="store_true",
                       help="all Table 3 groups (paper averaging)")
    p_fig.add_argument("--save", action="store_true",
                       help="write reports/<name>.txt per suite")
    p_fig.add_argument("--quiet", action="store_true")
    p_fig.add_argument("--serve", metavar="[HOST]:PORT", default=None,
                       help="serve live /metrics and /status while running")
    p_fig.add_argument("--log", metavar="PATH", default=None,
                       help="append structured JSONL run logs")
    p_fig.set_defaults(func=cmd_figures)

    p_mon = sub.add_parser(
        "monitor", help="attach to a sweep's live/final status document"
    )
    p_mon.add_argument("checkpoint",
                       help="checkpoint shard or .status.json path")
    p_mon.add_argument("--interval", type=float, default=2.0,
                       help="seconds between refreshes (default 2)")
    p_mon.add_argument("--once", action="store_true",
                       help="render one snapshot and exit")
    p_mon.set_defaults(func=cmd_monitor)

    register_perf_cli(sub)
    register_avf_cli(sub)

    p_prof = sub.add_parser("profile", help="offline vulnerability profiling")
    p_prof.add_argument("benchmark")
    p_prof.add_argument("--instructions", type=int, default=40_000)
    p_prof.add_argument("--window", type=int, default=8_000)
    p_prof.add_argument("--seed", type=int, default=1)
    p_prof.set_defaults(func=cmd_profile)

    p_rep = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    p_rep.add_argument("experiment")
    p_rep.add_argument("--cycles", type=int, default=None)
    p_rep.add_argument("--seed", type=int, default=None)
    p_rep.add_argument("--full", action="store_true",
                       help="all Table 3 groups (paper averaging)")
    p_rep.add_argument("--save", action="store_true", help="write reports/<name>.txt")
    p_rep.set_defaults(func=cmd_reproduce)

    p_list = sub.add_parser("list", help="enumerate benchmarks/mixes/experiments")
    p_list.set_defaults(func=cmd_list)

    sub.add_parser(
        "lint",
        help="simulator-aware static analysis (alias of python -m repro.lint)",
        add_help=False,
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `lint` forwards verbatim (argparse.REMAINDER refuses a leading
    # option, so the dispatch happens before the top-level parser).
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
