"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``         simulate one workload mix under a chosen configuration
``timeline``    render the merged interval/decision timeline of one run
``perf``        performance observability: bench suite, regression gate,
                Chrome-trace export (see ``repro.perf.cli``)
``profile``     offline per-PC vulnerability profiling of one benchmark
``reproduce``   regenerate one of the paper's tables/figures
``list``        enumerate benchmarks, mixes, policies and experiments

Examples::

    python -m repro run --mix MEM-A --scheduler visa --dispatch opt2
    python -m repro run --mix CPU-A --dvm 0.5 --cycles 24000
    python -m repro timeline --mix MEM-A --dvm 0.5 --dispatch opt2 --chart
    python -m repro timeline --input timeline.jsonl --trace-out timeline-trace.json
    python -m repro perf run --repeats 3
    python -m repro perf compare --tolerance 0.25
    python -m repro perf trace --mix MEM-A --dvm 0.5 -o trace.json
    python -m repro profile mesa --instructions 50000
    python -m repro reproduce fig5
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.harness import experiments
from repro.harness.report import format_table, save_report
from repro.harness.runner import BenchScale, mix_harmonic_ipc, run_recorded, run_sim
from repro.perf.cli import register_perf_cli
from repro.telemetry.timeline import read_jsonl, render_timeline, timeline_json
from repro.isa.generator import generate_program
from repro.isa.personalities import PERSONALITIES
from repro.reliability.avf import Structure
from repro.reliability.profiling import profile_program
from repro.workloads import MIXES

_EXPERIMENTS = {
    "fig1": (experiments.fig1_structure_avf, "Figure 1 — structure AVF per category"),
    "fig5": (experiments.fig5_visa_configs, "Figure 5 — VISA configs (ICOUNT)"),
    "fig6": (experiments.fig6_fetch_policies, "Figure 6 — VISA configs under fetch policies"),
    "fig8": (experiments.fig8_dvm, "Figure 8 — DVM sweep (ICOUNT)"),
    "fig9": (experiments.fig9_dvm_flush, "Figure 9 — DVM sweep (FLUSH)"),
    "fig10": (experiments.fig10_comparison, "Figure 10 — PVE of all schemes"),
    "table1": (experiments.table1_pc_accuracy, "Table 1 — PC classification accuracy"),
}


def _scale_from_args(args) -> BenchScale:
    scale = BenchScale.from_env()
    overrides = {}
    if getattr(args, "cycles", None):
        overrides["max_cycles"] = args.cycles
        if args.cycles <= scale.warmup_cycles:
            overrides["warmup_cycles"] = args.cycles // 5
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "full", False):
        overrides["groups"] = ("A", "B", "C")
    if overrides:
        import dataclasses

        scale = dataclasses.replace(scale, **overrides)
    return scale


def cmd_run(args) -> int:
    scale = _scale_from_args(args)
    if args.record:
        res, recorder, _ = run_recorded(
            args.mix,
            scale,
            fetch_policy=args.fetch_policy,
            scheduler=args.scheduler,
            dispatch=args.dispatch,
            dvm_target=_dvm_target(args, scale),
            profiled=not args.no_profile,
            profile_stages=False,
        )
        n = recorder.to_jsonl(args.record, manifest=res.manifest)
        print(f"recorded {n} events to {args.record}")
    else:
        res = run_sim(
            args.mix,
            scale,
            fetch_policy=args.fetch_policy,
            scheduler=args.scheduler,
            dispatch=args.dispatch,
            dvm_target=_dvm_target(args, scale),
            profiled=not args.no_profile,
        )
    mix = MIXES[args.mix]
    print(f"mix {args.mix} ({', '.join(mix.benchmarks)})")
    print(f"  cycles                {res.cycles}  (warm-up {res.warmup_cycles})")
    print(f"  committed             {res.committed}")
    print(f"  throughput IPC        {res.ipc:.3f}")
    print(
        "  per-thread IPC        "
        + ", ".join(f"{b}={x:.2f}" for b, x in zip(mix.benchmarks, res.per_thread_ipc))
    )
    print(f"  harmonic IPC          {mix_harmonic_ipc(args.mix, scale, res, args.fetch_policy):.3f}")
    print(f"  IQ AVF                {res.iq_avf:.3f}  (max interval {res.max_iq_avf:.3f})")
    for s in Structure:
        print(f"    {s.name:3s} AVF           {res.overall_avf[s]:.3f}")
    print(f"  branch accuracy       {res.bp_accuracy:.1%}")
    print(f"  L1D miss rate         {res.l1d_miss_rate:.1%}")
    print(f"  L2 misses             {res.l2_misses}")
    print(f"  squashed (wrong path) {res.squashed}")
    print(f"  ACE fraction          {res.ace_fraction:.1%}")
    if args.dvm is not None:
        base = run_sim(args.mix, scale, fetch_policy=args.fetch_policy)
        target = args.dvm * base.max_iq_avf
        print(f"  PVE @ {args.dvm}*MaxAVF     {res.pve(target):.1%} (baseline {base.pve(target):.1%})")
    return 0


def _dvm_target(args, scale) -> float | None:
    if getattr(args, "dvm", None) is None:
        return None
    base = run_sim(args.mix, scale, fetch_policy=args.fetch_policy)
    return args.dvm * base.max_online_estimate


def cmd_timeline(args) -> int:
    if args.input:
        manifest, events = read_jsonl(args.input)
        title = f"decision timeline ({args.input})"
        profile = None
    else:
        scale = _scale_from_args(args)
        res, recorder, profile = run_recorded(
            args.mix,
            scale,
            fetch_policy=args.fetch_policy,
            scheduler=args.scheduler,
            dispatch=args.dispatch,
            dvm_target=_dvm_target(args, scale),
            profile_stages=not args.no_self_profile,
        )
        manifest, events = res.manifest, recorder.events
        dvm_part = "" if args.dvm is None else f", dvm={args.dvm}"
        title = (
            f"decision timeline [{args.mix}, fetch={args.fetch_policy}, "
            f"dispatch={args.dispatch or 'none'}{dvm_part}]"
        )
        if args.save:
            n = recorder.to_jsonl(args.save, manifest=manifest)
            print(f"recorded {n} events to {args.save}", file=sys.stderr)
    if args.trace_out:
        from repro.perf.chrome_trace import write_chrome_trace

        n = write_chrome_trace(args.trace_out, recorded=events, manifest=manifest)
        print(f"wrote {n} trace events to {args.trace_out}", file=sys.stderr)
    if args.json:
        print(json.dumps(timeline_json(events, manifest), indent=2, sort_keys=True))
    else:
        print(
            render_timeline(
                events, title=title, chart=args.chart, max_rows=args.max_rows
            ),
            end="",
        )
        if profile is not None:
            print(profile.format())
    return 0


def cmd_profile(args) -> int:
    if args.benchmark not in PERSONALITIES:
        print(f"unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    program = generate_program(args.benchmark, seed=args.seed)
    prof = profile_program(
        program, n_instructions=args.instructions, window=args.window
    )
    ref = PERSONALITIES[args.benchmark].ref_pc_accuracy
    print(f"benchmark {args.benchmark}")
    print(f"  static instructions   {program.num_static_insts}")
    print(f"  profiled instances    {args.instructions}")
    print(f"  PC-classification acc {prof.accuracy:.1%}  (paper: {ref:.1%})")
    print(f"  ACE instance fraction {prof.ace_fraction:.1%}")
    print(f"  static PCs tagged ACE {prof.static_ace_fraction:.1%}")
    return 0


def cmd_reproduce(args) -> int:
    if args.experiment not in _EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; one of {sorted(_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    func, title = _EXPERIMENTS[args.experiment]
    scale = _scale_from_args(args)
    rows = func(scale)
    if isinstance(rows, dict):  # fig2-style payloads
        rows = [rows]
    text = format_table(rows, title)
    print(text)
    if args.save:
        path = save_report(args.experiment, text)
        print(f"saved to {path}")
    return 0


def cmd_list(_args) -> int:
    print("benchmarks (Table 1 personalities):")
    for name, p in sorted(PERSONALITIES.items()):
        print(f"  {name:9s} [{p.category}]  paper Table-1 accuracy {p.ref_pc_accuracy:.1%}")
    print("\nmixes (Table 3):")
    for name, mix in sorted(MIXES.items()):
        print(f"  {name:6s} {', '.join(mix.benchmarks)}")
    print("\nfetch policies:  icount, stall, flush, dg, pdg, rr")
    print("schedulers:      oldest, visa")
    print("dispatch:        none, opt1, opt1-linear, opt2")
    print("experiments:     " + ", ".join(sorted(_EXPERIMENTS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMT issue-queue soft-error reliability reproduction (ICPP 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload mix")
    p_run.add_argument("--mix", default="CPU-A", choices=sorted(MIXES))
    p_run.add_argument("--fetch-policy", default="icount",
                       choices=["icount", "stall", "flush", "dg", "pdg", "rr"])
    p_run.add_argument("--scheduler", default="oldest", choices=["oldest", "visa"])
    p_run.add_argument("--dispatch", default=None,
                       choices=["opt1", "opt1-linear", "opt2"])
    p_run.add_argument("--dvm", type=float, default=None, metavar="FRAC",
                       help="enable DVM targeting FRAC * baseline MaxAVF")
    p_run.add_argument("--cycles", type=int, default=None)
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--no-profile", action="store_true",
                       help="skip offline ACE profiling (all hints = ACE)")
    p_run.add_argument("--record", metavar="PATH", default=None,
                       help="save the decision/interval event stream as JSONL")
    p_run.set_defaults(func=cmd_run)

    p_tl = sub.add_parser(
        "timeline", help="merged interval/decision timeline of one run"
    )
    p_tl.add_argument("--mix", default="MEM-A", choices=sorted(MIXES))
    p_tl.add_argument("--fetch-policy", default="icount",
                      choices=["icount", "stall", "flush", "dg", "pdg", "rr"])
    p_tl.add_argument("--scheduler", default="oldest", choices=["oldest", "visa"])
    p_tl.add_argument("--dispatch", default=None,
                      choices=["opt1", "opt1-linear", "opt2"])
    p_tl.add_argument("--dvm", type=float, default=None, metavar="FRAC",
                      help="enable DVM targeting FRAC * baseline MaxAVF")
    p_tl.add_argument("--cycles", type=int, default=None)
    p_tl.add_argument("--seed", type=int, default=None)
    p_tl.add_argument("--input", metavar="PATH", default=None,
                      help="render a previously recorded JSONL instead of simulating")
    p_tl.add_argument("--json", action="store_true",
                      help="emit the timeline as a JSON document")
    p_tl.add_argument("--chart", action="store_true",
                      help="append an online-AVF sparkline")
    p_tl.add_argument("--max-rows", type=int, default=None,
                      help="truncate the text timeline after N rows")
    p_tl.add_argument("--save", metavar="PATH", default=None,
                      help="also save the recording as JSONL")
    p_tl.add_argument("--trace-out", metavar="PATH", default=None,
                      help="export the timeline as Chrome trace-event JSON "
                           "(loadable in Perfetto/about:tracing)")
    p_tl.add_argument("--no-self-profile", action="store_true",
                      help="skip the per-stage wall-time self-profile")
    p_tl.set_defaults(func=cmd_timeline)

    register_perf_cli(sub)

    p_prof = sub.add_parser("profile", help="offline vulnerability profiling")
    p_prof.add_argument("benchmark")
    p_prof.add_argument("--instructions", type=int, default=40_000)
    p_prof.add_argument("--window", type=int, default=8_000)
    p_prof.add_argument("--seed", type=int, default=1)
    p_prof.set_defaults(func=cmd_profile)

    p_rep = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    p_rep.add_argument("experiment")
    p_rep.add_argument("--cycles", type=int, default=None)
    p_rep.add_argument("--seed", type=int, default=None)
    p_rep.add_argument("--full", action="store_true",
                       help="all Table 3 groups (paper averaging)")
    p_rep.add_argument("--save", action="store_true", help="write reports/<name>.txt")
    p_rep.set_defaults(func=cmd_reproduce)

    p_list = sub.add_parser("list", help="enumerate benchmarks/mixes/experiments")
    p_list.set_defaults(func=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
