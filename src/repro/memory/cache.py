"""Set-associative cache with true-LRU replacement.

The model is a tag array only: the simulator never carries data values,
so a cache access returns hit/miss and updates recency state.  Sets are
small Python lists ordered most-recent-first; with the paper's
associativities (2–4-way) a list scan beats any fancier structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss counters of one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writes: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = self.writes = 0


class SetAssocCache:
    """A set-associative, true-LRU, write-allocate tag array."""

    __slots__ = ("name", "config", "stats", "_sets", "_set_mask", "_line_shift")

    def __init__(self, config: CacheConfig, name: str = "cache"):
        config.validate()
        self.name = name
        self.config = config
        self.stats = CacheStats()
        num_sets = config.num_sets
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._set_mask = num_sets - 1
        self._line_shift = config.line_size.bit_length() - 1

    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr >> self._line_shift
        return line & self._set_mask, line >> (self._set_mask.bit_length())

    def lookup(self, addr: int) -> bool:
        """Probe without modifying replacement state (for tests and the
        predictive policies); returns True on hit."""
        idx, tag = self._index_tag(addr)
        return tag in self._sets[idx]

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Access the line containing ``addr``.

        Returns True on hit.  On a miss the line is allocated (fill is
        assumed to complete; timing is charged by the hierarchy), which
        may evict the LRU line of the set.
        """
        idx, tag = self._index_tag(addr)
        way = self._sets[idx]
        self.stats.accesses += 1
        if is_write:
            self.stats.writes += 1
        try:
            pos = way.index(tag)
        except ValueError:
            pos = -1
        if pos >= 0:
            self.stats.hits += 1
            if pos:
                way.insert(0, way.pop(pos))
            return True
        self.stats.misses += 1
        way.insert(0, tag)
        if len(way) > self.config.assoc:
            way.pop()
            self.stats.evictions += 1
        return False

    def invalidate_all(self) -> None:
        """Flush every line (used when resetting between experiments)."""
        for way in self._sets:
            way.clear()

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(w) for w in self._sets)
