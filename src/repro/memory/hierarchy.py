"""The full memory stack of Table 2.

``MemoryHierarchy`` composes the split L1s, the unified L2, the two
TLBs and a flat DRAM latency.  It is a timing model: an access returns
the total latency and whether it reached DRAM (an "L2 miss" in the
paper's terminology — the event that drives the FLUSH/STALL fetch
policies, Optimization 2 and the DVM trigger).

Per-thread address spaces are disambiguated by tagging bit 44+ with the
hardware thread id, mirroring distinct processes on an SMT core (the
caches are still physically shared, so capacity contention between
threads is modelled faithfully).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineConfig
from repro.memory.cache import SetAssocCache
from repro.memory.tlb import TLB

_THREAD_SHIFT = 44


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one data or instruction access."""

    latency: int
    l1_miss: bool
    l2_miss: bool
    tlb_miss: bool


class MemoryHierarchy:
    """Shared L1I/L1D + unified L2 + DRAM, with ITLB/DTLB."""

    def __init__(self, machine: MachineConfig):
        machine.validate()
        self.machine = machine
        self.l1i = SetAssocCache(machine.l1i, "L1I")
        self.l1d = SetAssocCache(machine.l1d, "L1D")
        self.l2 = SetAssocCache(machine.l2, "L2")
        self.itlb = TLB(machine.itlb, "ITLB")
        self.dtlb = TLB(machine.dtlb, "DTLB")
        self.memory_latency = machine.memory_latency
        # Running counters the fetch policies / Optimization 2 consume.
        self.l2_miss_count = 0
        self.l2_data_miss_count = 0

    @staticmethod
    def thread_addr(addr: int, thread: int) -> int:
        """Tag an address with its hardware thread id.

        The id is placed both above the tag bits (distinct address
        spaces) and XORed into the low page bits, so identical virtual
        layouts in different threads do not collide on the same cache
        sets (the effect ASLR/physical allocation has on a real SMT)."""
        return (addr ^ (thread * 0x3740)) | (thread << _THREAD_SHIFT)

    def access_instr(self, addr: int, thread: int) -> AccessResult:
        """Instruction fetch access: ITLB + L1I + (L2 + DRAM)."""
        a = self.thread_addr(addr, thread)
        tlb_penalty = self.itlb.access(a)
        latency = self.machine.l1i.latency + tlb_penalty
        if self.l1i.access(a):
            return AccessResult(latency, False, False, tlb_penalty > 0)
        latency += self.machine.l2.latency
        if self.l2.access(a):
            return AccessResult(latency, True, False, tlb_penalty > 0)
        self.l2_miss_count += 1
        latency += self.memory_latency
        return AccessResult(latency, True, True, tlb_penalty > 0)

    def access_data(self, addr: int, thread: int, is_write: bool = False) -> AccessResult:
        """Data access: DTLB + L1D + (L2 + DRAM)."""
        a = self.thread_addr(addr, thread)
        tlb_penalty = self.dtlb.access(a)
        latency = self.machine.l1d.latency + tlb_penalty
        if self.l1d.access(a, is_write):
            return AccessResult(latency, False, False, tlb_penalty > 0)
        latency += self.machine.l2.latency
        if self.l2.access(a, is_write):
            return AccessResult(latency, True, False, tlb_penalty > 0)
        self.l2_miss_count += 1
        self.l2_data_miss_count += 1
        latency += self.memory_latency
        return AccessResult(latency, True, True, tlb_penalty > 0)

    def reset_stats(self) -> None:
        for c in (self.l1i, self.l1d, self.l2):
            c.stats.reset()
        self.l2_miss_count = 0
        self.l2_data_miss_count = 0
