"""Translation lookaside buffers.

A TLB is modelled as a set-associative tag array over virtual page
numbers; a miss charges a fixed fill latency (Table 2: 200 cycles for
both the 128-entry ITLB and 256-entry DTLB).
"""

from __future__ import annotations

from repro.config import CacheConfig, TLBConfig
from repro.memory.cache import CacheStats, SetAssocCache


class TLB:
    """Set-associative TLB built on the generic tag array."""

    __slots__ = ("config", "_array", "_page_shift")

    def __init__(self, config: TLBConfig, name: str = "tlb"):
        config.validate()
        self.config = config
        # Reuse the cache tag array: one "line" per page, sets = entries/assoc.
        self._array = SetAssocCache(
            CacheConfig(
                size=config.entries * config.page_size,
                assoc=config.assoc,
                line_size=config.page_size,
                latency=0,
            ),
            name=name,
        )
        self._page_shift = config.page_size.bit_length() - 1

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns the latency penalty (0 on hit,
        ``miss_latency`` on a miss)."""
        hit = self._array.access(addr)
        return 0 if hit else self.config.miss_latency

    @property
    def stats(self) -> CacheStats:
        return self._array.stats

    def invalidate_all(self) -> None:
        self._array.invalidate_all()
