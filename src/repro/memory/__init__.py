"""Memory hierarchy substrate: set-associative caches, TLBs and the
L1I/L1D/L2/DRAM stack of Table 2."""

from repro.memory.cache import SetAssocCache
from repro.memory.tlb import TLB
from repro.memory.hierarchy import AccessResult, MemoryHierarchy

__all__ = ["SetAssocCache", "TLB", "MemoryHierarchy", "AccessResult"]
