"""Functional unit pools and operation latencies.

Table 2: 8 integer ALUs, 4 integer mult/div, 4 load/store units,
8 FP ALUs, 4 FP mult/div/sqrt.  Units are fully pipelined: issuing an
operation consumes one unit slot for the issue cycle only, and the
result arrives after the operation latency (memory operations get their
latency from the cache hierarchy instead).
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.isa.instruction import OpClass


class FUKind:
    IALU = 0
    IMULT = 1
    LS = 2
    FALU = 3
    FMULT = 4
    _COUNT = 5


_OP_TO_FU = {
    OpClass.IALU: FUKind.IALU,
    OpClass.BRANCH: FUKind.IALU,
    OpClass.JUMP: FUKind.IALU,
    OpClass.CALL: FUKind.IALU,
    OpClass.RET: FUKind.IALU,
    OpClass.NOP: FUKind.IALU,
    OpClass.IMULT: FUKind.IMULT,
    OpClass.IDIV: FUKind.IMULT,
    OpClass.LOAD: FUKind.LS,
    OpClass.STORE: FUKind.LS,
    OpClass.PREFETCH: FUKind.LS,
    OpClass.FALU: FUKind.FALU,
    OpClass.FMULT: FUKind.FMULT,
    OpClass.FDIV: FUKind.FMULT,
    OpClass.FSQRT: FUKind.FMULT,
}


class FunctionalUnitPool:
    """Per-cycle issue-slot accounting for the five FU pools."""

    __slots__ = ("_limits", "_used", "busy_integral")

    def __init__(self, machine: MachineConfig):
        self._limits = [0] * FUKind._COUNT
        self._limits[FUKind.IALU] = machine.int_alu
        self._limits[FUKind.IMULT] = machine.int_mult_div
        self._limits[FUKind.LS] = machine.load_store_units
        self._limits[FUKind.FALU] = machine.fp_alu
        self._limits[FUKind.FMULT] = machine.fp_mult_div_sqrt
        self._used = [0] * FUKind._COUNT
        self.busy_integral = 0  # unit-cycles consumed (for FU AVF)

    def new_cycle(self) -> None:
        for k in range(FUKind._COUNT):
            self._used[k] = 0

    def try_issue(self, opclass: OpClass) -> bool:
        """Reserve a unit slot for this cycle; False if the pool is dry."""
        kind = _OP_TO_FU[opclass]
        if self._used[kind] >= self._limits[kind]:
            return False
        self._used[kind] += 1
        self.busy_integral += 1
        return True

    def available(self, opclass: OpClass) -> int:
        kind = _OP_TO_FU[opclass]
        return self._limits[kind] - self._used[kind]

    @property
    def total_units(self) -> int:
        return sum(self._limits)


def op_latency(machine: MachineConfig, opclass: OpClass) -> int:
    """Fixed execution latency of non-memory operations."""
    if opclass == OpClass.IMULT:
        return machine.lat_int_mult
    if opclass == OpClass.IDIV:
        return machine.lat_int_div
    if opclass == OpClass.FALU:
        return machine.lat_fp_alu
    if opclass == OpClass.FMULT:
        return machine.lat_fp_mult
    if opclass == OpClass.FDIV:
        return machine.lat_fp_div
    if opclass == OpClass.FSQRT:
        return machine.lat_fp_sqrt
    return machine.lat_int_alu
