"""Issue selection policies: baseline oldest-first and VISA.

Section 2.1 of the paper: *Vulnerable InStruction Aware (VISA)* issue
gives ready ACE instructions priority over ready un-ACE instructions;
within each class, instructions issue in program order.  Un-ACE
instructions only issue when fewer ready ACE instructions exist than
issue slots.  ACE-ness at issue time is the per-PC predicted bit
(``ace_pred``) from offline profiling — the scheduler never sees the
oracle.
"""

from __future__ import annotations

from repro.core.issue_queue import IssueQueue
from repro.isa.instruction import DynInst


class IssueScheduler:
    """Base interface: pick up to ``width`` ready instructions."""

    name = "base"

    def select(self, iq: IssueQueue, width: int) -> list[DynInst]:
        raise NotImplementedError


class OldestFirstScheduler(IssueScheduler):
    """Conventional age-ordered (program-order) selection — the
    baseline issue policy of the evaluated SMT processor."""

    name = "oldest"

    def select(self, iq: IssueQueue, width: int) -> list[DynInst]:
        if not iq.ready:
            return []
        ready = sorted(iq.ready.values(), key=lambda i: i.tag)
        return ready[:width]


class VISAScheduler(IssueScheduler):
    """Vulnerable-InStruction-Aware issue (Section 2.1).

    Ready ACE instructions bypass all ready un-ACE instructions; ties
    within a class break by age (program order, approximated by the
    global sequence tag as in ICOUNT-style SMT selection).
    """

    name = "visa"

    def select(self, iq: IssueQueue, width: int) -> list[DynInst]:
        if not iq.ready:
            return []
        ready = sorted(iq.ready.values(), key=lambda i: (not i.ace_pred, i.tag))
        return ready[:width]


_SCHEDULERS = {
    "oldest": OldestFirstScheduler,
    "visa": VISAScheduler,
}


def make_scheduler(name: str) -> IssueScheduler:
    """Instantiate an issue scheduler by name ("oldest" or "visa")."""
    try:
        return _SCHEDULERS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(_SCHEDULERS)}"
        ) from None
