"""Issue selection policies: baseline oldest-first and VISA.

Section 2.1 of the paper: *Vulnerable InStruction Aware (VISA)* issue
gives ready ACE instructions priority over ready un-ACE instructions;
within each class, instructions issue in program order.  Un-ACE
instructions only issue when fewer ready ACE instructions exist than
issue slots.  ACE-ness at issue time is the per-PC predicted bit
(``ace_pred``) from offline profiling — the scheduler never sees the
oracle.

Selection is lazy: :meth:`IssueScheduler.ready_order` yields ready
instructions in policy priority order from the issue queue's
incrementally maintained sorted tag lists, so a selection of ``width``
instructions costs O(width + log R) instead of re-sorting the whole
ready set every cycle.  The issue stage walks the full order until the
issue width is filled, so instructions blocked on a dry FU pool never
starve eligible younger instructions (no fixed over-selection window).
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator

from repro.core.issue_queue import IssueQueue
from repro.isa.instruction import DynInst


class IssueScheduler:
    """Base interface: rank the ready set in issue priority order."""

    name = "base"

    def ready_order(self, iq: IssueQueue) -> Iterator[DynInst]:
        """Yield ready instructions in priority order (lazily).

        The iterator snapshots the ready order at creation, then looks
        each tag up live: the caller may issue (removing entries) while
        iterating, and already-removed entries are skipped.
        """
        raise NotImplementedError

    def select(self, iq: IssueQueue, width: int) -> list[DynInst]:
        """Pick up to ``width`` ready instructions (eager convenience
        wrapper around :meth:`ready_order`)."""
        return list(islice(self.ready_order(iq), width))


class OldestFirstScheduler(IssueScheduler):
    """Conventional age-ordered (program-order) selection — the
    baseline issue policy of the evaluated SMT processor."""

    name = "oldest"

    def ready_order(self, iq: IssueQueue) -> Iterator[DynInst]:
        ready = iq.ready
        for tag in iq.ready_tags_oldest():
            inst = ready.get(tag)
            if inst is not None:
                yield inst


class VISAScheduler(IssueScheduler):
    """Vulnerable-InStruction-Aware issue (Section 2.1).

    Ready ACE instructions bypass all ready un-ACE instructions; ties
    within a class break by age (program order, approximated by the
    global sequence tag as in ICOUNT-style SMT selection).
    """

    name = "visa"

    def ready_order(self, iq: IssueQueue) -> Iterator[DynInst]:
        ready = iq.ready
        for tag in iq.ready_tags_visa():
            inst = ready.get(tag)
            if inst is not None:
                yield inst


_SCHEDULERS = {
    "oldest": OldestFirstScheduler,
    "visa": VISAScheduler,
}


def make_scheduler(name: str) -> IssueScheduler:
    """Instantiate an issue scheduler by name ("oldest" or "visa")."""
    try:
        return _SCHEDULERS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(_SCHEDULERS)}"
        ) from None
