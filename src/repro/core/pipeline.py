"""The top-level SMT out-of-order pipeline.

An execution-driven, cycle-level model of the Table 2 machine: per
cycle it commits (in order, per thread), writes back completed
operations (waking IQ consumers and resolving branches), issues from
the shared IQ through the configured scheduler, dispatches renamed
instructions under the configured resource-allocation/DVM constraints,
and fetches down (possibly wrong) predicted paths under the configured
SMT fetch policy.

Stage order within a cycle is reverse-pipeline (commit → writeback →
issue → dispatch → fetch) so instructions take at least one cycle per
stage and wakeup enables back-to-back dependent issue.

The pipeline implements the ``CoreView`` protocol consumed by fetch
policies and is the integration point of the paper's mechanisms: the
VISA scheduler (Section 2.1), dynamic IQ resource allocation
(Section 2.2, Figures 3–4) and DVM (Section 5, Figure 7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.config import MachineConfig, SimulationConfig
from repro.core.backend import SimBackend, resolve_backend
from repro.core.functional_units import FunctionalUnitPool, op_latency
from repro.core.issue_queue import IssueQueue
from repro.core.lsq import LoadStoreQueue
from repro.core.rename import RenameTable
from repro.core.rob import ReorderBuffer
from repro.core.scheduler import IssueScheduler, make_scheduler
from repro.frontend.branch_predictor import BranchPredictor
from repro.frontend.fetch_policy import FetchPolicy, FlushPolicy, make_fetch_policy
from repro.isa.instruction import DynInst, DynState, OpClass
from repro.isa.program import SyntheticProgram, ThreadContext
from repro.memory.hierarchy import MemoryHierarchy
from repro.reliability.ace import ACEAnalyzer
from repro.reliability.avf import AVFAccount, AVFBitLayout, Structure
from repro.reliability.dvm import DVMController
from repro.reliability.resource_alloc import (
    DispatchPolicy,
    IntervalSnapshot,
    UnlimitedDispatch,
)
from repro.telemetry.bus import EventBus
from repro.telemetry.metrics import MetricsRegistry, SnapshotValue
from repro.telemetry.profiler import StageProfiler
from repro.telemetry.provenance import RunManifest, collect_manifest
from repro.telemetry.topics import (
    TOPIC_COMMIT,
    TOPIC_DVM_RESTORE,
    TOPIC_DVM_THROTTLE,
    TOPIC_INTERVAL_CLOSE,
    TOPIC_RELIABILITY_DIVERGENCE,
    TOPIC_SQUASH,
)

#: Max threads fetched per cycle (ICOUNT.2.8-style front end).
_FETCH_THREADS_PER_CYCLE = 2


@dataclass
class IntervalRecord:
    """Per-interval runtime statistics (one adaptation interval)."""

    index: int
    end_cycle: int
    committed: int
    per_thread_committed: tuple[int, ...]
    avg_ready_queue_len: float
    avg_waiting_queue_len: float
    l2_misses: int
    online_avf_estimate: float
    iq_limit: int
    online_rob_estimate: float = 0.0

    @property
    def ipc(self) -> float:
        return self.committed / max(1, self.cycles)

    cycles: int = 0


@dataclass
class SimulationResult:
    """Everything a run produced; the harness layers metrics on top."""

    cycles: int
    warmup_cycles: int
    interval_cycles: int
    committed: int
    per_thread_committed: tuple[int, ...]
    warm_committed: int
    warm_per_thread_committed: tuple[int, ...]
    intervals: list[IntervalRecord]
    iq_interval_avf: list[float]
    rob_interval_avf: list[float]
    overall_avf: dict[Structure, float]
    squashed: int
    flushes: int
    bp_accuracy: float
    l1d_miss_rate: float
    l2_miss_rate: float
    l2_misses: int
    ace_fraction: float
    ready_hist: npt.NDArray[np.int64] | None = None
    ready_hist_ace: npt.NDArray[np.float64] | None = None
    dvm_mean_ratio: float | None = None
    #: Run provenance (config hash, seed, git SHA, ...); excluded from
    #: comparison so results stay value-comparable across hosts/times.
    manifest: RunManifest | None = field(default=None, compare=False, repr=False)
    #: Flattened metrics-registry snapshot of the run.
    metrics: dict[str, SnapshotValue] | None = field(
        default=None, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    @property
    def warm_cycles(self) -> int:
        return self.cycles - self.warmup_cycles

    @property
    def ipc(self) -> float:
        """Throughput IPC over the post-warm-up region."""
        return self.warm_committed / max(1, self.warm_cycles)

    @property
    def per_thread_ipc(self) -> tuple[float, ...]:
        return tuple(c / max(1, self.warm_cycles) for c in self.warm_per_thread_committed)

    @property
    def _warm_interval_start(self) -> int:
        return self.warmup_cycles // self.interval_cycles

    @property
    def warm_iq_interval_avf(self) -> list[float]:
        return self.iq_interval_avf[self._warm_interval_start:]

    @property
    def iq_avf(self) -> float:
        """Oracle IQ AVF averaged over post-warm-up intervals."""
        warm = self.warm_iq_interval_avf
        return float(np.mean(warm)) if warm else 0.0

    @property
    def max_iq_avf(self) -> float:
        warm = self.warm_iq_interval_avf
        return float(np.max(warm)) if warm else 0.0

    @property
    def max_online_estimate(self) -> float:
        """Maximum per-interval *online* (predicted-ACE-bit) AVF
        estimate — the hardware-observable counterpart of
        ``max_iq_avf``, used to express DVM targets in the units the
        controller actually measures."""
        start = self._warm_interval_start
        vals = [r.online_avf_estimate for r in self.intervals[start:]]
        return float(np.max(vals)) if vals else 0.0

    def pve(self, target_avf: float) -> float:
        """Percentage of vulnerability emergencies: the fraction of
        post-warm-up intervals whose oracle IQ AVF exceeds the target
        (Section 5.2)."""
        warm = self.warm_iq_interval_avf
        if not warm:
            return 0.0
        return float(np.mean([a > target_avf for a in warm]))

    # ------------------------------------------------------------------
    # ROB-DVM extension (the paper's suggested generalization)
    # ------------------------------------------------------------------
    @property
    def warm_rob_interval_avf(self) -> list[float]:
        return self.rob_interval_avf[self._warm_interval_start:]

    @property
    def rob_avf(self) -> float:
        warm = self.warm_rob_interval_avf
        return float(np.mean(warm)) if warm else 0.0

    @property
    def max_rob_avf(self) -> float:
        warm = self.warm_rob_interval_avf
        return float(np.max(warm)) if warm else 0.0

    @property
    def max_online_rob_estimate(self) -> float:
        start = self._warm_interval_start
        vals = [r.online_rob_estimate for r in self.intervals[start:]]
        return float(np.max(vals)) if vals else 0.0

    def pve_rob(self, target_avf: float) -> float:
        """PVE measured on the ROB's oracle interval AVF."""
        warm = self.warm_rob_interval_avf
        if not warm:
            return 0.0
        return float(np.mean([a > target_avf for a in warm]))


class SMTPipeline:
    """Cycle-level SMT processor simulation of one workload mix."""

    def __init__(
        self,
        programs: list[SyntheticProgram],
        machine: MachineConfig | None = None,
        sim: SimulationConfig | None = None,
        fetch_policy: str | FetchPolicy = "icount",
        scheduler: str | IssueScheduler = "oldest",
        dispatch_policy: DispatchPolicy | None = None,
        dvm: DVMController | None = None,
        dvm_structure: Structure = Structure.IQ,
        avf_layout: AVFBitLayout | None = None,
        bus: EventBus | None = None,
        profiler: StageProfiler | None = None,
        telemetry: bool = True,
        backend: str | SimBackend | None = None,
    ):
        if not programs:
            raise ValueError("at least one program (thread) is required")
        self.machine = (machine or MachineConfig()).replace(num_threads=len(programs))
        self.machine.validate()
        self.sim = sim or SimulationConfig()
        self.sim.validate()
        # Execution engine: ``None`` is the inline reference interpreter
        # in :meth:`run`; anything else delegates the whole run.
        self._backend = resolve_backend(
            backend if backend is not None else self.sim.backend
        )
        n = self.machine.num_threads
        rel = self.sim.reliability

        self.programs = programs
        self.contexts = [
            ThreadContext(p, seed=self.sim.seed * 7919 + t) for t, p in enumerate(programs)
        ]
        self.mem = MemoryHierarchy(self.machine)
        self.bp = BranchPredictor(self.machine.branch_predictor, n)
        self.fus = FunctionalUnitPool(self.machine)
        self.scheduler = (
            make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self.base_fetch_policy = (
            make_fetch_policy(fetch_policy) if isinstance(fetch_policy, str) else fetch_policy
        )
        self._flush_policy = (
            self.base_fetch_policy
            if isinstance(self.base_fetch_policy, FlushPolicy)
            else FlushPolicy()
        )
        self.dispatch_policy = dispatch_policy or UnlimitedDispatch(self.machine.iq_size)
        self.dvm = dvm
        if dvm_structure not in (Structure.IQ, Structure.ROB):
            raise ValueError("DVM can govern the IQ or the ROB")
        self.dvm_structure = dvm_structure

        self.avf = AVFAccount(self.machine, rel.interval_cycles, avf_layout)
        self.analyzer = ACEAnalyzer(
            n,
            window_size=rel.ace_window,
            resolve_cb=self.avf.on_resolved,
            rf_cb=self.avf.on_rf_lifetime,
        )
        self.iq = IssueQueue(self.machine.iq_size, n, bits_of=self.avf.iq_bits_pred)
        self.robs = [ReorderBuffer(self.machine.rob_size_per_thread, t) for t in range(n)]
        self.lsqs = [LoadStoreQueue(self.machine.lsq_size_per_thread, t) for t in range(n)]
        self.rename = [RenameTable(t) for t in range(n)]
        self.fetch_q: list[deque[DynInst]] = [deque() for _ in range(n)]

        # Per-thread dynamic state.
        self.fetch_stall_until = [0] * n
        self._last_fetch_line = [-1] * n
        self._outstanding_l2 = [0] * n
        self._outstanding_l1d = [0] * n
        self.committed_per_thread = [0] * n

        # Global dynamic state.
        self.cycle = 0
        self._next_tag = 1
        self._wheel: dict[int, list[DynInst]] = {}
        self._pending_flushes: list[tuple[int, int]] = []
        self.total_committed = 0
        self.total_squashed = 0
        self.flush_count = 0
        # Cycles accounted in closed form by the fast backend's idle
        # skip (0 under the reference interpreter).
        self.fast_skipped_cycles = 0
        self._iline_shift = self.machine.l1i.line_size.bit_length() - 1

        # Interval accumulators.
        self._int_committed = 0
        self._int_committed_pt = [0] * n
        self._int_rql_sum = 0
        self._int_wql_sum = 0
        self._int_l2_base = 0
        self._int_online_bit_cycles = 0
        self._sample_bit_cycles = 0
        self._sample_cycles = 0
        self.intervals: list[IntervalRecord] = []
        # ROB-DVM extension: running predicted-ACE bits resident in the
        # ROBs (maintained at dispatch/commit/squash).
        self.rob_pred_ace_bits = 0
        self._int_online_rob_bit_cycles = 0

        # Warm-up bookkeeping.
        self._warm_committed_pt = [0] * n

        # Optional ready-queue histogram (Figure 2).
        self._hist: npt.NDArray[np.int64] | None = None
        self._hist_ace: npt.NDArray[np.float64] | None = None
        if self.sim.collect_ready_queue_histogram:
            self._hist = np.zeros(self.machine.iq_size + 1, dtype=np.int64)
            self._hist_ace = np.zeros(self.machine.iq_size + 1, dtype=np.float64)

        self._sample_period = max(
            1, rel.interval_cycles // rel.dvm_samples_per_interval
        )

        # Telemetry: the event bus is shared with every controller so
        # their decisions carry the pipeline's cycle/stage stamps.
        # ``telemetry=False`` runs the bare pre-instrumentation loop
        # (used by the overhead smoke check as the baseline).
        self.telemetry = telemetry
        self.bus = bus if bus is not None else EventBus()
        self.profiler = profiler
        self.metrics = MetricsRegistry()
        if telemetry:
            if self.dvm is not None:
                self.dvm.bus = self.bus
                self.dvm.structure = (
                    "rob" if dvm_structure == Structure.ROB else "iq"
                )
            self.dispatch_policy.bus = self.bus
            self.base_fetch_policy.bus = self.bus
            self._flush_policy.bus = self.bus
            self.avf.bus = self.bus
            self.analyzer.bus = self.bus
        # Hot-topic wants() flags, re-read only when the bus's
        # subscription version changes (zero-subscriber fast path).
        self._bus_version = -1
        self._want_commit = False
        self._want_squash = False
        self._want_throttle = False

    # ------------------------------------------------------------------
    # CoreView protocol (fetch policies observe the pipeline through it)
    # ------------------------------------------------------------------
    @property
    def num_threads(self) -> int:
        return self.machine.num_threads

    def in_flight(self, tid: int) -> int:
        """ICOUNT metric: instructions in the front-end and the IQ."""
        return len(self.fetch_q[tid]) + self.iq.per_thread[tid]

    def outstanding_l2(self, tid: int) -> int:
        return self._outstanding_l2[tid]

    def outstanding_l1d(self, tid: int) -> int:
        return self._outstanding_l1d[tid]

    def request_flush(self, tid: int, after_tag: int) -> None:
        """FLUSH policy callback: flush ``tid``'s instructions younger
        than ``after_tag`` (deferred to the end of the issue stage)."""
        self._pending_flushes.append((tid, after_tag))

    # ------------------------------------------------------------------
    def active_fetch_policy(self) -> FetchPolicy:
        """Opt2 swaps in FLUSH while its miss trigger is armed."""
        if self.dispatch_policy.flush_mode:
            return self._flush_policy
        return self.base_fetch_policy

    # ==================================================================
    # Cycle stages
    # ==================================================================
    def _commit(self) -> None:
        budget = self.machine.commit_width
        n = self.num_threads
        start = self.cycle % n
        cycle = self.cycle
        emit_commit = self._want_commit
        bus = self.bus
        for i in range(n):
            t = (start + i) % n
            rob = self.robs[t]
            while budget > 0:
                head = rob.head()
                if head is None or head.state != DynState.COMPLETED:
                    break
                rob.commit_head()
                head.commit_cycle = cycle
                self.rob_pred_ace_bits -= self.avf.rob_bits_pred(head)
                op = head.opclass
                if op.is_mem:
                    self.lsqs[t].remove(head)
                    if op == OpClass.STORE and head.mem_addr >= 0:
                        self.mem.access_data(head.mem_addr, t, is_write=True)
                elif op == OpClass.BRANCH:
                    self.bp.update_direction(
                        head.pc, t, head.actual_taken, head.pred_taken,
                        idx=head.bp_index if head.bp_index >= 0 else None,
                    )
                    if head.actual_taken:
                        self.bp.btb_update(head.pc, head.static.taken_block)
                self.committed_per_thread[t] += 1
                self.total_committed += 1
                self._int_committed += 1
                self._int_committed_pt[t] += 1
                self.analyzer.commit(head, cycle)
                if emit_commit:
                    bus.emit(TOPIC_COMMIT, inst=head)
                budget -= 1

    def _writeback(self) -> None:
        events = self._wheel.pop(self.cycle, None)
        if not events:
            return
        events.sort(key=lambda i: i.tag)  # resolve older branches first
        policy = self.active_fetch_policy()
        for inst in events:
            if inst.state == DynState.SQUASHED:
                continue
            inst.state = DynState.COMPLETED
            inst.complete_cycle = self.cycle
            self.iq.wakeup(inst.tag, self.cycle)
            if inst.opclass == OpClass.LOAD:
                t = inst.thread
                if inst.l1_miss:
                    self._outstanding_l1d[t] -= 1
                if inst.l2_miss:
                    self._outstanding_l2[t] -= 1
                    if self._outstanding_l2[t] == 0:
                        policy.on_l2_return(self, t)
                policy.on_load_left(self, inst)
            if inst.mispredicted and inst.state != DynState.SQUASHED:
                self._recover_branch(inst)

    def _recover_branch(self, branch: DynInst) -> None:
        t = branch.thread
        self._squash_thread(t, branch.tag)
        ctx = self.contexts[t]
        assert branch.checkpoint is not None  # set at fetch for control insts
        ctx.restore(branch.checkpoint)
        ctx.advance_control(branch.static, branch.actual_taken, branch.actual_target)
        self._last_fetch_line[t] = -1
        self.fetch_stall_until[t] = max(
            self.fetch_stall_until[t],
            self.cycle + self.machine.branch_mispredict_penalty,
        )

    def _squash_thread(self, tid: int, after_tag: int) -> list[DynInst]:
        """Remove every in-flight instruction of ``tid`` younger than
        ``after_tag`` from the whole pipeline."""
        squashed: list[DynInst] = []
        policy = self.active_fetch_policy()
        fq = self.fetch_q[tid]
        while fq and fq[-1].tag > after_tag:
            inst = fq.pop()
            inst.state = DynState.SQUASHED
            squashed.append(inst)
        for inst in self.iq.squash_thread(tid, after_tag):
            inst.state = DynState.SQUASHED
            inst.iq_leave_cycle = self.cycle
            squashed.append(inst)
        # ROB walk (young-first) covers every dispatched instruction:
        # rename unwind, in-flight-load bookkeeping, consumer cleanup.
        for inst in self.robs[tid].squash_after(after_tag):
            if inst.state == DynState.ISSUED:
                if inst.opclass == OpClass.LOAD:
                    if inst.l1_miss:
                        self._outstanding_l1d[tid] -= 1
                    if inst.l2_miss:
                        self._outstanding_l2[tid] -= 1
                        if self._outstanding_l2[tid] == 0:
                            policy.on_l2_return(self, tid)
                    policy.on_load_left(self, inst)
                self.iq.drop_consumers(inst.tag)
            elif inst.state == DynState.COMPLETED:
                self.iq.drop_consumers(inst.tag)
            elif inst.state == DynState.DISPATCHED and inst.opclass == OpClass.LOAD:
                # Never issued, but PDG counted it at dispatch: release
                # its predicted-miss slot or the thread gates forever.
                policy.on_load_left(self, inst)
            # Every ROB-resident entry carried ROB counter bits.
            self.rob_pred_ace_bits -= self.avf.rob_bits_pred(inst)
            self.rename[tid].unwind(inst)
            if inst.state != DynState.SQUASHED:
                inst.state = DynState.SQUASHED
                squashed.append(inst)
        self.lsqs[tid].squash_after(after_tag)
        self.total_squashed += len(squashed)
        if self._want_squash:
            self.bus.emit(TOPIC_SQUASH, thread=tid, after_tag=after_tag, insts=squashed)
        return squashed

    def _do_flush(self, tid: int, after_tag: int) -> None:
        """FLUSH fetch policy: flush ``tid`` after the missing load and
        rewind the fetch point so the flushed instructions refetch."""
        squashed = self._squash_thread(tid, after_tag)
        if not squashed:
            return
        oldest = min(squashed, key=lambda i: i.tag)
        assert oldest.checkpoint is not None  # set at fetch for every inst
        self.contexts[tid].restore(oldest.checkpoint)
        self._last_fetch_line[tid] = -1
        self.flush_count += 1

    def _issue(self) -> None:
        self.fus.new_cycle()
        width = self.machine.issue_width
        if self.iq.ready:
            # Walk the full ready order lazily: instructions blocked on
            # a dry FU pool are skipped over until the issue width fills
            # or candidates exhaust.  A fixed over-selection window
            # (formerly width * 2) starves eligible younger entries
            # whenever more than the window is blocked on one FU kind.
            issued = 0
            try_issue = self.fus.try_issue
            for inst in self.scheduler.ready_order(self.iq):
                if inst.state != DynState.DISPATCHED:
                    continue
                if not try_issue(inst.opclass):
                    continue
                self._issue_one(inst)
                issued += 1
                if issued >= width:
                    break
        if self._pending_flushes:
            for tid, after_tag in self._pending_flushes:
                self._do_flush(tid, after_tag)
            self._pending_flushes.clear()

    def _issue_one(self, inst: DynInst) -> None:
        cycle = self.cycle
        self.iq.remove_issued(inst)
        inst.state = DynState.ISSUED
        inst.issue_cycle = cycle
        inst.iq_leave_cycle = cycle
        t = inst.thread
        op = inst.opclass
        policy = self.active_fetch_policy()
        if op == OpClass.LOAD:
            addr = self.contexts[t].mem_address(inst.static, inst.stream_pos)
            inst.mem_addr = addr
            if self.lsqs[t].can_forward(addr):
                latency = 1
            else:
                res = self.mem.access_data(addr, t)
                latency = res.latency
                if res.l1_miss:
                    inst.l1_miss = True
                    self._outstanding_l1d[t] += 1
                if res.l2_miss:
                    inst.l2_miss = True
                    self._outstanding_l2[t] += 1
                    policy.on_l2_miss(self, inst)
                    if self.dvm is not None:
                        self.dvm.on_l2_miss()
                policy.on_load_resolved(self, inst, res.l1_miss)
        elif op == OpClass.PREFETCH:
            addr = self.contexts[t].mem_address(inst.static, inst.stream_pos)
            inst.mem_addr = addr
            self.mem.access_data(addr, t)  # warms the caches, non-blocking
            latency = 1
        elif op == OpClass.STORE:
            addr = self.contexts[t].mem_address(inst.static, inst.stream_pos)
            inst.mem_addr = addr
            self.lsqs[t].note_store_address(inst)
            latency = 1  # address generation; data written at commit
        else:
            latency = op_latency(self.machine, op)
        inst.exec_latency = latency
        self._wheel.setdefault(cycle + latency, []).append(inst)

    def _dispatch(self) -> None:
        budget = self.machine.decode_width
        iql = self.dispatch_policy.iq_limit
        dvm = self.dvm
        if dvm is not None:
            self._update_dvm_restore()
        # ICOUNT-ordered dispatch.
        order = sorted(range(self.num_threads), key=lambda t: (self.in_flight(t), t))
        for t in order:
            fq = self.fetch_q[t]
            if not fq:
                continue
            if dvm is not None:
                if not dvm.allow_dispatch(t):
                    continue
                # While the response mechanism is armed, threads with an
                # outstanding L2 miss stop dispatching: their dependent
                # ACE bits would sit in the IQ for hundreds of cycles
                # (Section 5.1); the freed slots go to other threads.
                if dvm.triggered and self._outstanding_l2[t] > 0 and t != dvm.restore_thread:
                    if self._want_throttle:
                        self.bus.emit(
                            TOPIC_DVM_THROTTLE,
                            thread=t,
                            outstanding_l2=self._outstanding_l2[t],
                        )
                    continue
            rob = self.robs[t]
            lsq = self.lsqs[t]
            rename = self.rename[t]
            while budget > 0 and fq:
                if len(self.iq) >= iql or self.iq.free_entries <= 0:
                    return  # the shared IQ is the limit: nobody dispatches
                inst = fq[0]
                if rob.full:
                    break
                is_mem = inst.opclass.is_mem
                if is_mem and lsq.full:
                    break
                fq.popleft()
                rename.resolve_sources(inst)
                rename.set_dest(inst)
                rob.push(inst)
                self.rob_pred_ace_bits += self.avf.rob_bits_pred(inst)
                if is_mem:
                    lsq.push(inst)
                self.iq.insert(inst, self.cycle)
                if inst.opclass == OpClass.LOAD:
                    self.active_fetch_policy().on_load_dispatch(self, inst)
                budget -= 1

    def _update_dvm_restore(self) -> None:
        """Section 5.1: when all threads are stalled on L2 misses and
        the online AVF is back under the trigger threshold, restore
        dispatch for the thread with the fewest predicted-ACE
        instructions in its fetch queue."""
        dvm = self.dvm
        if dvm is None:
            return
        all_stalled = all(self._outstanding_l2[t] > 0 for t in range(self.num_threads))
        if all_stalled and dvm.restore_eligible:
            best_t: int | None = None
            best_ace: int | None = None
            for t in range(self.num_threads):
                ace = 0
                for inst in self.fetch_q[t]:
                    if inst.ace_pred:
                        ace += 1
                if best_ace is None or ace < best_ace:
                    best_t, best_ace = t, ace
            if best_t != dvm.restore_thread and self.bus.wants(TOPIC_DVM_RESTORE):
                self.bus.emit(TOPIC_DVM_RESTORE, thread=best_t, ace_count=best_ace)
            dvm.set_restore_thread(best_t)
        else:
            dvm.set_restore_thread(None)

    def _fetch(self) -> None:
        policy = self.active_fetch_policy()
        allowed = policy.select(self)
        budget = self.machine.fetch_width
        fq_cap = self.machine.fetch_queue_size
        threads_used = 0
        cycle = self.cycle
        for t in allowed:
            if budget <= 0 or threads_used >= _FETCH_THREADS_PER_CYCLE:
                break
            if cycle < self.fetch_stall_until[t]:
                continue
            fq = self.fetch_q[t]
            if len(fq) >= fq_cap:
                continue
            threads_used += 1
            ctx = self.contexts[t]
            taken_budget = 2  # fetch through up to two taken transfers
            while budget > 0 and len(fq) < fq_cap:
                st = ctx.peek()
                line = st.pc >> self._iline_shift
                if line != self._last_fetch_line[t]:
                    res = self.mem.access_instr(st.pc, t)
                    self._last_fetch_line[t] = line
                    if res.latency > self.machine.l1i.latency:
                        self.fetch_stall_until[t] = cycle + res.latency
                        break
                inst = DynInst(
                    tag=self._next_tag,
                    thread=t,
                    static=st,
                    stream_pos=ctx.stream_pos,
                )
                self._next_tag += 1
                inst.fetch_cycle = cycle
                inst.ace_pred = st.ace_hint
                inst.checkpoint = ctx.checkpoint()
                took_transfer = False
                if st.opclass.is_control:
                    took_transfer = self._fetch_control(inst, ctx, t)
                else:
                    ctx.advance()
                fq.append(inst)
                budget -= 1
                if took_transfer:
                    taken_budget -= 1
                    if taken_budget <= 0:
                        break

    def _fetch_control(self, inst: DynInst, ctx: ThreadContext, t: int) -> bool:
        """Predict and speculatively follow a control instruction.
        Returns True if fetch for this thread stops this cycle (a taken
        control transfer)."""
        st = inst.static
        op = st.opclass
        actual_taken, actual_target = ctx.resolve_control(st)
        inst.actual_taken = actual_taken
        inst.actual_target = actual_target
        if op == OpClass.BRANCH:
            pred_taken, inst.bp_index = self.bp.predict_direction(st.pc, t)
            # Direct branches: the target is available from decode, so a
            # BTB miss costs target-prediction stats but not direction
            # (Alpha-style decode repair; all synthetic branches are
            # direct).  The BTB is still exercised for its statistics.
            self.bp.btb_lookup(st.pc)
            pred_target = st.taken_block if pred_taken else st.fall_block
        elif op in (OpClass.JUMP, OpClass.CALL):
            pred_taken, pred_target = True, st.taken_block
            if op == OpClass.CALL:
                ret_block = st.fall_block
                self.bp.ras_push(t, ret_block if ret_block >= 0 else 0)
        else:  # RET
            pred_taken = True
            popped = self.bp.ras_pop(t)
            pred_target = popped if popped is not None else ctx.program.entry
        inst.pred_taken = pred_taken
        inst.pred_target = pred_target
        inst.mispredicted = (pred_taken != actual_taken) or (
            pred_taken and pred_target != actual_target
        )
        followed_target = pred_target if pred_taken else st.fall_block
        ctx.advance_control(st, pred_taken, followed_target)
        if pred_taken:
            self._last_fetch_line[t] = -1  # redirect: new fetch line
            return True
        return False

    # ==================================================================
    # Per-cycle bookkeeping
    # ==================================================================
    def _tick_stats(self) -> None:
        cycle = self.cycle
        rel = self.sim.reliability
        iq = self.iq
        rql = iq.ready_count
        self._int_rql_sum += rql
        self._int_wql_sum += iq.waiting_count
        self._int_online_bit_cycles += iq.pred_ace_bits
        self._int_online_rob_bit_cycles += self.rob_pred_ace_bits
        if self.dvm_structure == Structure.ROB:
            self._sample_bit_cycles += self.rob_pred_ace_bits
        else:
            self._sample_bit_cycles += iq.pred_ace_bits
        self._sample_cycles += 1
        if self._hist is not None and cycle >= self.sim.warmup_cycles:
            self._hist[rql] += 1
            self._hist_ace[rql] += iq.ready_pred_ace

        dvm = self.dvm
        if dvm is not None and cycle % rel.dvm_ratio_period == 0:
            dvm.recompute_ratio_gate(iq.waiting_count, iq.ready_count)
        if (cycle + 1) % self._sample_period == 0:
            est = self._sample_bit_cycles / (
                self._sample_cycles * self.avf.capacity_bits(self.dvm_structure)
            )
            if dvm is not None:
                dvm.on_sample(est)
            self._sample_bit_cycles = 0
            self._sample_cycles = 0
        if (cycle + 1) % rel.interval_cycles == 0:
            self._close_interval()

    def _close_interval(self) -> None:
        rel = self.sim.reliability
        cycles = rel.interval_cycles
        l2_now = self.mem.l2_miss_count
        snap = IntervalSnapshot(
            cycle=self.cycle + 1,
            committed=self._int_committed,
            cycles=cycles,
            avg_ready_queue_len=self._int_rql_sum / cycles,
            l2_misses=l2_now - self._int_l2_base,
        )
        self.dispatch_policy.on_interval(snap)
        capacity = self.avf.capacity_bits(Structure.IQ)
        rec = IntervalRecord(
            index=len(self.intervals),
            end_cycle=self.cycle + 1,
            cycles=cycles,
            committed=self._int_committed,
            per_thread_committed=tuple(self._int_committed_pt),
            avg_ready_queue_len=snap.avg_ready_queue_len,
            avg_waiting_queue_len=self._int_wql_sum / cycles,
            l2_misses=snap.l2_misses,
            online_avf_estimate=self._int_online_bit_cycles / (cycles * capacity),
            iq_limit=self.dispatch_policy.iq_limit,
            online_rob_estimate=(
                self._int_online_rob_bit_cycles
                / (cycles * self.avf.capacity_bits(Structure.ROB))
            ),
        )
        self.intervals.append(rec)
        self.metrics.histogram("interval.online_avf").observe(rec.online_avf_estimate)
        bus = self.bus
        if bus.wants(TOPIC_INTERVAL_CLOSE):
            bus.emit(
                TOPIC_INTERVAL_CLOSE,
                index=rec.index,
                end_cycle=rec.end_cycle,
                committed=rec.committed,
                ipc=rec.ipc,
                avg_ready_queue_len=rec.avg_ready_queue_len,
                avg_waiting_queue_len=rec.avg_waiting_queue_len,
                l2_misses=rec.l2_misses,
                online_avf_estimate=rec.online_avf_estimate,
                online_rob_estimate=rec.online_rob_estimate,
                iq_limit=rec.iq_limit,
            )
        self._int_committed = 0
        self._int_committed_pt = [0] * self.num_threads
        self._int_rql_sum = 0
        self._int_wql_sum = 0
        self._int_online_bit_cycles = 0
        self._int_online_rob_bit_cycles = 0
        self._int_l2_base = l2_now

    # ==================================================================
    def _functional_warmup(self) -> None:
        """Functionally fast-forward each thread through the branch
        predictor, caches and TLBs before timing begins — SimPoint
        semantics: the detailed simulation *continues from* the
        fast-forwarded point (the timed region is preceded, not
        pre-touched, by the warm-up region)."""
        n_insts = self.sim.bp_warmup_instructions
        if n_insts <= 0:
            return
        iline_shift = self._iline_shift
        for t, program in enumerate(self.programs):
            ctx = self.contexts[t]  # advanced in place: timing continues here
            last_line = -1
            for _ in range(n_insts):
                st = ctx.peek()
                line = st.pc >> iline_shift
                if line != last_line:
                    self.mem.access_instr(st.pc, t)
                    last_line = line
                op = st.opclass
                if op.is_mem:
                    addr = ctx.mem_address(st, ctx.stream_pos)
                    self.mem.access_data(addr, t, is_write=(op == OpClass.STORE))
                if op.is_control:
                    taken, target = ctx.resolve_control(st)
                    if op == OpClass.BRANCH:
                        pred, idx = self.bp.predict_direction(st.pc, t)
                        self.bp.update_direction(st.pc, t, taken, pred, idx)
                        if taken:
                            self.bp.btb_update(st.pc, st.taken_block)
                    elif op == OpClass.CALL:
                        self.bp.ras_push(t, st.fall_block if st.fall_block >= 0 else 0)
                    elif op == OpClass.RET:
                        self.bp.ras_pop(t)
                    ctx.advance_control(st, taken, target)
                else:
                    ctx.advance()
        self.bp.reset_stats()  # warm-up predictions don't count
        self.mem.reset_stats()  # warm-up accesses don't count

    def _refresh_want_flags(self) -> None:
        """Re-read the hot-topic subscription flags (cached against
        ``bus.version`` so the zero-subscriber loop never rechecks)."""
        bus = self.bus
        self._bus_version = bus.version
        self._want_commit = bus.wants(TOPIC_COMMIT)
        self._want_squash = bus.wants(TOPIC_SQUASH)
        self._want_throttle = bus.wants(TOPIC_DVM_THROTTLE)

    @property
    def backend_name(self) -> str:
        return "reference" if self._backend is None else self._backend.name

    def run(self) -> SimulationResult:
        """Simulate ``sim.max_cycles`` cycles and return the results.

        A non-reference backend executes the whole run through its own
        engine; the inline loop below *is* the reference backend and is
        the normative statement of per-cycle stage order that
        ``backend-contract.json`` is extracted from.
        """
        if self._backend is not None:
            return self._backend.run(self)
        self._functional_warmup()
        max_cycles = self.sim.max_cycles
        max_insts = self.sim.max_instructions
        warm_marked = False
        profiler = self.profiler
        bus = self.bus if (self.telemetry or profiler is not None) else None
        if profiler is not None:
            profiler.start_run()
        for cycle in range(max_cycles):
            self.cycle = cycle
            if not warm_marked and cycle == self.sim.warmup_cycles:
                self._warm_committed_pt = list(self.committed_per_thread)
                warm_marked = True
            if bus is None:
                # Bare loop: identical to the pre-telemetry pipeline.
                self._commit()
                self._writeback()
                self._issue()
                self._dispatch()
                self._fetch()
                self._tick_stats()
            elif profiler is None:
                bus.cycle = cycle
                if bus.version != self._bus_version:
                    self._refresh_want_flags()
                bus.stage = "commit"
                self._commit()
                bus.stage = "writeback"
                self._writeback()
                bus.stage = "issue"
                self._issue()
                bus.stage = "dispatch"
                self._dispatch()
                bus.stage = "fetch"
                self._fetch()
                bus.stage = "tick"
                self._tick_stats()
            else:
                bus.cycle = cycle
                if bus.version != self._bus_version:
                    self._refresh_want_flags()
                profiler.cycle_start()
                bus.stage = "commit"
                self._commit()
                profiler.lap("commit")
                bus.stage = "writeback"
                self._writeback()
                profiler.lap("writeback")
                bus.stage = "issue"
                self._issue()
                profiler.lap("issue")
                bus.stage = "dispatch"
                self._dispatch()
                profiler.lap("dispatch")
                bus.stage = "fetch"
                self._fetch()
                profiler.lap("fetch")
                bus.stage = "tick"
                self._tick_stats()
                profiler.lap("tick")
            if max_insts is not None and self.total_committed >= max_insts:
                break
        if bus is not None:
            bus.stage = ""
        if profiler is not None:
            profiler.end_run()
        final_cycle = self.cycle + 1
        if self.sim.warmup_cycles == 0:
            self._warm_committed_pt = [0] * self.num_threads
        self.analyzer.flush(final_cycle)
        self.avf.close(final_cycle)
        self._emit_divergence()
        return self._build_result(final_cycle)

    def _emit_divergence(self) -> None:
        """Publish the end-of-run online-vs-oracle comparison.

        One ``reliability.divergence`` event per closed interval per
        DVM-governable structure, once the oracle interval AVF is final
        (the oracle attributes retroactively, so this cannot stream).
        """
        bus = self.bus if self.telemetry else None
        if bus is None or not bus.wants(TOPIC_RELIABILITY_DIVERGENCE):
            return
        for structure, name in ((Structure.IQ, "iq"), (Structure.ROB, "rob")):
            oracle = self.avf.interval_avf(structure)
            for i, rec in enumerate(self.intervals):
                if i >= len(oracle):
                    break
                online = (
                    rec.online_avf_estimate
                    if structure is Structure.IQ
                    else rec.online_rob_estimate
                )
                bus.emit(
                    TOPIC_RELIABILITY_DIVERGENCE,
                    structure=name,
                    index=i,
                    end_cycle=rec.end_cycle,
                    oracle_avf=oracle[i],
                    online_estimate=online,
                    divergence=oracle[i] - online,
                )

    def _publish_metrics(self, final_cycle: int) -> None:
        """Publish every component's stats into the hierarchical
        registry — the single export surface replacing ad-hoc stat
        attribute spelunking across pipeline components."""
        m = self.metrics
        core = m.child("pipeline")
        core.counter("cycles").inc(final_cycle)
        core.counter("commit.total").inc(self.total_committed)
        for t, c in enumerate(self.committed_per_thread):
            core.counter(f"commit.thread{t}").inc(c)
        core.counter("squash.total").inc(self.total_squashed)
        core.counter("flush.count").inc(self.flush_count)
        m.gauge("frontend.bp.accuracy").set(self.bp.stats.direction_accuracy)
        m.gauge("mem.l1d.miss_rate").set(self.mem.l1d.stats.miss_rate)
        m.gauge("mem.l2.miss_rate").set(self.mem.l2.stats.miss_rate)
        m.counter("mem.l2.misses").inc(self.mem.l2_miss_count)
        m.gauge("reliability.ace_fraction").set(self.analyzer.stats.ace_fraction)
        for s in Structure:
            m.gauge(f"reliability.avf.{s.name.lower()}").set(self.avf.overall_avf(s))
        m.gauge("dispatch.iq_limit").set(self.dispatch_policy.iq_limit)
        if self.dvm is not None:
            dvm = m.child("dvm")
            stats = self.dvm.stats
            dvm.counter("samples").inc(stats.samples)
            dvm.counter("triggered_samples").inc(stats.triggered_samples)
            dvm.counter("l2_triggers").inc(stats.l2_triggers)
            dvm.counter("throttled_dispatch_checks").inc(stats.throttled_dispatch_checks)
            dvm.counter("restore_grants").inc(stats.restore_grants)
            dvm.gauge("mean_ratio").set(stats.mean_ratio)
            dvm.gauge("wq_ratio").set(self.dvm.wq_ratio)
        if self.profiler is not None:
            prof = self.profiler.report()
            m.gauge("telemetry.cycles_per_sec").set(prof.cycles_per_sec)
            for stage, share in prof.shares().items():
                m.gauge(f"telemetry.stage_share.{stage}").set(share)

    def _build_result(self, final_cycle: int) -> SimulationResult:
        warm_pt = tuple(
            c - w for c, w in zip(self.committed_per_thread, self._warm_committed_pt)
        )
        bp_acc = self.bp.stats.direction_accuracy
        hist = self._hist.copy() if self._hist is not None else None
        hist_ace = self._hist_ace.copy() if self._hist_ace is not None else None
        self._publish_metrics(final_cycle)
        manifest = (
            collect_manifest(self.machine, self.sim) if self.telemetry else None
        )
        return SimulationResult(
            cycles=final_cycle,
            warmup_cycles=min(self.sim.warmup_cycles, final_cycle),
            interval_cycles=self.sim.reliability.interval_cycles,
            committed=self.total_committed,
            per_thread_committed=tuple(self.committed_per_thread),
            warm_committed=sum(warm_pt),
            warm_per_thread_committed=warm_pt,
            intervals=self.intervals,
            iq_interval_avf=self.avf.interval_avf(Structure.IQ),
            rob_interval_avf=self.avf.interval_avf(Structure.ROB),
            overall_avf={s: self.avf.overall_avf(s) for s in Structure},
            squashed=self.total_squashed,
            flushes=self.flush_count,
            bp_accuracy=bp_acc,
            l1d_miss_rate=self.mem.l1d.stats.miss_rate,
            l2_miss_rate=self.mem.l2.stats.miss_rate,
            l2_misses=self.mem.l2_miss_count,
            ace_fraction=self.analyzer.stats.ace_fraction,
            ready_hist=hist,
            ready_hist_ace=hist_ace,
            dvm_mean_ratio=(
                self.dvm.stats.mean_ratio if self.dvm is not None else None
            ),
            manifest=manifest,
            metrics=self.metrics.snapshot(),
        )
