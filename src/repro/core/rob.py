"""Per-thread reorder buffers.

Table 2: 96 entries per thread.  The ROB preserves program order for
in-order commit and is the unit of wrong-path recovery: a squash
removes every entry of the thread younger than the faulting
instruction.
"""

from __future__ import annotations

from collections import deque

from repro.isa.instruction import DynInst, DynState


class ReorderBuffer:
    """In-order retirement buffer of one hardware thread."""

    __slots__ = ("capacity", "entries", "thread")

    def __init__(self, capacity: int, thread: int):
        if capacity <= 0:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self.thread = thread
        self.entries: deque[DynInst] = deque()

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def push(self, inst: DynInst) -> None:
        if self.full:
            raise RuntimeError(f"ROB of thread {self.thread} overflow")
        self.entries.append(inst)

    def head(self) -> DynInst | None:
        return self.entries[0] if self.entries else None

    def commit_head(self) -> DynInst:
        """Retire the completed head entry."""
        inst = self.entries.popleft()
        inst.state = DynState.COMMITTED
        return inst

    def squash_after(self, after_tag: int) -> list[DynInst]:
        """Remove (young-first) every entry with tag > ``after_tag``."""
        removed: list[DynInst] = []
        while self.entries and self.entries[-1].tag > after_tag:
            removed.append(self.entries.pop())
        return removed
