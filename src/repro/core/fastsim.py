"""The fast simulation backend: a specialized engine for the pipeline model.

Executes exactly the per-stage contract of ``SMTPipeline.run`` (the
reference interpreter; see ``backend-contract.json``) but restructured
for throughput.  Three mechanisms carry the speedup:

1. **Warm-state snapshot memoization.**  The functional warm-up
   (:meth:`SMTPipeline._functional_warmup`) replays up to 100K
   instructions per thread through the branch predictor, caches and
   TLBs before a single timed cycle runs, and dominates short runs.
   Its outcome is a pure function of (programs, machine config, seed,
   warm-up length), so the post-warm-up component state (thread
   contexts, memory hierarchy, branch predictor) is deep-copied into a
   per-process cache and restored on repeat runs.  Config objects and
   programs are shared (not copied) via the deepcopy memo; the cache
   keeps strong references to the programs so its ``id()``-based key
   cannot alias.

2. **A monolithic specialized cycle loop.**  The reference loop pays a
   method call plus dozens of attribute loads per stage per cycle; the
   fast loop inlines the stage bodies with component state hoisted to
   locals and the per-``OpClass`` predicates/latencies precomputed
   into flat struct-of-arrays tables (``_IS_MEM``/``_IS_CONTROL``/
   latency), indexed by the opclass ordinal instead of property calls.
   Selection runs on the issue queue's incrementally sorted tag arrays
   (the same age-ordered structure the reference scheduler uses), so
   no per-cycle sorting happens anywhere in the loop.  Rare paths
   (branch recovery, squash, flush, interval close) call the reference
   methods — single implementation, no drift.

3. **Event-driven idle-cycle skipping.**  When the machine is provably
   inert — no writeback wheel entry due, no committable ROB head, no
   ready instruction, no dispatchable or fetchable thread — whole
   cycle ranges are accounted in closed form (the per-cycle statistics
   are linear while state is frozen) and the loop jumps to the next
   event: wheel entry, fetch-stall expiry, DVM sample, ratio-gate
   recompute, interval close, warm-up mark or run end.  The skip is
   disabled for the round-robin fetch policy (its ``select`` mutates
   per cycle) and restricted to all-fetch-queues-empty when DVM is
   active (``allow_dispatch`` mutates throttle statistics), so every
   skipped cycle is byte-equivalent to executing it.

The engine mutates the pipeline object itself (components stay shared)
and reuses its epilogue (`analyzer.flush`/`avf.close`/`_build_result`),
so results are metric-for-metric comparable with the reference — the
differential suite asserts equality of the full ``SimulationResult``
on every figure configuration.  Stage-stamped telemetry is the one
observable difference: the fast loop runs bare-loop semantics (no
per-stage ``bus.stage`` stamps, no per-commit/squash event emission).
"""

from __future__ import annotations

import copy
from operator import attrgetter
from typing import TYPE_CHECKING, Any

from repro.core.functional_units import op_latency
from repro.frontend.fetch_policy import RoundRobinPolicy
from repro.isa.instruction import DynInst, DynState, OpClass
from repro.reliability.avf import Structure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import SimulationResult, SMTPipeline

_GET_TAG = attrgetter("tag")

#: Struct-of-arrays opclass tables, indexed by the OpClass ordinal —
#: replaces per-instruction ``is_mem``/``is_control`` property calls in
#: the hot loop with a flat list load.
_N_OPS = max(OpClass) + 1
_IS_MEM = [False] * _N_OPS
_IS_CONTROL = [False] * _N_OPS
for _op in OpClass:
    _IS_MEM[_op] = _op.is_mem
    _IS_CONTROL[_op] = _op.is_control


# ----------------------------------------------------------------------
# Warm-state snapshot cache
# ----------------------------------------------------------------------
#: key -> (strong program refs, deep-copied (contexts, mem, bp)).
_WARM_SNAPSHOTS: dict[tuple[Any, ...], tuple[Any, Any]] = {}


def reset_warm_cache() -> None:
    """Drop all memoized warm states (tests / memory pressure)."""
    _WARM_SNAPSHOTS.clear()  # lint: disable=fork-safety


def _shared_roots(pipe: "SMTPipeline") -> list[Any]:
    """Objects shared (not copied) between the snapshot and every
    restored pipeline: immutable-by-convention configs and programs."""
    m = pipe.machine
    roots: list[Any] = [m, m.l1i, m.l1d, m.l2, m.itlb, m.dtlb, m.branch_predictor]
    roots.extend(pipe.programs)
    return roots


def _clone_state(state: Any, roots: list[Any]) -> Any:
    memo: dict[int, Any] = {id(obj): obj for obj in roots}
    return copy.deepcopy(state, memo)


def warm_start(pipe: "SMTPipeline") -> None:
    """Functionally warm ``pipe`` up, restoring a memoized snapshot when
    an identical warm-up has already been computed in this process."""
    sim = pipe.sim
    if sim.bp_warmup_instructions <= 0:
        return
    key = (
        tuple(id(p) for p in pipe.programs),
        repr(pipe.machine),
        sim.seed,
        sim.bp_warmup_instructions,
    )
    roots = _shared_roots(pipe)
    entry = _WARM_SNAPSHOTS.get(key)
    if entry is None:
        pipe._functional_warmup()
        state = (pipe.contexts, pipe.mem, pipe.bp)
        # The tuple of programs keeps them alive: the id()-based key
        # stays unambiguous only while the keyed objects are.
        _WARM_SNAPSHOTS[key] = (tuple(pipe.programs), _clone_state(state, roots))  # lint: disable=fork-safety
    else:
        pipe.contexts, pipe.mem, pipe.bp = _clone_state(entry[1], roots)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def run_fast(pipe: "SMTPipeline") -> "SimulationResult":
    """Execute ``pipe`` to completion with the fast engine."""
    warm_start(pipe)
    final_cycle = _cycle_loop(pipe)
    if pipe.sim.warmup_cycles == 0:
        pipe._warm_committed_pt = [0] * pipe.num_threads
    pipe.analyzer.flush(final_cycle)
    pipe.avf.close(final_cycle)
    pipe._emit_divergence()
    return pipe._build_result(final_cycle)


def _cycle_loop(pipe: "SMTPipeline") -> int:
    """The monolithic cycle loop.  Returns the final cycle count.

    Reads/writes the same pipeline state as the reference stage
    methods, in the same per-cycle order (commit → writeback → issue →
    dispatch → fetch → stats).  Scalars that only this loop touches are
    hoisted to locals and written back on exit; state that the shared
    rare-path helpers (``_recover_branch``/``_squash_thread``/
    ``_do_flush``/``_close_interval``) read or write stays on the
    pipeline object (or is an aliased mutable container).
    """
    machine = pipe.machine
    sim = pipe.sim
    rel = sim.reliability
    n = machine.num_threads

    # Per-opclass latency table for the non-memory else-branch of issue.
    lat_table = [0] * _N_OPS
    for opc in OpClass:
        lat_table[opc] = op_latency(machine, opc)

    # Machine scalars.
    commit_width = machine.commit_width
    issue_width = machine.issue_width
    decode_width = machine.decode_width
    fetch_width = machine.fetch_width
    fq_cap = machine.fetch_queue_size
    iq_capacity = machine.iq_size
    rob_capacity = machine.rob_size_per_thread
    lsq_capacity = machine.lsq_size_per_thread
    l1i_latency = machine.l1i.latency
    iline_shift = pipe._iline_shift

    # Run-control scalars.
    max_cycles = sim.max_cycles
    warmup_cycles = sim.warmup_cycles
    max_insts = sim.max_instructions
    # Unreachable sentinel when no budget: commit_width bounds per-cycle
    # commits, so total_committed can never reach it.
    max_insts_chk = (
        max_insts if max_insts is not None else max_cycles * machine.commit_width + 1
    )
    interval_cycles = rel.interval_cycles
    ratio_period = rel.dvm_ratio_period
    sample_period = pipe._sample_period

    # Components (aliased: helpers mutate the same objects/lists).
    iq = pipe.iq
    iq_waiting = iq.waiting
    iq_ready = iq.ready
    iq_insert = iq.insert
    iq_wakeup = iq.wakeup
    iq_remove = iq.remove_issued
    per_thread = iq.per_thread
    robs = pipe.robs
    lsqs = pipe.lsqs
    rename = pipe.rename
    fetch_q = pipe.fetch_q
    contexts = pipe.contexts
    wheel = pipe._wheel
    pending_flushes = pipe._pending_flushes
    stall_until = pipe.fetch_stall_until
    last_fetch_line = pipe._last_fetch_line
    outstanding_l1d = pipe._outstanding_l1d
    outstanding_l2 = pipe._outstanding_l2
    committed_per_thread = pipe.committed_per_thread
    fus = pipe.fus
    fus_new_cycle = fus.new_cycle
    try_issue = fus.try_issue
    ready_order = pipe.scheduler.ready_order
    access_data = pipe.mem.access_data
    access_instr = pipe.mem.access_instr
    bp_update_direction = pipe.bp.update_direction
    bp_btb_update = pipe.bp.btb_update
    analyzer_commit = pipe.analyzer.commit
    rob_bits_pred = pipe.avf.rob_bits_pred
    dispatch_policy = pipe.dispatch_policy
    active_policy = pipe.active_fetch_policy
    dvm = pipe.dvm
    dvm_rob = pipe.dvm_structure == Structure.ROB
    cap_bits = pipe.avf.capacity_bits(pipe.dvm_structure)
    recover_branch = pipe._recover_branch
    do_flush = pipe._do_flush
    fetch_control = pipe._fetch_control
    update_dvm_restore = pipe._update_dvm_restore
    hist = pipe._hist
    hist_ace = pipe._hist_ace

    # DynState singletons.
    st_completed = DynState.COMPLETED
    st_issued = DynState.ISSUED
    st_committed = DynState.COMMITTED
    st_squashed = DynState.SQUASHED
    st_dispatched = DynState.DISPATCHED
    op_load = OpClass.LOAD
    op_store = OpClass.STORE
    op_branch = OpClass.BRANCH
    op_prefetch = OpClass.PREFETCH
    is_mem_tab = _IS_MEM
    is_control_tab = _IS_CONTROL

    # Loop-local accumulators (synced back on exit / interval close).
    total_committed = pipe.total_committed
    next_tag = pipe._next_tag
    int_committed = pipe._int_committed
    int_committed_pt = pipe._int_committed_pt
    int_rql_sum = pipe._int_rql_sum
    int_wql_sum = pipe._int_wql_sum
    int_online_bit_cycles = pipe._int_online_bit_cycles
    int_online_rob_bit_cycles = pipe._int_online_rob_bit_cycles
    sample_bit_cycles = pipe._sample_bit_cycles
    sample_cycles = pipe._sample_cycles
    skipped_cycles = 0

    # Idle skipping is exact only for fetch policies whose select() is
    # pure; round-robin rotates internal state every cycle.
    skip_ok = not isinstance(pipe.base_fetch_policy, RoundRobinPolicy)
    order_buf: list[tuple[int, int]] = []
    warm_marked = False
    inf = max_cycles + 1

    cycle = 0
    while cycle < max_cycles:
        pipe.cycle = cycle
        if not warm_marked and cycle >= warmup_cycles:
            # >= not ==: the idle skip may jump the boundary cycle, but
            # commits are frozen while skipping, so the captured counts
            # are identical to marking exactly at ``warmup_cycles``.
            pipe._warm_committed_pt = committed_per_thread[:]
            warm_marked = True

        # ---------------- commit ----------------
        budget = commit_width
        start = cycle % n
        for i in range(n):
            t = start + i
            if t >= n:
                t -= n
            rob_entries = robs[t].entries
            while budget > 0:
                if not rob_entries:
                    break
                head = rob_entries[0]
                if head.state != st_completed:
                    break
                rob_entries.popleft()
                head.state = st_committed
                head.commit_cycle = cycle
                pipe.rob_pred_ace_bits -= rob_bits_pred(head)
                hst = head.static
                op = hst.opclass
                if is_mem_tab[op]:
                    lsqs[t].remove(head)
                    if op == op_store and head.mem_addr >= 0:
                        access_data(head.mem_addr, t, is_write=True)
                elif op == op_branch:
                    bp_update_direction(
                        hst.pc, t, head.actual_taken, head.pred_taken,
                        idx=head.bp_index if head.bp_index >= 0 else None,
                    )
                    if head.actual_taken:
                        bp_btb_update(hst.pc, hst.taken_block)
                committed_per_thread[t] += 1
                total_committed += 1
                int_committed += 1
                int_committed_pt[t] += 1
                analyzer_commit(head, cycle)
                budget -= 1

        # ---------------- writeback ----------------
        events = wheel.pop(cycle, None)
        if events:
            events.sort(key=_GET_TAG)  # resolve older branches first
            policy = active_policy()
            for inst in events:
                if inst.state == st_squashed:
                    continue
                inst.state = st_completed
                inst.complete_cycle = cycle
                iq_wakeup(inst.tag, cycle)
                if inst.static.opclass == op_load:
                    t = inst.thread
                    if inst.l1_miss:
                        outstanding_l1d[t] -= 1
                    if inst.l2_miss:
                        outstanding_l2[t] -= 1
                        if outstanding_l2[t] == 0:
                            policy.on_l2_return(pipe, t)
                    policy.on_load_left(pipe, inst)
                if inst.mispredicted and inst.state != st_squashed:
                    recover_branch(inst)

        # ---------------- issue ----------------
        fus_new_cycle()
        if iq_ready:
            issued = 0
            for inst in ready_order(iq):
                if inst.state != st_dispatched:
                    continue
                ist = inst.static
                op = ist.opclass
                if not try_issue(op):
                    continue
                # _issue_one, inlined.
                iq_remove(inst)
                inst.state = st_issued
                inst.issue_cycle = cycle
                inst.iq_leave_cycle = cycle
                t = inst.thread
                policy = active_policy()
                if op == op_load:
                    addr = contexts[t].mem_address(ist, inst.stream_pos)
                    inst.mem_addr = addr
                    if lsqs[t].can_forward(addr):
                        latency = 1
                    else:
                        res = access_data(addr, t)
                        latency = res.latency
                        if res.l1_miss:
                            inst.l1_miss = True
                            outstanding_l1d[t] += 1
                        if res.l2_miss:
                            inst.l2_miss = True
                            outstanding_l2[t] += 1
                            policy.on_l2_miss(pipe, inst)
                            if dvm is not None:
                                dvm.on_l2_miss()
                        policy.on_load_resolved(pipe, inst, res.l1_miss)
                elif op == op_prefetch:
                    addr = contexts[t].mem_address(ist, inst.stream_pos)
                    inst.mem_addr = addr
                    access_data(addr, t)  # warms the caches, non-blocking
                    latency = 1
                elif op == op_store:
                    addr = contexts[t].mem_address(ist, inst.stream_pos)
                    inst.mem_addr = addr
                    lsqs[t].note_store_address(inst)
                    latency = 1  # address generation; data written at commit
                else:
                    latency = lat_table[op]
                inst.exec_latency = latency
                ev = cycle + latency
                lst = wheel.get(ev)
                if lst is None:
                    wheel[ev] = [inst]  # lint: disable=hot-loop-alloc
                else:
                    lst.append(inst)
                issued += 1
                if issued >= issue_width:
                    break
        if pending_flushes:
            for tid, after_tag in pending_flushes:
                do_flush(tid, after_tag)
            del pending_flushes[:]

        # ---------------- dispatch ----------------
        budget = decode_width
        iql = dispatch_policy.iq_limit
        if dvm is not None:
            update_dvm_restore()
        del order_buf[:]
        for t in range(n):
            order_buf.append((len(fetch_q[t]) + per_thread[t], t))
        order_buf.sort()
        for _, t in order_buf:
            fq = fetch_q[t]
            if not fq:
                continue
            if dvm is not None:
                if not dvm.allow_dispatch(t):
                    continue
                # Armed response mechanism: L2-stalled threads stop
                # dispatching (Section 5.1), bar the restore thread.
                if (
                    dvm.triggered
                    and outstanding_l2[t] > 0
                    and t != dvm.restore_thread
                ):
                    continue
            rob = robs[t]
            lsq = lsqs[t]
            ren = rename[t]
            stop = False
            while budget > 0 and fq:
                occ = len(iq_waiting) + len(iq_ready)
                if occ >= iql or occ >= iq_capacity:
                    stop = True  # the shared IQ is the limit: nobody dispatches
                    break
                inst = fq[0]
                if len(rob.entries) >= rob_capacity:
                    break
                op = inst.static.opclass
                is_mem = is_mem_tab[op]
                if is_mem and len(lsq.entries) >= lsq_capacity:
                    break
                fq.popleft()
                ren.resolve_sources(inst)
                ren.set_dest(inst)
                rob.entries.append(inst)  # capacity checked above
                pipe.rob_pred_ace_bits += rob_bits_pred(inst)
                if is_mem:
                    lsq.entries[inst.tag] = inst  # capacity checked above
                iq_insert(inst, cycle)
                if op == op_load:
                    active_policy().on_load_dispatch(pipe, inst)
                budget -= 1
            if stop:
                break

        # ---------------- fetch ----------------
        policy = active_policy()
        allowed = policy.select(pipe)
        budget = fetch_width
        threads_used = 0
        for t in allowed:
            if budget <= 0 or threads_used >= 2:  # _FETCH_THREADS_PER_CYCLE
                break
            if cycle < stall_until[t]:
                continue
            fq = fetch_q[t]
            if len(fq) >= fq_cap:
                continue
            threads_used += 1
            ctx = contexts[t]
            taken_budget = 2  # fetch through up to two taken transfers
            while budget > 0 and len(fq) < fq_cap:
                stat = ctx.peek()
                line = stat.pc >> iline_shift
                if line != last_fetch_line[t]:
                    res = access_instr(stat.pc, t)
                    last_fetch_line[t] = line
                    if res.latency > l1i_latency:
                        stall_until[t] = cycle + res.latency
                        break
                inst = DynInst(
                    tag=next_tag,
                    thread=t,
                    static=stat,
                    stream_pos=ctx.stream_pos,
                )
                next_tag += 1
                inst.fetch_cycle = cycle
                inst.ace_pred = stat.ace_hint
                inst.checkpoint = ctx.checkpoint()
                took_transfer = False
                if is_control_tab[stat.opclass]:
                    took_transfer = fetch_control(inst, ctx, t)
                else:
                    ctx.advance()
                fq.append(inst)
                budget -= 1
                if took_transfer:
                    taken_budget -= 1
                    if taken_budget <= 0:
                        break

        # ---------------- per-cycle stats ----------------
        rql = len(iq_ready)
        wql = len(iq_waiting)
        int_rql_sum += rql
        int_wql_sum += wql
        pab = iq.pred_ace_bits
        rpab = pipe.rob_pred_ace_bits
        int_online_bit_cycles += pab
        int_online_rob_bit_cycles += rpab
        sample_bit_cycles += rpab if dvm_rob else pab
        sample_cycles += 1
        if hist is not None and cycle >= warmup_cycles:
            hist[rql] += 1
            hist_ace[rql] += iq.ready_pred_ace
        if dvm is not None and cycle % ratio_period == 0:
            dvm.recompute_ratio_gate(wql, rql)
        if (cycle + 1) % sample_period == 0:
            est = sample_bit_cycles / (sample_cycles * cap_bits)
            if dvm is not None:
                dvm.on_sample(est)
            sample_bit_cycles = 0
            sample_cycles = 0
        if (cycle + 1) % interval_cycles == 0:
            pipe._int_committed = int_committed
            pipe._int_committed_pt = int_committed_pt
            pipe._int_rql_sum = int_rql_sum
            pipe._int_wql_sum = int_wql_sum
            pipe._int_online_bit_cycles = int_online_bit_cycles
            pipe._int_online_rob_bit_cycles = int_online_rob_bit_cycles
            pipe._close_interval()
            int_committed = 0
            int_committed_pt = pipe._int_committed_pt
            int_rql_sum = 0
            int_wql_sum = 0
            int_online_bit_cycles = 0
            int_online_rob_bit_cycles = 0

        if total_committed >= max_insts_chk:
            break
        cycle += 1

        # ---------------- event-driven idle skip ----------------
        # A cycle range [cycle, s) may be accounted in closed form when
        # every stage is provably a no-op for all of it: no due wheel
        # entry, no committable head, no ready instruction, no pending
        # flush, nothing dispatchable, nothing fetchable.  Per-cycle
        # statistics are linear in that regime.
        if skip_ok and cycle < max_cycles and not iq_ready and not pending_flushes and wheel:
            idle = True
            for rob in robs:
                e = rob.entries
                if e and e[0].state == st_completed:
                    idle = False
                    break
            if idle:
                all_fq_empty = True
                for fq in fetch_q:
                    if fq:
                        all_fq_empty = False
                        break
                if dvm is not None:
                    # allow_dispatch mutates throttle statistics, so the
                    # skip needs dispatch to never even consider a
                    # thread: every fetch queue must be empty.
                    idle = all_fq_empty
                else:
                    occ = len(iq_waiting) + len(iq_ready)
                    idle = all_fq_empty or occ >= dispatch_policy.iq_limit or occ >= iq_capacity
            if idle:
                # Stop points: next wheel event, sample trigger,
                # interval close, ratio-gate recompute (DVM only),
                # warm-up mark, run end.
                s = min(wheel)
                c_sample = ((cycle + sample_period) // sample_period) * sample_period - 1
                if c_sample < s:
                    s = c_sample
                c_int = ((cycle + interval_cycles) // interval_cycles) * interval_cycles - 1
                if c_int < s:
                    s = c_int
                if dvm is not None:
                    c_ratio = ((cycle + ratio_period - 1) // ratio_period) * ratio_period
                    if c_ratio < s:
                        s = c_ratio
                if cycle < warmup_cycles < s:
                    s = warmup_cycles
                if s > max_cycles:
                    s = max_cycles
                # Fetch screen: every policy-allowed thread must be
                # stalled (bounding s) or have a full fetch queue.
                if s > cycle:
                    for t in active_policy().select(pipe):
                        if len(fetch_q[t]) >= fq_cap:
                            continue
                        su = stall_until[t]
                        if su <= cycle:
                            s = cycle  # fetchable right now: no skip
                            break
                        if su < s:
                            s = su
                if s > cycle:
                    if dvm is not None:
                        # The reference calls this every cycle; with
                        # frozen inputs it converges after one call.
                        update_dvm_restore()
                    k = s - cycle
                    int_wql_sum += wql * k
                    int_online_bit_cycles += pab * k
                    int_online_rob_bit_cycles += rpab * k
                    sample_bit_cycles += (rpab if dvm_rob else pab) * k
                    sample_cycles += k
                    if hist is not None and cycle >= warmup_cycles:
                        hist[0] += k  # ready queue is empty throughout
                    skipped_cycles += k
                    cycle = s
                    pipe.cycle = s - 1

    if not warm_marked and cycle >= warmup_cycles and warmup_cycles < max_cycles:
        # The idle skip jumped from pre-warm-up straight to the end of
        # the run: commits were frozen the whole way, so the current
        # counts equal what the boundary-cycle mark would have captured.
        pipe._warm_committed_pt = committed_per_thread[:]

    # ---------------- writeback of hoisted scalars ----------------
    pipe.total_committed = total_committed
    pipe._next_tag = next_tag
    pipe._int_committed = int_committed
    pipe._int_committed_pt = int_committed_pt
    pipe._int_rql_sum = int_rql_sum
    pipe._int_wql_sum = int_wql_sum
    pipe._int_online_bit_cycles = int_online_bit_cycles
    pipe._int_online_rob_bit_cycles = int_online_rob_bit_cycles
    pipe._sample_bit_cycles = sample_bit_cycles
    pipe._sample_cycles = sample_cycles
    pipe.fast_skipped_cycles = skipped_cycles
    return pipe.cycle + 1
