"""Per-thread load/store queues.

Table 2: 48 entries per thread.  The model is a capacity + forwarding
structure: loads whose address matches an older in-flight store of the
same thread are satisfied by forwarding (1-cycle latency, no cache
access); stores write the data cache when they commit.
"""

from __future__ import annotations

from repro.isa.instruction import DynInst, OpClass


class LoadStoreQueue:
    """LSQ of one hardware thread (unified loads + stores)."""

    __slots__ = ("capacity", "thread", "entries", "_store_addrs")

    def __init__(self, capacity: int, thread: int):
        if capacity <= 0:
            raise ValueError("LSQ capacity must be positive")
        self.capacity = capacity
        self.thread = thread
        self.entries: dict[int, DynInst] = {}  # tag -> inst, insertion = age order
        self._store_addrs: dict[int, int] = {}  # line addr -> count of pending stores

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def push(self, inst: DynInst) -> None:
        if self.full:
            raise RuntimeError(f"LSQ of thread {self.thread} overflow")
        self.entries[inst.tag] = inst

    def note_store_address(self, inst: DynInst) -> None:
        """Record a store's resolved address for forwarding checks."""
        line = inst.mem_addr >> 3
        self._store_addrs[line] = self._store_addrs.get(line, 0) + 1

    def can_forward(self, addr: int) -> bool:
        """True if an in-flight store to the same 8-byte word exists."""
        return self._store_addrs.get(addr >> 3, 0) > 0

    def remove(self, inst: DynInst) -> None:
        """Remove at commit (or squash)."""
        if self.entries.pop(inst.tag, None) is None:
            return
        if inst.opclass == OpClass.STORE and inst.mem_addr >= 0:
            line = inst.mem_addr >> 3
            cnt = self._store_addrs.get(line, 0)
            if cnt <= 1:
                self._store_addrs.pop(line, None)
            else:
                self._store_addrs[line] = cnt - 1

    def squash_after(self, after_tag: int) -> list[DynInst]:
        removed = [i for i in self.entries.values() if i.tag > after_tag]
        for inst in removed:
            self.remove(inst)
        return removed
