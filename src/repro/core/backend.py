"""Simulation backends: the seam between model and engine.

The cycle-level *model* — stage semantics, machine configuration,
reliability accounting — lives in :class:`~repro.core.pipeline.SMTPipeline`
and its components.  A :class:`SimBackend` is an *engine* that executes
that model:

* the **reference** backend is the inline interpreter in
  ``SMTPipeline.run`` — one labelled stage-method call per stage per
  cycle, exactly the per-stage read/write contract that
  ``backend-contract.json`` is extracted from;
* the **fast** backend (:mod:`repro.core.fastsim`) executes the same
  contract with a specialized cycle loop: a memoized warm-state
  snapshot, hoisted component state, precomputed opclass tables and an
  event-driven scheduler that skips provably-inert cycles.

Every backend must be *observationally equivalent* on
:class:`~repro.core.pipeline.SimulationResult`: the differential suite
in ``tests/test_differential.py`` asserts metric-for-metric parity
(IPC, AVFs, PVE, interval series) across backends on every figure
configuration.  Adding a backend means implementing :meth:`SimBackend.run`
against the contract and registering it here; the parity suite picks it
up via :func:`backend_names`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import SimulationResult, SMTPipeline


class SimBackend(ABC):
    """An execution engine for the :class:`SMTPipeline` model."""

    #: Registry key and CLI spelling (``--backend <name>``).
    name = "base"

    @abstractmethod
    def run(self, pipe: "SMTPipeline") -> "SimulationResult":
        """Execute ``pipe`` to completion and return its result."""


class ReferenceBackend(SimBackend):
    """The inline interpreter loop of ``SMTPipeline.run`` itself.

    The pipeline treats a resolved reference backend as "no backend"
    and runs its own loop; this class exists so the registry is total
    and so a pipeline constructed for another backend can still be
    executed by the reference engine explicitly.
    """

    name = "reference"

    def run(self, pipe: "SMTPipeline") -> "SimulationResult":
        prev = pipe._backend
        pipe._backend = None  # select the inline interpreter path
        try:
            return pipe.run()
        finally:
            pipe._backend = prev


class FastBackend(SimBackend):
    """Specialized cycle loop with warm-state memoization and
    event-driven idle-cycle skipping (see :mod:`repro.core.fastsim`)."""

    name = "fast"

    def run(self, pipe: "SMTPipeline") -> "SimulationResult":
        from repro.core.fastsim import run_fast

        return run_fast(pipe)


_BACKENDS: dict[str, type[SimBackend]] = {
    ReferenceBackend.name: ReferenceBackend,
    FastBackend.name: FastBackend,
}


def backend_names() -> list[str]:
    """Registered backend names, reference first."""
    return sorted(_BACKENDS, key=lambda n: (n != "reference", n))


def register_backend(cls: type[SimBackend]) -> type[SimBackend]:
    """Register a backend class (usable as a decorator)."""
    if not cls.name or cls.name == "base":
        raise ValueError("backend classes must define a unique name")
    _BACKENDS[cls.name] = cls
    return cls


def make_backend(spec: "str | SimBackend") -> SimBackend:
    """Instantiate a backend by name (or pass an instance through)."""
    if isinstance(spec, SimBackend):
        return spec
    try:
        return _BACKENDS[spec.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown backend {spec!r}; available: {backend_names()}"
        ) from None


def resolve_backend(spec: "str | SimBackend | None") -> SimBackend | None:
    """Resolve a constructor argument to the pipeline's internal form:
    ``None`` selects the inline reference interpreter."""
    if spec is None:
        return None
    backend = make_backend(spec)
    return None if backend.name == ReferenceBackend.name else backend
