"""The SMT out-of-order core: issue queue, schedulers, ROB, LSQ,
functional units, rename and the top-level pipeline."""

from repro.core.issue_queue import IQInvariantError, IssueQueue
from repro.core.scheduler import IssueScheduler, OldestFirstScheduler, VISAScheduler, make_scheduler
from repro.core.rob import ReorderBuffer
from repro.core.lsq import LoadStoreQueue
from repro.core.functional_units import FunctionalUnitPool
from repro.core.rename import RenameTable
from repro.core.pipeline import SMTPipeline, SimulationResult

__all__ = [
    "IQInvariantError",
    "IssueQueue",
    "IssueScheduler",
    "OldestFirstScheduler",
    "VISAScheduler",
    "make_scheduler",
    "ReorderBuffer",
    "LoadStoreQueue",
    "FunctionalUnitPool",
    "RenameTable",
    "SMTPipeline",
    "SimulationResult",
]
