"""The shared SMT issue queue with ready/waiting partition and wakeup.

The IQ is the structure under study: Table 2 gives it 96 entries shared
by all contexts.  Entries hold dispatched instructions until they
issue; an instruction is *ready* once all source operands have been
produced (the paper's "ready queue" is the set of ready entries, the
"waiting queue" the rest — Section 2.1/5.1 use both lengths).

Wakeup is tag-based: consumers carry the sequence tags of their pending
producers; when a producer completes, :meth:`wakeup` decrements its
consumers and moves the newly-ready ones to the ready set.

The IQ also maintains the running predicted-ACE-bit counter that DVM's
online AVF estimation reads (Section 5.1), and per-thread entry counts
for resource accounting.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Iterator

from repro.isa.instruction import DynInst, DynState


class IQInvariantError(RuntimeError):
    """An IQ bookkeeping invariant was violated by the caller.

    Raised instead of a bare ``KeyError``/silent underflow so the
    failing tag, thread and state land in the message — these bugs
    otherwise surface thousands of cycles later as wrong AVF numbers.
    """


class IssueQueue:
    """Shared issue queue with wakeup/select support."""

    __slots__ = (
        "capacity",
        "waiting",
        "ready",
        "_consumers",
        "per_thread",
        "pred_ace_bits",
        "ready_pred_ace",
        "_ready_ace_tags",
        "_ready_plain_tags",
        "_bits_of",
        "_free_slots",
        "inserted",
        "squashed",
    )

    def __init__(
        self,
        capacity: int,
        num_threads: int,
        bits_of: Callable[[DynInst], int] | None = None,
    ):
        if capacity <= 0:
            raise ValueError("IQ capacity must be positive")
        self.capacity = capacity
        # tag -> DynInst maps preserve insertion (age) order in CPython.
        self.waiting: dict[int, DynInst] = {}
        self.ready: dict[int, DynInst] = {}
        self._consumers: dict[int, list[DynInst]] = {}
        self.per_thread: list[int] = [0] * num_threads
        # Predicted-ACE bits currently resident (online AVF numerator).
        self.pred_ace_bits = 0
        # Predicted-ACE instructions currently in the ready set (Fig. 2).
        self.ready_pred_ace = 0
        # Age-ordered (ascending tag) views of the ready set, split by
        # the predicted-ACE bit.  Maintained incrementally on every
        # ready-set mutation so selection never re-sorts: oldest-first
        # order is a two-list merge, VISA order is ace-then-plain.
        self._ready_ace_tags: list[int] = []
        self._ready_plain_tags: list[int] = []
        self._bits_of: Callable[[DynInst], int] = (
            bits_of if bits_of is not None else (lambda inst: 0)
        )
        # LIFO free list of physical slot numbers: insert pops, any
        # deallocation pushes back.  O(1) either way, and slot numbers
        # are stable for a residency (per-entry vulnerability heatmaps).
        self._free_slots: list[int] = list(range(capacity - 1, -1, -1))
        self.inserted = 0
        self.squashed = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.waiting) + len(self.ready)

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self)

    @property
    def ready_count(self) -> int:
        return len(self.ready)

    @property
    def waiting_count(self) -> int:
        return len(self.waiting)

    def thread_count(self, tid: int) -> int:
        return self.per_thread[tid]

    # ------------------------------------------------------------------
    # Age-ordered ready views
    # ------------------------------------------------------------------
    def _ready_add(self, inst: DynInst) -> None:
        tags = self._ready_ace_tags if inst.ace_pred else self._ready_plain_tags
        if not tags or inst.tag > tags[-1]:
            tags.append(inst.tag)  # common case: youngest so far
        else:
            insort(tags, inst.tag)

    def _ready_discard(self, inst: DynInst) -> None:
        tags = self._ready_ace_tags if inst.ace_pred else self._ready_plain_tags
        tags.remove(inst.tag)

    def ready_tags_oldest(self) -> Iterator[int]:
        """Ready tags in ascending (age) order: a merge of the two
        maintained sorted lists.  Snapshots both lists first so the
        caller may issue (mutating the ready set) while iterating."""
        a = tuple(self._ready_ace_tags)
        b = tuple(self._ready_plain_tags)
        if not a:
            return iter(b)
        if not b:
            return iter(a)

        def merge() -> Iterator[int]:
            i = j = 0
            la, lb = len(a), len(b)
            while i < la and j < lb:
                if a[i] < b[j]:
                    yield a[i]
                    i += 1
                else:
                    yield b[j]
                    j += 1
            yield from a[i:]
            yield from b[j:]

        return merge()

    def ready_tags_visa(self) -> Iterator[int]:
        """Ready tags in VISA priority order: predicted-ACE tags (by
        age) strictly before predicted-un-ACE tags (by age) — the same
        total order as sorting by ``(not ace_pred, tag)``.  Snapshots
        so the caller may issue while iterating."""

        def chain(a: tuple[int, ...], b: tuple[int, ...]) -> Iterator[int]:
            yield from a
            yield from b

        return chain(tuple(self._ready_ace_tags), tuple(self._ready_plain_tags))

    # ------------------------------------------------------------------
    def insert(self, inst: DynInst, cycle: int) -> None:
        """Dispatch ``inst`` into the IQ.

        The caller must have resolved ``inst.src_tags`` against the
        rename table (leaving only tags of still-executing producers).
        """
        if self.free_entries <= 0:
            raise RuntimeError("issue queue overflow")
        inst.state = DynState.DISPATCHED
        inst.dispatch_cycle = cycle
        inst.iq_slot = self._free_slots.pop()
        if inst.src_tags:
            self.waiting[inst.tag] = inst
            for t in inst.src_tags:
                self._consumers.setdefault(t, []).append(inst)
        else:
            inst.ready_cycle = cycle
            self.ready[inst.tag] = inst
            self._ready_add(inst)
            if inst.ace_pred:
                self.ready_pred_ace += 1
        self.per_thread[inst.thread] += 1
        self.pred_ace_bits += self._bits_of(inst)
        self.inserted += 1

    def wakeup(self, tag: int, cycle: int) -> None:
        """Broadcast completion of producer ``tag``."""
        consumers = self._consumers.pop(tag, None)
        if not consumers:
            return
        for inst in consumers:
            if inst.state != DynState.DISPATCHED:
                continue  # squashed or already issued
            try:
                inst.src_tags.remove(tag)
            except ValueError:
                continue
            if not inst.src_tags and inst.tag in self.waiting:
                del self.waiting[inst.tag]
                inst.ready_cycle = cycle
                self.ready[inst.tag] = inst
                self._ready_add(inst)
                if inst.ace_pred:
                    self.ready_pred_ace += 1

    def remove_issued(self, inst: DynInst) -> None:
        """Deallocate the entry of an instruction selected for issue."""
        if self.ready.pop(inst.tag, None) is None:
            where = "waiting" if inst.tag in self.waiting else "absent"
            raise IQInvariantError(
                f"remove_issued: instruction tag={inst.tag} thread={inst.thread} "
                f"state={inst.state.name} is not in the ready set ({where}); "
                "only scheduler-selected ready instructions may issue"
            )
        self._ready_discard(inst)
        self.per_thread[inst.thread] -= 1
        self.pred_ace_bits -= self._bits_of(inst)
        self._free_slots.append(inst.iq_slot)
        if inst.ace_pred:
            self.ready_pred_ace -= 1

    def squash_thread(self, tid: int, after_tag: int) -> list[DynInst]:
        """Remove all entries of ``tid`` with tag > ``after_tag``.

        Returns the removed instructions (the pipeline marks them
        squashed and accounts their residency).
        """
        removed: list[DynInst] = []
        for pool in (self.waiting, self.ready):
            is_ready_pool = pool is self.ready
            victims = [i for i in pool.values() if i.thread == tid and i.tag > after_tag]
            for inst in victims:
                del pool[inst.tag]
                self.per_thread[tid] -= 1
                if self.per_thread[tid] < 0:
                    raise IQInvariantError(
                        f"squash_thread: per_thread[{tid}] underflow removing "
                        f"tag={inst.tag} state={inst.state.name}; entry count "
                        "no longer reconciles with the resident set"
                    )
                self.pred_ace_bits -= self._bits_of(inst)
                self._free_slots.append(inst.iq_slot)
                if is_ready_pool:
                    self._ready_discard(inst)
                    if inst.ace_pred:
                        self.ready_pred_ace -= 1
                removed.append(inst)
        consumers = self._consumers
        for inst in removed:
            # Squashed producers will never broadcast; drop their
            # consumer lists (the consumers are younger in the same
            # thread, so they are being squashed too).
            consumers.pop(inst.tag, None)
            # Squashed *waiting* entries must also leave the consumer
            # lists of their surviving producers, or dead references
            # accumulate there until the producer completes.
            for src in inst.src_tags:
                lst = consumers.get(src)
                if lst is None:
                    continue
                for k, c in enumerate(lst):
                    if c is inst:
                        del lst[k]
                        break
                if not lst:
                    del consumers[src]
        self.squashed += len(removed)
        return removed

    def drop_consumers(self, tag: int) -> None:
        """Forget the consumer list of a producer that will never
        broadcast (squashed after it had already issued)."""
        self._consumers.pop(tag, None)

    def ready_ages(self) -> list[DynInst]:
        """Ready instructions in age (tag) order — a merge of the two
        maintained sorted tag lists (wakeups reorder the ready dict, so
        its insertion order cannot be used directly)."""
        ready = self.ready
        return [ready[tag] for tag in self.ready_tags_oldest()]
