"""Tag-based register renaming.

Each dynamic instruction carries a globally unique sequence tag; the
rename table maps each architectural register of a thread to the
youngest in-flight producer of that register.  Consumers whose
producers have already completed are born ready; otherwise they carry
the producers' tags and wait for wakeup in the IQ.

Wrong-path recovery restores the map from the snapshot taken when the
mispredicted branch was renamed (checkpoint-based recovery, as in
MIPS R10000-style cores).
"""

from __future__ import annotations

from repro.isa.instruction import DynInst, DynState

#: Producer states whose results are already available to consumers.
_DONE = (DynState.COMPLETED, DynState.COMMITTED)


class RenameTable:
    """Architectural-register → producer map of one thread."""

    __slots__ = ("thread", "_map",)

    def __init__(self, thread: int):
        self.thread = thread
        self._map: dict[int, DynInst] = {}

    def resolve_sources(self, inst: DynInst) -> None:
        """Fill ``inst.src_tags`` with the tags of still-pending
        producers of its architectural sources."""
        pending: list[int] = []
        for reg in inst.static.srcs:
            producer = self._map.get(reg)
            if producer is not None and producer.state not in _DONE:
                if producer.state == DynState.SQUASHED:
                    continue  # stale mapping; treat as available
                tag = producer.tag
                if tag not in pending:
                    pending.append(tag)
        inst.src_tags = pending

    def set_dest(self, inst: DynInst) -> None:
        """Record ``inst`` as the youngest producer of its destination,
        remembering the previous producer for squash repair."""
        if inst.static.dest >= 0:
            inst.prev_producer = self._map.get(inst.static.dest)
            self._map[inst.static.dest] = inst

    def unwind(self, inst: DynInst) -> None:
        """Undo ``set_dest`` for a squashed instruction.

        Must be called young-to-old over the squashed instructions so
        each restore re-exposes the correct earlier producer.
        """
        dest = inst.static.dest
        if dest >= 0 and self._map.get(dest) is inst:
            if inst.prev_producer is None:
                del self._map[dest]
            else:
                self._map[dest] = inst.prev_producer

    def get(self, reg: int) -> DynInst | None:
        return self._map.get(reg)
