"""Deterministic hot-path benchmark suite (min-of-N wall clock).

The cases cover the paths every perf-sensitive PR touches: the bare
pipeline cycle loop, issue/select scheduling, the DVM controller's
interval-rate decision path, the interval resource allocator, a
warm-cache lint run, backend-contract extraction, and the parallel
harness engine.  Each case's ``make`` factory builds *all* state
up front and returns a closure whose body is only the hot path, so the
timed region measures the code under test and nothing else.  Inputs
are fixed by :data:`PERF_SCALE` (or an explicit scale) and seeded
generators, so two runs of a case execute the identical work — the
wall-clock is the only nondeterminism, and min-of-N strips most of it.

Results feed :mod:`repro.perf.history` (the committed
``BENCH_perf.json`` trajectory) and :mod:`repro.perf.compare` (the
regression gate).

Timing is the purpose of this module, so the determinism rule is
suppressed; benchmark output never feeds simulated results.
"""
# lint: disable-file=determinism

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.config import MachineConfig, ReliabilityConfig
from repro.core.issue_queue import IssueQueue
from repro.core.pipeline import SMTPipeline
from repro.core.scheduler import make_scheduler
from repro.harness.runner import BenchScale, get_programs
from repro.isa.generator import generate_program
from repro.isa.instruction import DynInst
from repro.reliability.dvm import DVMController
from repro.reliability.resource_alloc import (
    IntervalSnapshot,
    L2MissSensitiveAllocation,
)
from repro.workloads import get_mix

#: Pinned scale for the perf suite: small enough for a few-second run,
#: large enough that the cycle loop dominates interpreter warm-up.
#: CI and the committed history both use this scale — changing it
#: resets the comparability of the BENCH_perf.json trajectory.
PERF_SCALE = BenchScale(max_cycles=2_500, warmup_cycles=500)

#: The mix the pipeline-level cases simulate.
_BENCH_MIX = "MIX-A"


@dataclass(frozen=True)
class BenchCase:
    """One benchmark: a factory building a zero-argument hot closure."""

    name: str
    description: str
    make: Callable[[BenchScale], Callable[[], None]]


@dataclass(frozen=True)
class BenchResult:
    """Min-of-N wall time of one case."""

    name: str
    best_s: float
    repeats: int

    def to_dict(self) -> dict[str, float | int]:
        return {"best_s": self.best_s, "repeats": self.repeats}


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------
def _make_cycle_loop(mix_name: str, backend: str | None):
    """Factory-of-factories for the backend-comparison pipeline cases.

    Both backends run the identical configuration end to end
    (``SMTPipeline.run`` wall time, telemetry off), so the committed
    ratio between a reference case and its same-mix fast counterpart is
    the backend speedup the differential suite licenses.  For the fast
    cases the untimed warm-up populates the engine's warm-state
    snapshot cache (keyed by program identity, which ``get_programs``
    pins), so the timed repeats measure the steady-state cost a sweep
    pays per fast-backend run: snapshot restore plus the specialized
    cycle loop.
    """

    def make(scale: BenchScale) -> Callable[[], None]:
        programs = get_programs(mix_name, scale)
        machine = MachineConfig(num_threads=len(get_mix(mix_name).benchmarks))
        sim = scale.sim_config()
        kwargs = {} if backend is None else {"backend": backend}

        def run() -> None:
            SMTPipeline(
                programs, machine=machine, sim=sim, telemetry=False, **kwargs
            ).run()

        return run

    return make


#: CPU-bound mix: little idle time, so the fast/reference ratio here is
#: dominated by warm-snapshot reuse plus the hoisted loop itself.
_make_pipeline_cycle_loop = _make_cycle_loop(_BENCH_MIX, None)
_make_fast_cycle_loop = _make_cycle_loop(_BENCH_MIX, "fast")
#: Memory-bound mix: long L2-miss shadows let the fast engine's
#: event-driven idle skip run closed-form, where the backend's headline
#: speedup (>=10x) is demonstrated and gated.
_make_mem_cycle_loop = _make_cycle_loop("MEM-A", None)
_make_fast_mem_cycle_loop = _make_cycle_loop("MEM-A", "fast")


def _make_issue_select(scale: BenchScale) -> Callable[[], None]:
    """VISA select over a full IQ of ready instructions."""
    machine = MachineConfig()
    program = generate_program("mcf", seed=scale.seed)
    statics = list(program.all_insts())
    scheduler = make_scheduler("visa")
    iq = IssueQueue(machine.iq_size, machine.num_threads)
    for tag in range(machine.iq_size):
        st = statics[tag % len(statics)]
        inst = DynInst(
            tag=tag + 1, thread=tag % machine.num_threads, static=st, stream_pos=0
        )
        inst.ace_pred = (tag * 7919) % 3 != 0  # fixed ACE/un-ACE blend
        iq.insert(inst, cycle=0)
    width = machine.issue_width * 2
    iters = 2_000

    def run() -> None:
        for _ in range(iters):
            scheduler.select(iq, width)

    return run


def _make_dvm_interval(scale: BenchScale) -> Callable[[], None]:
    """DVM sample/trigger/ratio decision path at interval close rate."""
    rel = ReliabilityConfig(
        interval_cycles=scale.interval_cycles,
        ace_window=scale.ace_window,
        t_cache_miss=scale.t_cache_miss,
    )
    iters = 20_000

    def run() -> None:
        dvm = DVMController(0.2, config=rel)
        for i in range(iters):
            est = 0.05 + 0.3 * ((i * 37) % 100) / 100.0
            dvm.on_sample(est)
            if i % 8 == 0:
                dvm.on_l2_miss()
            if i % 4 == 0:
                dvm.recompute_ratio_gate((i * 13) % 64, (i * 7) % 32)
            dvm.allow_dispatch(i % 4)

    return run


def _make_resource_alloc(scale: BenchScale) -> Callable[[], None]:
    """Opt2 interval-close allocation decision (region + FLUSH gate)."""
    machine = MachineConfig()
    iters = 20_000

    def run() -> None:
        policy = L2MissSensitiveAllocation(
            machine.iq_size,
            commit_width=machine.commit_width,
            num_regions=scale.num_ipc_regions,
            t_cache_miss=scale.t_cache_miss,
        )
        for i in range(iters):
            policy.on_interval(
                IntervalSnapshot(
                    cycle=(i + 1) * scale.interval_cycles,
                    committed=(i * 379) % 4096,
                    cycles=scale.interval_cycles,
                    avg_ready_queue_len=float((i * 11) % 40),
                    l2_misses=(i * 29) % 160,
                )
            )

    return run


def _make_lint_warm(scale: BenchScale) -> Callable[[], None]:
    """Warm-cache per-file lint run over the telemetry package."""
    import tempfile

    from repro.analysis.engine import LintEngine

    import repro

    target = os.path.join(os.path.dirname(os.path.abspath(repro.__file__)), "telemetry")
    cache_dir = tempfile.mkdtemp(prefix="repro-perf-lint-")
    engine = LintEngine(cache_dir=cache_dir)
    engine.run([target], project_phase=False)  # warm the cache

    def run() -> None:
        engine.run([target], project_phase=False)

    return run


def _make_contract_extract(scale: BenchScale) -> Callable[[], None]:
    """Backend-contract extraction over the core package.

    Parses ``repro.core`` once up front; the timed region is the
    effect-analysis pipeline itself — local extraction, the
    interprocedural fold from ``run``, stage discovery, partitioning
    and SoA verdicts — the cost every ``repro lint contract`` run and
    ``state-contract-drift`` project pass pays.
    """
    from repro.analysis.effects.analyze import PipelineContract
    from repro.analysis.effects.contract import build_contract, render_contract
    from repro.analysis.perfmodel.cli import build_project

    import repro

    target = os.path.join(os.path.dirname(os.path.abspath(repro.__file__)), "core")
    project = build_project([target])

    def run() -> None:
        render_contract(build_contract(PipelineContract(project)))

    return run


def _make_parallel_sweep(scale: BenchScale) -> Callable[[], None]:
    """Harness-engine orchestration + checkpoint IO over a warm grid.

    The warm-up call populates the ``run_sim`` memo cache, so the timed
    repeats measure the execution engine itself (task planning, merge,
    telemetry bookkeeping, JSONL checkpoint writes) — each repeat gets
    a fresh shard path so every run writes the full checkpoint.
    """
    import itertools
    import tempfile

    from repro.harness.parallel import parallel_sweep

    axes = {"scheduler": ["oldest", "visa"], "dispatch": [None, "opt2"]}
    out_dir = tempfile.mkdtemp(prefix="repro-perf-sweep-")
    counter = itertools.count()

    def run() -> None:
        parallel_sweep(
            _BENCH_MIX,
            scale,
            axes,
            checkpoint=os.path.join(out_dir, f"sweep-{next(counter)}.jsonl"),
        )

    return run


def _make_relay_roundtrip(scale: BenchScale) -> Callable[[], None]:
    """Telemetry relay worker→parent round-trip, no process pool.

    One in-process worker bus with a ``WorkerRelay`` attached feeds a
    bounded queue drained by a ``RelayDrain`` republishing onto a
    parent bus — the full serialize/batch/drain/republish path a
    monitored ``--jobs N`` sweep pays per relayed event, minus the
    process hop.  Pins the overhead of default batch sizes so relay
    regressions show up as a step in the trajectory.
    """
    import queue as queue_mod

    from repro.telemetry.bus import EventBus
    from repro.telemetry.relay import RelayDrain, WorkerRelay
    from repro.telemetry.topics import TOPIC_INTERVAL_CLOSE

    events = 20_000

    def run() -> None:
        q: queue_mod.Queue = queue_mod.Queue(maxsize=512)
        worker_bus = EventBus()
        relay = WorkerRelay(q)
        relay.attach(worker_bus)
        parent_bus = EventBus()
        drain = RelayDrain(q, parent_bus, worker_slot=lambda pid: 0, t0=0.0)
        for i in range(events):
            worker_bus.emit(
                TOPIC_INTERVAL_CLOSE,
                index=i,
                end_cycle=(i + 1) * scale.interval_cycles,
                committed=(i * 379) % 4096,
                ipc=2.0,
                avg_ready_queue_len=4.0,
                avg_waiting_queue_len=8.0,
                l2_misses=(i * 29) % 160,
                online_avf_estimate=0.05 + (i % 100) / 200.0,
                online_rob_estimate=0.04 + (i % 100) / 250.0,
                iq_limit=64,
            )
            if i % 256 == 0:
                drain.pump()
        relay.flush()
        drain.pump()
        assert drain.dropped == 0

    return run


BENCH_CASES: tuple[BenchCase, ...] = (
    BenchCase(
        "pipeline_cycle_loop",
        "bare MIX-A simulation (telemetry off), full cycle loop",
        _make_pipeline_cycle_loop,
    ),
    BenchCase(
        "fast_cycle_loop",
        "same MIX-A simulation on the fast backend (warm snapshot + hoisted loop)",
        _make_fast_cycle_loop,
    ),
    BenchCase(
        "mem_cycle_loop",
        "bare MEM-A simulation (telemetry off), reference backend",
        _make_mem_cycle_loop,
    ),
    BenchCase(
        "fast_mem_cycle_loop",
        "same MEM-A simulation on the fast backend (idle skip dominates)",
        _make_fast_mem_cycle_loop,
    ),
    BenchCase(
        "issue_select",
        "VISA scheduler select() over a full ready IQ",
        _make_issue_select,
    ),
    BenchCase(
        "dvm_interval",
        "DVM sample/trigger/ratio decision path",
        _make_dvm_interval,
    ),
    BenchCase(
        "resource_alloc",
        "Opt2 interval-close allocation decisions",
        _make_resource_alloc,
    ),
    BenchCase(
        "lint_warm",
        "warm-cache repro.lint per-file run (telemetry package)",
        _make_lint_warm,
    ),
    BenchCase(
        "contract_extract",
        "backend-contract extraction (effect fold + verdicts) over repro.core",
        _make_contract_extract,
    ),
    BenchCase(
        "parallel_sweep",
        "harness engine orchestration + checkpoint IO (warm 2x2 grid)",
        _make_parallel_sweep,
    ),
    BenchCase(
        "relay_roundtrip",
        "telemetry relay batch/drain/republish round-trip (20k events)",
        _make_relay_roundtrip,
    ),
)

BENCH_NAMES: tuple[str, ...] = tuple(c.name for c in BENCH_CASES)


def get_cases(names: Iterable[str] | None = None) -> list[BenchCase]:
    """Resolve case names (all cases when ``names`` is None)."""
    if names is None:
        return list(BENCH_CASES)
    wanted = list(names)
    unknown = sorted(set(wanted) - set(BENCH_NAMES))
    if unknown:
        raise KeyError(f"unknown benchmark(s) {unknown}; known: {list(BENCH_NAMES)}")
    return [c for c in BENCH_CASES if c.name in set(wanted)]


def run_benchmarks(
    names: Iterable[str] | None = None,
    *,
    scale: BenchScale | None = None,
    repeats: int = 3,
    tracer: "object | None" = None,
) -> dict[str, BenchResult]:
    """Run the suite; returns min-of-``repeats`` seconds per case.

    Each case gets one untimed warm-up call (code paths, allocator and
    OS caches) before the timed repeats.  ``tracer`` may be a
    :class:`~repro.perf.spans.SpanTracer`; each case then records a
    ``bench`` span per timed repeat.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    scale = scale if scale is not None else PERF_SCALE
    results: dict[str, BenchResult] = {}
    for case in get_cases(names):
        fn = case.make(scale)
        fn()  # warm-up, untimed
        best = float("inf")
        for rep in range(repeats):
            if tracer is not None:
                with tracer.span(case.name, cat="bench", repeat=rep):  # type: ignore[attr-defined]
                    t0 = time.perf_counter()
                    fn()
                    elapsed = time.perf_counter() - t0
            else:
                t0 = time.perf_counter()
                fn()
                elapsed = time.perf_counter() - t0
            best = min(best, elapsed)
        results[case.name] = BenchResult(case.name, best, repeats)
    return results


def format_results(
    results: Mapping[str, BenchResult], title: str = "perf suite (min-of-N)"
) -> str:
    """Aligned text table of one suite run."""
    lines = [title]
    width = max((len(n) for n in results), default=4)
    for name in sorted(results):
        r = results[name]
        lines.append(
            f"  {name:<{width}s}  {r.best_s * 1e3:10.2f} ms  (best of {r.repeats})"
        )
    return "\n".join(lines)
